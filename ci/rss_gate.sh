#!/usr/bin/env bash
# Run a command under /usr/bin/time -v and fail if its peak resident set
# size exceeds a bound. Used by the CI `shard` and `city-scale` jobs to pin
# the streaming simulator's bounded-memory contract.
#
# Usage: ci/rss_gate.sh "<command>" <max_kb> [log-file]
#
# The time(1) report (and the command's own stderr) lands in the log file,
# which callers may upload as an artifact.
set -euo pipefail

if [ "$#" -lt 2 ]; then
    echo "usage: $0 \"<command>\" <max_kb> [log-file]" >&2
    exit 2
fi
cmd=$1
max_kb=$2
log=${3:-time.log}

/usr/bin/time -v sh -c "$cmd" 2> "$log"
grep "Maximum resident set size" "$log"
rss_kb=$(grep "Maximum resident set size" "$log" | grep -o "[0-9]*")
if [ "$rss_kb" -ge "$max_kb" ]; then
    echo "peak RSS ${rss_kb} KB breaches the ${max_kb} KB gate" >&2
    exit 1
fi
echo "peak RSS ${rss_kb} KB within the ${max_kb} KB gate"
