//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! Provides `criterion_group!` / `criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Throughput`, and `Bencher::iter` with a
//! simple adaptive timing loop: each benchmark warms up briefly, then runs
//! until enough wall-clock time accumulates, and the mean time per iteration
//! is printed. No statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each benchmark accumulates measurements for.
const TARGET_MEASURE: Duration = Duration::from_millis(200);
/// Upper bound on measured iterations, to keep very fast benches snappy.
const MAX_ITERS: u64 = 100_000;

/// Timing driver passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `f` repeatedly and records the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call.
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= TARGET_MEASURE || iters >= MAX_ITERS {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

fn fmt_duration(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(name: &str, throughput: Option<&Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let per_iter_ns = if b.iters == 0 {
        0.0
    } else {
        b.total.as_nanos() as f64 / b.iters as f64
    };
    let mut line = format!("{name:<48} time: {:>12}", fmt_duration(per_iter_ns));
    if let Some(Throughput::Bytes(bytes)) = throughput {
        if per_iter_ns > 0.0 {
            let gib_s = (*bytes as f64 / per_iter_ns) * 1e9 / (1u64 << 30) as f64;
            line.push_str(&format!("  thrpt: {gib_s:.3} GiB/s"));
        }
    }
    println!("{line}  ({} iters)", b.iters);
}

/// Benchmark registry and entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark identifier.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Throughput annotation for a group.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's timing loop is adaptive.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, self.throughput.as_ref(), &mut f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, self.throughput.as_ref(), &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a group function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main()` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Bytes(8));
        group.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| black_box(0)));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }
}
