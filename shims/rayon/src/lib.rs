//! Offline shim for the subset of the `rayon` API this workspace uses.
//!
//! Implements data parallelism over slices with `std::thread::scope` and an
//! atomic work index: `items.par_iter().map(f).collect::<Vec<_>>()` runs `f`
//! on a pool of OS threads and merges results **in input order**, so the
//! output is bit-identical regardless of thread count or scheduling.
//!
//! The executing thread count comes from the innermost enclosing
//! [`ThreadPool::install`], falling back to [`std::thread::available_parallelism`].

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Thread count installed by the innermost `ThreadPool::install`.
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS
        .with(Cell::get)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .max(1)
}

/// Error building a thread pool (the shim never fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default (automatic) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the pool's thread count; `0` means automatic.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A scoped thread-count context; the shim spawns OS threads per operation
/// rather than keeping persistent workers.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool's thread count governing parallel iterators.
    pub fn install<R, OP: FnOnce() -> R>(&self, op: OP) -> R {
        let prev = INSTALLED_THREADS.with(|c| c.replace(Some(self.threads)));
        let result = op();
        INSTALLED_THREADS.with(|c| c.set(prev));
        result
    }
}

/// Runs `f` over `0..n`, fanning out over `threads` workers pulling indices
/// from a shared atomic counter; results are returned in index order.
fn parallel_indexed<R: Send, F: Fn(usize) -> R + Sync>(n: usize, threads: usize, f: F) -> Vec<R> {
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let counter = AtomicUsize::new(0);
    let workers = threads.min(n);
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// A parallel iterator: a description of items plus how to produce them.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Executes the pipeline, returning items in deterministic input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps every element through `f` in parallel.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Collects the results (in input order).
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }
}

/// Borrowed-slice parallel iterator.
#[derive(Debug)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn drive(self) -> Vec<&'a T> {
        self.items.iter().collect()
    }

    fn map<R: Send, F: Fn(&'a T) -> R + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }
}

/// Owned-vec parallel iterator.
#[derive(Debug)]
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send + Sync> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// Map stage over a slice iterator: the parallel fan-out happens here.
#[derive(Debug)]
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParallelIterator for Map<ParIter<'a, T>, F> {
    type Item = R;

    fn drive(self) -> Vec<R> {
        let items = self.base.items;
        let f = &self.f;
        parallel_indexed(items.len(), current_num_threads(), |i| f(&items[i]))
    }
}

impl<T: Send + Sync, R: Send, F: Fn(T) -> R + Sync> ParallelIterator for Map<IntoParIter<T>, F> {
    type Item = R;

    fn drive(self) -> Vec<R> {
        let mut slots: Vec<Option<T>> = self.base.items.into_iter().map(Some).collect();
        let n = slots.len();
        // Hand out ownership index-wise: each index is taken exactly once.
        let slot_refs: Vec<std::sync::Mutex<Option<T>>> =
            slots.drain(..).map(std::sync::Mutex::new).collect();
        let f = &self.f;
        parallel_indexed(n, current_num_threads(), |i| {
            let item = slot_refs[i]
                .lock()
                .expect("slot poisoned")
                .take()
                .expect("slot reused");
            f(item)
        })
    }
}

/// `.par_iter()` on borrowable collections.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed parallel iterator type.
    type Iter;

    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// `.into_par_iter()` on owned collections.
pub trait IntoParallelIterator {
    /// The owned parallel iterator type.
    type Iter;

    /// Consumes `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send + Sync> IntoParallelIterator for Vec<T> {
    type Iter = IntoParIter<T>;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

pub mod prelude {
    //! Single-import surface mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let doubled: Vec<u64> = pool.install(|| v.par_iter().map(|&x| x * 2).collect());
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let v: Vec<u64> = (0..257).collect();
        let run = |jobs: usize| -> Vec<u64> {
            let pool = ThreadPoolBuilder::new().num_threads(jobs).build().unwrap();
            pool.install(|| {
                v.par_iter()
                    .map(|&x| x.wrapping_mul(31).rotate_left(7))
                    .collect()
            })
        };
        assert_eq!(run(1), run(2));
        assert_eq!(run(1), run(16));
    }

    #[test]
    fn into_par_iter_moves_items() {
        let v: Vec<String> = (0..50).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 50);
        assert_eq!(lens[0], 1);
        assert_eq!(lens[10], 2);
    }

    #[test]
    fn install_nests_and_restores() {
        let outer = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 2);
            inner.install(|| assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 2);
        });
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
