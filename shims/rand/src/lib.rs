//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! Backed by xoshiro256++ seeded via SplitMix64. The generated streams are
//! deterministic and portable but intentionally make no attempt to match the
//! real `rand` crate's output for the same seed.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Unbiased-enough integer range sampling via 128-bit widening multiply.
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + sample_u64_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let f: $t = Standard::sample(rng);
                self.start + f * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let f: $t = Standard::sample(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let f: f64 = Standard::sample(self);
        f < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling: shuffling and choosing.

    use super::{sample_u64_below, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = sample_u64_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = sample_u64_below(rng, self.len() as u64) as usize;
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut v1: Vec<u32> = (0..50).collect();
        let mut v2: Vec<u32> = (0..50).collect();
        v1.shuffle(&mut StdRng::seed_from_u64(9));
        v2.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(v1, v2);
        let mut sorted = v1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_returns_member() {
        let v = [1, 2, 3];
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut r).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
