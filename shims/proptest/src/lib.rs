//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! Implements a non-shrinking property-testing harness: the `proptest!`
//! macro runs each property for `ProptestConfig::cases` deterministic cases,
//! sampling inputs from [`Strategy`] values. Failures panic with the normal
//! assertion message (there is no shrinking phase); cases are seeded from
//! the test's module path and case index, so failures reproduce exactly.

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// RNG for case `case` of the named test: reproducible run to run.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in test_name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        TestRng(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Runner configuration. Only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ----- numeric range strategies -----

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

// ----- tuple strategies -----

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ----- string pattern strategy -----

/// `&str` strategies interpret the string as a tiny regex subset: literal
/// characters, character classes `[a-z0-9 ,.!-]`, groups `( ... )`, and
/// `{m,n}` repetition counts after a class or group.
impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        gen_atoms(&atoms, rng, &mut out);
        out
    }
}

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
    Group(Vec<(Atom, u32, u32)>),
}

type CountedAtom = (Atom, u32, u32);

fn parse_pattern(pat: &str) -> Vec<CountedAtom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut pos = 0;
    let atoms = parse_seq(&chars, &mut pos, None);
    assert!(pos == chars.len(), "unsupported pattern: {pat:?}");
    atoms
}

fn parse_seq(chars: &[char], pos: &mut usize, until: Option<char>) -> Vec<CountedAtom> {
    let mut out = Vec::new();
    while *pos < chars.len() {
        if Some(chars[*pos]) == until {
            return out;
        }
        let atom = match chars[*pos] {
            '[' => {
                *pos += 1;
                let mut ranges = Vec::new();
                while *pos < chars.len() && chars[*pos] != ']' {
                    let c = chars[*pos];
                    if *pos + 2 < chars.len() && chars[*pos + 1] == '-' && chars[*pos + 2] != ']' {
                        ranges.push((c, chars[*pos + 2]));
                        *pos += 3;
                    } else {
                        ranges.push((c, c));
                        *pos += 1;
                    }
                }
                assert!(*pos < chars.len(), "unterminated class");
                *pos += 1; // ']'
                Atom::Class(ranges)
            }
            '(' => {
                *pos += 1;
                let inner = parse_seq(chars, pos, Some(')'));
                assert!(*pos < chars.len(), "unterminated group");
                *pos += 1; // ')'
                Atom::Group(inner)
            }
            c => {
                *pos += 1;
                Atom::Literal(c)
            }
        };
        let (lo, hi) = parse_quantifier(chars, pos);
        out.push((atom, lo, hi));
    }
    assert!(until.is_none(), "unterminated group");
    out
}

fn parse_quantifier(chars: &[char], pos: &mut usize) -> (u32, u32) {
    if *pos >= chars.len() || chars[*pos] != '{' {
        return (1, 1);
    }
    *pos += 1;
    let mut body = String::new();
    while *pos < chars.len() && chars[*pos] != '}' {
        body.push(chars[*pos]);
        *pos += 1;
    }
    assert!(*pos < chars.len(), "unterminated quantifier");
    *pos += 1; // '}'
    if let Some((lo, hi)) = body.split_once(',') {
        (
            lo.trim().parse().expect("bad quantifier"),
            hi.trim().parse().expect("bad quantifier"),
        )
    } else {
        let n: u32 = body.trim().parse().expect("bad quantifier");
        (n, n)
    }
}

fn gen_atoms(atoms: &[CountedAtom], rng: &mut TestRng, out: &mut String) {
    for (atom, lo, hi) in atoms {
        let reps = if lo == hi {
            *lo
        } else {
            *lo + rng.below(u64::from(hi - lo) + 1) as u32
        };
        for _ in 0..reps {
            match atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|&(a, b)| (b as u64) - (a as u64) + 1)
                        .sum();
                    let mut k = rng.below(total.max(1));
                    for &(a, b) in ranges {
                        let size = (b as u64) - (a as u64) + 1;
                        if k < size {
                            out.push(char::from_u32(a as u32 + k as u32).unwrap_or(a));
                            break;
                        }
                        k -= size;
                    }
                }
                Atom::Group(inner) => gen_atoms(inner, rng, out),
            }
        }
    }
}

// ----- any::<T>() -----

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        sample::Index(rng.next_u64())
    }
}

/// Strategy produced by [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

pub mod bool {
    //! Boolean strategies.

    /// Either boolean with equal probability.
    pub const ANY: crate::AnyStrategy<bool> = crate::AnyStrategy(std::marker::PhantomData);
}

pub mod sample {
    //! Index sampling.

    /// An index into a runtime-sized collection.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Maps this index into `0..len` (`len` must be non-zero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{BTreeSet, Range, RangeInclusive, Strategy, TestRng};

    /// A size specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.lo == self.hi {
                self.lo
            } else {
                self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; may generate fewer elements than
    /// requested if duplicates are drawn (best-effort, like a bounded retry).
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates ordered sets of `element` values with sizes in `size`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let want = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut tries = 0;
            while out.len() < want && tries < want * 10 + 10 {
                out.insert(self.element.sample(rng));
                tries += 1;
            }
            out
        }
    }
}

pub mod strategy {
    //! Strategy trait re-exports (API-compatibility module).
    pub use crate::{Just, Map, Strategy};
}

pub mod prop {
    //! The `prop` alias module exposed by the prelude.
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude`.
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Just, ProptestConfig, Strategy,
    };
}

// ----- macros -----

/// Asserts a condition inside a property (panics with the message on
/// failure; this shim has no shrinking phase).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: an optional `#![proptest_config(..)]` attribute
/// followed by `#[test] fn name(input in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( cfg = $cfg:expr; ) => {};
    ( cfg = $cfg:expr;
      $(#[$meta:meta])*
      fn $name:ident( $($args:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..u64::from(__cfg.cases) {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $crate::__proptest_body! { __rng, [ $($args)* ], $body }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    // Peel one `pattern in strategy` binding off the argument list.
    ( $rng:ident, [ $pat:pat in $strat:expr ], $body:block ) => {
        let $pat = $crate::Strategy::sample(&$strat, &mut $rng);
        $crate::__proptest_run! { $body }
    };
    ( $rng:ident, [ $pat:pat in $strat:expr, $($rest:tt)* ], $body:block ) => {
        let $pat = $crate::Strategy::sample(&$strat, &mut $rng);
        $crate::__proptest_body! { $rng, [ $($rest)* ], $body }
    };
    ( $rng:ident, [ ], $body:block ) => {
        $crate::__proptest_run! { $body }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    ( $body:block ) => {
        // The closure gives `prop_assume!` an early-exit `return` target.
        #[allow(clippy::redundant_closure_call)]
        (|| -> () { $body })()
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..500 {
            let v = (5u32..10).sample(&mut rng);
            assert!((5..10).contains(&v));
            let f = (0.25f64..=0.75).sample(&mut rng);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn string_pattern_generates_expected_shape() {
        let mut rng = crate::TestRng::for_case("pattern", 0);
        for _ in 0..200 {
            let s = "[a-z]{1,8}( [a-z]{1,8}){0,4}".sample(&mut rng);
            assert!(!s.is_empty());
            for word in s.split(' ') {
                assert!((1..=8).contains(&word.len()), "bad word in {s:?}");
                assert!(word.chars().all(|c| c.is_ascii_lowercase()));
            }
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = crate::TestRng::for_case("collections", 0);
        for _ in 0..100 {
            let v = crate::collection::vec(0u8..10, 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            let s = crate::collection::btree_set(0u32..1000, 0..6).sample(&mut rng);
            assert!(s.len() < 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_tuples((a, b) in (0u32..10, 10u32..20), mut v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(a < 10);
            prop_assert!((10..20).contains(&b));
            v.push(0);
            prop_assert!(!v.is_empty());
        }

        #[test]
        fn assume_skips(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
