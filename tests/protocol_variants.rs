//! Equivalence and golden tests for the pluggable protocol-variant API.
//!
//! Two contracts are pinned here. First, the `ProtocolSpec` refactor is a
//! pure re-plumbing for the paper's triad: running the legacy three-protocol
//! figures through the new spec-based runner yields *byte-identical* CSVs
//! whether the grid is triad-only or widened with the new variants, serial
//! or parallel. Second, the five-variant head-to-head figure is pinned to a
//! golden fixture at `Scale::Quick`, updated via:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p mbt-experiments --test protocol_variants
//! ```

use mbt_core::ProtocolSpec;
use mbt_experiments::figures::{head_to_head_nus, RunContext};
use mbt_experiments::report::figure_csv;
use mbt_experiments::runner::SimParams;
use mbt_experiments::sweep::Figure;
use mbt_experiments::{ExecConfig, ParallelRunner, Scale};

use dtn_trace::generators::NusConfig;
use dtn_trace::TraceSource;
use std::sync::Arc;

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures")
        .join(name)
}

fn assert_matches_golden(fig: &Figure, name: &str) {
    let csv = figure_csv(fig);
    let path = fixture_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &csv).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run UPDATE_GOLDEN=1 cargo test \
             -p mbt-experiments --test protocol_variants to create it",
            path.display()
        )
    });
    assert_eq!(
        csv,
        golden,
        "{} drifted from its golden fixture {}; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 and commit the fixture",
        fig.id,
        path.display()
    );
}

fn sweep_with(protocols: Vec<ProtocolSpec>, jobs: usize) -> Figure {
    let source: Arc<dyn TraceSource> = Arc::new(NusConfig::new(24, 5).seed(11).generate());
    let exec = ExecConfig::default()
        .jobs(jobs)
        .replicates(2)
        .master_seed(7);
    ParallelRunner::new(exec)
        .with_protocols(protocols)
        .sweep_shared_source(
            "equiv",
            "equivalence sweep",
            "internet fraction",
            &[0.2, 0.6],
            source,
            |x| {
                SimParams::builder()
                    .internet_fraction(x)
                    .days(5)
                    .files_per_day(10)
                    .build()
            },
            None,
        )
}

/// The triad CSV is byte-identical whether the grid runs serial or on eight
/// workers: per-cell seeds derive from grid coordinates, not scheduling.
#[test]
fn triad_csv_is_byte_identical_across_job_counts() {
    let serial = figure_csv(&sweep_with(ProtocolSpec::TRIAD.to_vec(), 1));
    let parallel = figure_csv(&sweep_with(ProtocolSpec::TRIAD.to_vec(), 8));
    assert_eq!(serial, parallel);
}

/// Widening the protocol list with the new variants appends series without
/// disturbing the triad's cells: the first three series of the five-variant
/// run render byte-for-byte the same rows as the triad-only run.
#[test]
fn widened_grid_preserves_legacy_triad_rows() {
    let triad = sweep_with(ProtocolSpec::TRIAD.to_vec(), 8);
    let wide = sweep_with(ProtocolSpec::builtin().to_vec(), 8);
    assert_eq!(wide.series.len(), 5);
    assert_eq!(triad.series[..], wide.series[..3]);

    let triad_csv = figure_csv(&triad);
    let wide_csv = figure_csv(&wide);
    for line in triad_csv.lines() {
        assert!(
            wide_csv.lines().any(|l| l == line),
            "triad row missing from widened CSV: {line}"
        );
    }
}

/// The five-variant head-to-head figure at quick scale, pinned to a golden
/// fixture exactly like the legacy figures.
#[test]
fn head_to_head_nus_quick_matches_golden() {
    let fig = head_to_head_nus(
        &mut RunContext::new(Scale::Quick).exec(ExecConfig::default().replicates(3)),
    );
    assert_eq!(fig.series.len(), 5, "head-to-head must cover every builtin");
    for (series, spec) in fig.series.iter().zip(ProtocolSpec::builtin()) {
        assert_eq!(series.protocol, spec, "registry order must be preserved");
    }
    assert_matches_golden(&fig, "h2h_nus_quick.csv");
}
