//! Integration: the fake-publisher attack (§I "fake files") end to end, and
//! the §III-B item-f authentication defense.

use dtn_trace::generators::NusConfig;
use mbt_core::selection::{rank, select, SelectionPolicy};
use mbt_core::{Popularity, Query};
use mbt_experiments::runner::{run_simulation, SimParams};
use mbt_experiments::workload::{forge_fake, generate_batch, publisher_registry, WorkloadConfig};

#[test]
fn pollution_attack_and_defense_shapes() {
    let trace = NusConfig::new(40, 8).seed(33).generate();
    let base = SimParams {
        days: 8,
        seed: 33,
        files_per_day: 15,
        ..SimParams::default()
    };
    let clean = run_simulation(&trace, &base, None);
    let polluted = run_simulation(
        &trace,
        &SimParams {
            polluter_fraction: 0.25,
            fakes_per_day: 4,
            ..base.clone()
        },
        None,
    );
    let defended = run_simulation(
        &trace,
        &SimParams {
            polluter_fraction: 0.25,
            fakes_per_day: 4,
            verify_metadata: true,
            ..base.clone()
        },
        None,
    );
    // The attack hurts; the defense recovers a strict majority of the loss.
    assert!(
        polluted.file_ratio < clean.file_ratio,
        "attack had no effect: {} vs {}",
        polluted.file_ratio,
        clean.file_ratio
    );
    assert!(
        defended.file_ratio > polluted.file_ratio,
        "defense had no effect: {} vs {}",
        defended.file_ratio,
        polluted.file_ratio
    );
    let recovered = (defended.file_ratio - polluted.file_ratio)
        / (clean.file_ratio - polluted.file_ratio).max(1e-9);
    assert!(
        recovered > 0.4,
        "authentication should recover a substantial fraction, got {recovered:.2}"
    );
}

#[test]
fn verification_is_free_without_an_adversary() {
    let trace = NusConfig::new(30, 6).seed(34).generate();
    let base = SimParams {
        days: 6,
        seed: 34,
        files_per_day: 10,
        ..SimParams::default()
    };
    let clean = run_simulation(&trace, &base, None);
    let verified = run_simulation(
        &trace,
        &SimParams {
            verify_metadata: true,
            ..base
        },
        None,
    );
    assert_eq!(
        clean.metadata_delivered, verified.metadata_delivered,
        "signed genuine metadata must never be rejected"
    );
    assert_eq!(clean.files_delivered, verified.files_delivered);
}

#[test]
fn user_selection_layer_also_filters_fakes() {
    // Even a node without receive-time filtering can defend at selection
    // time: the ranked-results + AuthenticatedOnly policy path.
    let cfg = WorkloadConfig::new(6, 3);
    let mut rng = dtn_sim::rng::stream(35, "workload");
    let batch = generate_batch(&cfg, 0, &mut rng);
    let real = &batch.files[0];
    let fake = forge_fake(real, 0);
    let registry = publisher_registry();

    let q = Query::new(real.query_text.clone()).unwrap();
    let candidates = [real.metadata.clone(), fake.metadata.clone()];
    let ranked = rank(
        candidates.iter(),
        &q,
        |m| {
            if m.uri() == &fake.uri {
                Popularity::MAX // the forgery lies about popularity
            } else {
                real.popularity
            }
        },
        Some(&registry),
    );
    // Naive policy falls for the louder fake; the authenticated policy does not.
    assert_eq!(
        select(&ranked, SelectionPolicy::BestRanked).unwrap().uri(),
        &fake.uri
    );
    assert_eq!(
        select(&ranked, SelectionPolicy::AuthenticatedOnly)
            .unwrap()
            .uri(),
        &real.uri
    );
}
