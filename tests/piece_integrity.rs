//! Piece-level integrity end-to-end: split → transfer (out of order, with
//! duplicates and corruption attempts) → verify → reassemble, plus publisher
//! authentication of the metadata that carries the checksums.

use mbt_core::auth::{sign, KeyRegistry, PublisherKey};
use mbt_core::piece::{split_into_pieces, Piece, PieceId};
use mbt_core::{FileAssembler, Metadata, Uri};

fn content(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 31 + 7) % 251) as u8).collect()
}

#[test]
fn full_pipeline_with_shuffled_lossy_channel() {
    let uri = Uri::new("mbt://fox/movie").unwrap();
    let data = content(10_000);
    let key = PublisherKey::derive(b"master", "FOX");
    let mut meta = Metadata::builder("FOX movie night", "FOX", uri.clone())
        .description("feature film")
        .content(&data, 1024)
        .build();
    sign(&mut meta, &key);

    let mut registry = KeyRegistry::new();
    registry.register("FOX", key);
    registry.verify(&meta).expect("authentic metadata accepted");

    // Channel: pieces arrive in reverse order, each duplicated, with a
    // corrupted copy injected in between.
    let mut assembler = FileAssembler::new(meta.clone());
    let mut pieces = split_into_pieces(&uri, &data, 1024);
    pieces.reverse();
    for p in pieces {
        let corrupted = Piece::new(p.id().clone(), vec![0xAB; p.len()]);
        // Corruption rejected, real piece accepted, duplicate idempotent.
        assert!(assembler.add_piece(corrupted).is_err());
        assembler.add_piece(p.clone()).unwrap();
        assembler.add_piece(p).unwrap();
    }
    assert!(assembler.is_complete());
    assert_eq!(assembler.assemble().unwrap(), data);
}

#[test]
fn forged_publisher_metadata_is_rejected_before_download() {
    let uri = Uri::new("mbt://fox/fake").unwrap();
    let attacker_key = PublisherKey::derive(b"attacker", "FOX");
    let mut forged = Metadata::builder("FOX totally real show", "FOX", uri)
        .content(&content(512), 256)
        .build();
    sign(&mut forged, &attacker_key);

    let mut registry = KeyRegistry::new();
    registry.register("FOX", PublisherKey::derive(b"master", "FOX"));
    assert!(registry.verify(&forged).is_err(), "forgery must not verify");
}

#[test]
fn pieces_of_one_file_do_not_pollute_another() {
    let uri_a = Uri::new("mbt://fox/a").unwrap();
    let uri_b = Uri::new("mbt://fox/b").unwrap();
    let data_a = content(2048);
    let data_b = content(2048);
    let meta_a = Metadata::builder("a", "FOX", uri_a.clone())
        .content(&data_a, 512)
        .build();
    let mut asm = FileAssembler::new(meta_a);
    for p in split_into_pieces(&uri_b, &data_b, 512) {
        assert!(asm.add_piece(p).is_err(), "cross-file piece accepted");
    }
    assert_eq!(asm.have_count(), 0);
}

#[test]
fn offsets_stamped_per_the_paper() {
    // "The pieces of a file ... are stamped with the URI of the file and
    // different offsets in the file" (§III-B).
    let uri = Uri::new("mbt://fox/clip").unwrap();
    let data = content(5 * 300);
    let pieces = split_into_pieces(&uri, &data, 300);
    for (i, p) in pieces.iter().enumerate() {
        assert_eq!(p.id().uri(), &uri);
        assert_eq!(p.id().offset(300), (i * 300) as u64);
    }
}

#[test]
fn tampering_with_any_single_byte_is_caught() {
    let uri = Uri::new("mbt://fox/x").unwrap();
    let data = content(600);
    let meta = Metadata::builder("x", "FOX", uri.clone())
        .content(&data, 200)
        .build();
    let pieces = split_into_pieces(&uri, &data, 200);
    for (pi, p) in pieces.iter().enumerate() {
        for byte in [0usize, p.len() / 2, p.len() - 1] {
            let mut tampered = p.data().to_vec();
            tampered[byte] ^= 0x01;
            let bad = Piece::new(PieceId::new(uri.clone(), pi as u32), tampered);
            assert!(
                !meta.verify_piece(&bad),
                "piece {pi} byte {byte} not caught"
            );
        }
    }
}
