//! Golden-figure regression tests.
//!
//! Regenerates Fig. 2(a) and Fig. 3(a) at `Scale::Quick` and diffs the
//! rendered CSV against checked-in fixtures, so any change to the simulator,
//! workload, RNG, executor, or CSV schema that shifts figure output fails CI
//! explicitly instead of silently drifting. The paper's headline protocol
//! ordering (MBT ≥ MBT-Q ≥ MBT-QM on metadata delivery) is asserted
//! directly as well.
//!
//! To update the fixtures after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p mbt-experiments --test golden_figures
//! ```
//!
//! and commit the resulting `tests/fixtures/*.csv` alongside the change.

use mbt_core::ProtocolKind;
use mbt_experiments::figures::{fault_sweep, fig2a, fig3a, RunContext};
use mbt_experiments::report::figure_csv;
use mbt_experiments::sweep::Figure;
use mbt_experiments::{ExecConfig, Scale};

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures")
        .join(name)
}

/// Compares `fig`'s CSV against the named fixture; with `UPDATE_GOLDEN=1`
/// rewrites the fixture instead.
fn assert_matches_golden(fig: &Figure, name: &str) {
    let csv = figure_csv(fig);
    let path = fixture_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &csv).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run UPDATE_GOLDEN=1 cargo test \
             -p mbt-experiments --test golden_figures to create it",
            path.display()
        )
    });
    assert_eq!(
        csv,
        golden,
        "{} drifted from its golden fixture {}; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 and commit the fixture",
        fig.id,
        path.display()
    );
}

fn series_mean(fig: &Figure, protocol: ProtocolKind) -> f64 {
    let s = fig.series_for(protocol).expect("series present");
    s.points.iter().map(|p| p.metadata_ratio).sum::<f64>() / s.points.len() as f64
}

/// Per-point slack: a floor of 0.02 plus two combined standard errors of the
/// two points' replicate spreads. At `Scale::Quick` adjacent variants can
/// tie within simulation noise (sparse points generate only tens of
/// queries), but a genuine regression — a variant losing its mechanism —
/// shifts ratios far beyond this.
fn slack(a: &mbt_experiments::SeriesPoint, b: &mbt_experiments::SeriesPoint) -> f64 {
    let var = a.metadata.stddev * a.metadata.stddev + b.metadata.stddev * b.metadata.stddev;
    let n = a.metadata.n.max(1) as f64;
    0.02 + 2.0 * (var / n).sqrt()
}

/// The paper's §VI-B ordering: MBT ≥ MBT-Q ≥ MBT-QM on metadata delivery —
/// strictly on the series means, within [`slack`] per point.
fn assert_protocol_ordering(fig: &Figure) {
    let mean_mbt = series_mean(fig, ProtocolKind::Mbt);
    let mean_q = series_mean(fig, ProtocolKind::MbtQ);
    let mean_qm = series_mean(fig, ProtocolKind::MbtQm);
    assert!(
        mean_mbt >= mean_q && mean_q >= mean_qm,
        "{}: mean metadata ordering violated: MBT {mean_mbt} / MBT-Q {mean_q} / MBT-QM {mean_qm}",
        fig.id
    );

    let mbt = fig.series_for(ProtocolKind::Mbt).expect("MBT series");
    let q = fig.series_for(ProtocolKind::MbtQ).expect("MBT-Q series");
    let qm = fig.series_for(ProtocolKind::MbtQm).expect("MBT-QM series");
    for ((pm, pq), pqm) in mbt.points.iter().zip(&q.points).zip(&qm.points) {
        assert!(
            pm.metadata_ratio >= pq.metadata_ratio - slack(pm, pq),
            "{}: at x={}, MBT {} < MBT-Q {}",
            fig.id,
            pm.x,
            pm.metadata_ratio,
            pq.metadata_ratio
        );
        assert!(
            pq.metadata_ratio >= pqm.metadata_ratio - slack(pq, pqm),
            "{}: at x={}, MBT-Q {} < MBT-QM {}",
            fig.id,
            pq.x,
            pq.metadata_ratio,
            pqm.metadata_ratio
        );
    }
}

/// Three replicates: deterministic (seeds derive from grid coordinates),
/// smooths single-run noise, and pins non-zero stddev columns in the
/// fixtures.
fn golden_exec() -> ExecConfig {
    ExecConfig::default().replicates(3)
}

/// The fault sweep keeps the paper's per-point ordering only while the
/// channel still works: at loss ≤ 25% the protocols' mechanisms dominate,
/// beyond that every variant converges toward zero and the comparison is
/// pure noise. Same per-point [`slack`] as the clean figures.
fn assert_protocol_ordering_up_to(fig: &Figure, max_x: f64) {
    let mbt = fig.series_for(ProtocolKind::Mbt).expect("MBT series");
    let q = fig.series_for(ProtocolKind::MbtQ).expect("MBT-Q series");
    let qm = fig.series_for(ProtocolKind::MbtQm).expect("MBT-QM series");
    let mut checked = 0;
    for ((pm, pq), pqm) in mbt.points.iter().zip(&q.points).zip(&qm.points) {
        if pm.x > max_x {
            continue;
        }
        checked += 1;
        assert!(
            pm.metadata_ratio >= pq.metadata_ratio - slack(pm, pq),
            "{}: at x={}, MBT {} < MBT-Q {}",
            fig.id,
            pm.x,
            pm.metadata_ratio,
            pq.metadata_ratio
        );
        assert!(
            pq.metadata_ratio >= pqm.metadata_ratio - slack(pq, pqm),
            "{}: at x={}, MBT-Q {} < MBT-QM {}",
            fig.id,
            pq.x,
            pq.metadata_ratio,
            pqm.metadata_ratio
        );
    }
    assert!(checked > 0, "{}: no points at x <= {max_x}", fig.id);
}

#[test]
fn fault_sweep_quick_matches_golden() {
    let fig = fault_sweep(&mut RunContext::new(Scale::Quick).exec(golden_exec()));
    assert_protocol_ordering_up_to(&fig, 0.25);
    assert_matches_golden(&fig, "fault_sweep_quick.csv");
}

#[test]
fn fig2a_quick_matches_golden() {
    let fig = fig2a(&mut RunContext::new(Scale::Quick).exec(golden_exec()));
    assert_protocol_ordering(&fig);
    assert_matches_golden(&fig, "fig2a_quick.csv");
}

#[test]
fn fig3a_quick_matches_golden() {
    let fig = fig3a(&mut RunContext::new(Scale::Quick).exec(golden_exec()));
    assert_protocol_ordering(&fig);
    assert_matches_golden(&fig, "fig3a_quick.csv");
}
