//! The tentpole contract of the sharded trace subsystem: a simulation or
//! sweep over a sharded on-disk trace is **byte-identical** to the same run
//! over the fully resident trace, for any `--jobs` count, while memory stays
//! bounded by the largest single shard.
//!
//! What differs between the backings — and only this — is the trio of shard
//! telemetry counters (`shards_loaded`, `shards_prefetched`,
//! `peak_resident_contacts`), which describe *how* the contacts were
//! replayed, not what the simulation did. Those counters are themselves
//! pinned: deterministic across repeat runs and worker counts per backing.

use dtn_sim::telemetry::Counters;
use dtn_sim::{FaultPlan, Telemetry};
use dtn_trace::generators::DieselNetConfig;
use dtn_trace::{ContactSink as _, ShardWriter, ShardedTrace, SimDuration, TraceSource};
use mbt_experiments::figures::{fault_sweep, fig2a, RunContext};
use mbt_experiments::report::figure_csv;
use mbt_experiments::runner::{run_simulation, SimParams};
use mbt_experiments::{ExecConfig, Scale};

/// Fresh per-test shard directory (tests run concurrently).
fn shard_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("mbt-sharded-equivalence")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The simulation-visible counters: everything except the backing-dependent
/// shard counters. The residue counters stay in — cold-node residue is a
/// pure function of the contact sequence, identical across backings.
fn sim_counters(c: &Counters) -> Counters {
    Counters {
        shards_loaded: 0,
        shards_prefetched: 0,
        peak_resident_contacts: 0,
        ..*c
    }
}

#[test]
fn figure_csv_is_byte_identical_across_backings_and_jobs() {
    let mut renders = Vec::new();
    for jobs in [1, 8] {
        let mut memory = RunContext::new(Scale::Quick).exec(ExecConfig::default().jobs(jobs));
        renders.push(figure_csv(&fig2a(&mut memory)));
        let mut sharded = RunContext::new(Scale::Quick)
            .exec(ExecConfig::default().jobs(jobs))
            .sharded(shard_dir(&format!("fig2a-jobs{jobs}")));
        renders.push(figure_csv(&fig2a(&mut sharded)));
    }
    for render in &renders[1..] {
        assert_eq!(
            &renders[0], render,
            "backing or worker count changed figure CSV bytes"
        );
    }
}

#[test]
fn fault_sweep_with_active_plan_is_byte_identical_across_backings() {
    // The fault sweep exercises non-noop fault plans (per-cell FAULT_STREAM
    // seeds), so this pins that injected faults replay identically when the
    // contacts arrive from disk shards.
    let mut memory = RunContext::new(Scale::Quick).exec(ExecConfig::default().jobs(2));
    let from_memory = figure_csv(&fault_sweep(&mut memory));
    let mut sharded = RunContext::new(Scale::Quick)
        .exec(ExecConfig::default().jobs(2))
        .sharded(shard_dir("fault-sweep"));
    let from_shards = figure_csv(&fault_sweep(&mut sharded));
    assert_eq!(
        from_memory, from_shards,
        "sharded backing changed fault-sweep CSV bytes"
    );
}

#[test]
fn single_simulation_result_is_identical_including_faults() {
    let trace = DieselNetConfig::new(16, 6).seed(42).generate();
    let dir = shard_dir("single-sim");
    let mut writer = ShardWriter::create(&dir, SimDuration::from_days(1)).unwrap();
    for c in trace.iter() {
        writer.push_contact(c.clone());
    }
    let sharded = writer.finish().unwrap();

    let params = SimParams {
        days: 6,
        files_per_day: 10,
        seed: 7,
        faults: FaultPlan::none().loss(0.2).churn(0.1).seed(7),
        ..SimParams::default()
    };
    let from_memory = run_simulation(&trace, &params, None);
    let from_shards = run_simulation(&sharded, &params, None);
    assert_eq!(from_memory, from_shards, "backing changed the SimResult");
}

#[test]
fn simulation_counters_match_and_shard_counters_are_deterministic() {
    let trace = DieselNetConfig::new(16, 6).seed(42).generate();
    let dir = shard_dir("counters");
    let mut writer = ShardWriter::create(&dir, SimDuration::from_days(1)).unwrap();
    for c in trace.iter() {
        writer.push_contact(c.clone());
    }
    let sharded = writer.finish().unwrap();
    let params = SimParams {
        days: 6,
        files_per_day: 10,
        seed: 7,
        ..SimParams::default()
    };

    let observe = |source: &dyn TraceSource| {
        let mut tel = Telemetry::default();
        run_simulation(source, &params, Some(&mut tel));
        tel.counters
    };
    let mem_1 = observe(&trace);
    let mem_2 = observe(&trace);
    let shard_1 = observe(&sharded);
    let shard_2 = observe(&sharded);

    // Simulation-visible counters are a pure function of the contact
    // sequence, which both backings replay identically.
    assert_eq!(sim_counters(&mem_1), sim_counters(&shard_1));
    // Shard counters describe the backing and are deterministic per backing.
    assert_eq!(mem_1, mem_2);
    assert_eq!(shard_1, shard_2);
    assert_eq!(mem_1.shards_loaded, 0, "in-memory run loaded shards");
    assert!(
        shard_1.shards_loaded >= sharded.shard_count() as u64,
        "streaming run must load every shard at least once"
    );
    // The in-memory backing holds the whole trace; the sharded backing never
    // holds more than its largest shard.
    assert_eq!(mem_1.peak_resident_contacts, trace.len() as u64);
    assert!(shard_1.peak_resident_contacts <= sharded.largest_shard_contacts());
}

#[test]
fn node_residency_counters_are_invariant_across_shard_jobs() {
    // `ShardWriter::finish` may sort shards on any number of worker threads;
    // the written bytes — and therefore every simulation counter, including
    // the node-arena residency telemetry — must not depend on the job count.
    let write = |name: &str, jobs: usize| {
        let dir = shard_dir(name);
        let mut writer = ShardWriter::create(&dir, SimDuration::from_days(1))
            .unwrap()
            .jobs(jobs);
        DieselNetConfig::new(16, 6)
            .seed(42)
            .generate_into(&mut writer);
        writer.finish().unwrap()
    };
    let serial = write("node-res-jobs1", 1);
    let threaded = write("node-res-jobs4", 4);
    assert_eq!(serial.shards(), threaded.shards(), "manifests diverged");

    let params = SimParams {
        days: 6,
        files_per_day: 10,
        seed: 7,
        ..SimParams::default()
    };
    let observe = |source: &dyn TraceSource| {
        let mut tel = Telemetry::default();
        run_simulation(source, &params, Some(&mut tel));
        tel.counters
    };
    let a = observe(&serial);
    let b = observe(&threaded);
    assert_eq!(a, b, "shard-sort job count leaked into simulation counters");
    assert!(a.nodes_instantiated > 0, "no nodes were ever materialized");
    assert!(
        a.peak_resident_nodes <= a.nodes_instantiated,
        "peak resident nodes cannot exceed total instantiations"
    );
    assert!(
        a.peak_resident_nodes <= 16,
        "peak resident nodes exceeds the trace's node population"
    );
}

#[test]
fn streaming_a_10x_trace_is_bounded_by_the_largest_shard() {
    // A DieselNet-style trace 10x the Quick span (60 days vs 6), written
    // straight to shards by the generator — the full contact sequence never
    // exists in memory. The streaming run's peak residency must stay at the
    // largest single shard, i.e. ~1/60th of the whole trace.
    let dir = shard_dir("10x");
    let mut writer = ShardWriter::create(&dir, SimDuration::from_days(1)).unwrap();
    DieselNetConfig::new(16, 60)
        .seed(42)
        .generate_into(&mut writer);
    let sharded = writer.finish().unwrap();
    assert!(sharded.shard_count() >= 50, "expected ~60 daily shards");
    let total = sharded.len() as u64;
    let largest = sharded.largest_shard_contacts();
    assert!(
        largest * 10 <= total,
        "largest shard {largest} is not a small fraction of {total} contacts"
    );

    let mut tel = Telemetry::default();
    let params = SimParams {
        days: 60,
        files_per_day: 10,
        seed: 42,
        ..SimParams::default()
    };
    let r = run_simulation(&sharded, &params, Some(&mut tel));
    assert!(r.queries > 0, "10x run did nothing");
    assert!(
        tel.counters.peak_resident_contacts <= largest,
        "peak residency {} exceeds largest shard {largest}",
        tel.counters.peak_resident_contacts
    );
    assert!(tel.counters.shards_loaded >= sharded.shard_count() as u64);
}

#[test]
fn shard_manifest_matches_golden_fixture() {
    // Golden pin of the on-disk shard format (`# dtn-shard v1`): a fixed
    // Quick-scale trace must always shard to byte-identical manifest and
    // first-shard bytes. Regenerate with UPDATE_GOLDEN=1 after an
    // *intentional* format change and commit the fixtures.
    let dir = shard_dir("golden");
    let mut writer = ShardWriter::create(&dir, SimDuration::from_days(1)).unwrap();
    DieselNetConfig::new(16, 6)
        .seed(42)
        .generate_into(&mut writer);
    let sharded = writer.finish().unwrap();

    let fixture_dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/shard_quick");
    for name in ["manifest.txt", "shard-00000.txt"] {
        let produced = std::fs::read_to_string(sharded.dir().join(name)).unwrap();
        let fixture = fixture_dir.join(name);
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::create_dir_all(&fixture_dir).unwrap();
            std::fs::write(&fixture, &produced).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&fixture).unwrap_or_else(|e| {
            panic!(
                "missing golden shard fixture {} ({e}); run UPDATE_GOLDEN=1 \
                 cargo test -p mbt-experiments --test sharded_equivalence",
                fixture.display()
            )
        });
        assert_eq!(
            produced, golden,
            "{name} drifted from its golden fixture; if intentional, \
             regenerate with UPDATE_GOLDEN=1 and commit"
        );
    }
    // And the round trip: reopening the directory reproduces the manifest
    // facts the writer reported.
    let reopened = ShardedTrace::open(sharded.dir()).unwrap();
    assert_eq!(reopened.len(), sharded.len());
    assert_eq!(reopened.window(), sharded.window());
    assert_eq!(reopened.shards(), sharded.shards());
    assert_eq!(reopened.nodes(), sharded.nodes());
    assert_eq!(reopened.id_space(), sharded.id_space());
}
