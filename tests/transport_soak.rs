//! Wall-clock soak: live nodes on the threaded bus deliver a real file.
//!
//! Three nodes and a `ServerSnapshot`-backed gateway run as OS threads on
//! [`LiveBus`], with a synthetic 2-contact schedule playing the role of a
//! contact trace: first one node meets the gateway and pulls the file it
//! queried (search → metadata → piece requests → pieces), then the three
//! nodes meet and the holder serves the other two peer-to-peer. Every
//! message crosses the wire as an encoded frame, every piece is checksum
//! verified by the assembler, and the reassembled bytes must hash to the
//! published content's digest — the same digest the simulator's stores are
//! keyed on. Two executions of the same spec must produce identical
//! reports.

use std::collections::BTreeMap;
use std::time::Duration;

use dtn_trace::NodeId;
use mbt_core::checksum::sha1;
use mbt_core::transport::live::{
    run_live_session, LiveGatewaySpec, LiveNodeSpec, LiveReport, LiveSessionSpec,
};
use mbt_core::{Metadata, MetadataServer, Popularity, Query, Uri};

const PIECE_SIZE: u64 = 256;
const FILE_BYTES: usize = 1536; // 6 pieces of 256 bytes

fn file_uri() -> Uri {
    Uri::new("mbt://soak/news").unwrap()
}

fn file_content() -> Vec<u8> {
    (0..FILE_BYTES).map(|i| (i % 251) as u8).collect()
}

fn session_spec() -> LiveSessionSpec {
    let content = file_content();
    let metadata = Metadata::builder("fox evening news", "FOX", file_uri())
        .content(&content, PIECE_SIZE as usize)
        .build();
    assert_eq!(metadata.piece_count(), 6, "fixture drifted");

    let mut server = MetadataServer::new(1);
    server.publish(metadata, Popularity::new(0.8));

    let gateway_id = NodeId::new(100);
    let query = Query::new("evening news").unwrap();
    LiveSessionSpec {
        nodes: (0..3)
            .map(|i| LiveNodeSpec {
                id: NodeId::new(i),
                queries: vec![query.clone()],
            })
            .collect(),
        gateway: Some(LiveGatewaySpec {
            id: gateway_id,
            snapshot: server.snapshot(),
            content: BTreeMap::from([(file_uri(), content)]),
        }),
        // Contact 1: node 0 meets the gateway. Contact 2: the three nodes
        // meet and node 0 (now a holder) serves nodes 1 and 2.
        schedule: vec![
            vec![NodeId::new(0), gateway_id],
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
        ],
        settle: Duration::from_millis(60),
    }
}

fn assert_full_delivery(report: &LiveReport) {
    let expected_digest = sha1(&file_content());
    for i in 0..3 {
        let delivered = report
            .deliveries
            .get(&NodeId::new(i))
            .unwrap_or_else(|| panic!("node {i} missing from the report"));
        let digest = delivered
            .get(&file_uri())
            .unwrap_or_else(|| panic!("node {i} never completed the file"));
        assert_eq!(
            *digest, expected_digest,
            "node {i} assembled different bytes than were published"
        );
    }
}

#[test]
fn three_nodes_and_a_gateway_deliver_a_full_file() {
    let report = run_live_session(session_spec());
    assert_full_delivery(&report);

    // The session exercised the full message flow on the wire.
    let frames = &report.stats.frames_by_kind;
    assert!(frames.get("hello").copied().unwrap_or(0) > 0);
    assert!(frames.get("search-results").copied().unwrap_or(0) > 0);
    assert!(frames.get("metadata").copied().unwrap_or(0) > 0);
    // 6 pieces to node 0 from the gateway, 6 to each of nodes 1 and 2.
    assert_eq!(frames.get("piece-request").copied().unwrap_or(0), 18);
    assert_eq!(frames.get("piece").copied().unwrap_or(0), 18);
    assert!(report.stats.bytes_on_wire > FILE_BYTES as u64 * 3);
}

#[test]
fn identical_specs_produce_identical_reports() {
    let first = run_live_session(session_spec());
    let second = run_live_session(session_spec());
    assert_full_delivery(&first);
    assert_eq!(
        first, second,
        "the live session is not deterministic across executions"
    );
}
