//! The parallel executor's determinism contract, end to end.
//!
//! The same figure run with `--jobs 1` and `--jobs 8` — and run twice with
//! the same configuration — must produce byte-identical merged results. This
//! holds because every sweep cell derives its seed from its grid coordinates
//! (`derive_seed(&[master, point, protocol, replicate])`) and the reduction
//! happens in grid order, never completion order.

use dtn_sim::FaultPlan;
use dtn_trace::generators::NusConfig;
use mbt_experiments::figures::{fault_sweep, fig2a, RunContext};
use mbt_experiments::report::figure_csv;
use mbt_experiments::{ExecConfig, ParallelRunner, Scale, SimParams};

fn exec(jobs: usize) -> ExecConfig {
    ExecConfig::default().jobs(jobs).replicates(2)
}

#[test]
fn jobs_1_and_jobs_8_are_byte_identical() {
    let serial = fig2a(&mut RunContext::new(Scale::Quick).exec(exec(1)));
    let parallel = fig2a(&mut RunContext::new(Scale::Quick).exec(exec(8)));
    assert_eq!(serial, parallel, "thread count changed sweep results");
    assert_eq!(
        figure_csv(&serial),
        figure_csv(&parallel),
        "thread count changed rendered CSV bytes"
    );
}

#[test]
fn repeated_invocations_are_byte_identical() {
    let first = fig2a(&mut RunContext::new(Scale::Quick).exec(exec(8)));
    let second = fig2a(&mut RunContext::new(Scale::Quick).exec(exec(8)));
    assert_eq!(first, second, "same config, different results across runs");
    assert_eq!(figure_csv(&first), figure_csv(&second));
}

#[test]
fn auto_jobs_matches_serial() {
    // jobs = 0 (one worker per core) must agree with explicit serial runs.
    let auto = fig2a(&mut RunContext::new(Scale::Quick).exec(ExecConfig::default()));
    let serial = fig2a(&mut RunContext::new(Scale::Quick).exec(ExecConfig::serial()));
    assert_eq!(auto, serial);
}

#[test]
fn fault_sweep_jobs_1_and_jobs_8_are_byte_identical() {
    // Fault streams reseed per cell from grid coordinates (with the extra
    // FAULT_STREAM tag), so the determinism contract extends to faulty runs.
    let serial = fault_sweep(&mut RunContext::new(Scale::Quick).exec(exec(1)));
    let parallel = fault_sweep(&mut RunContext::new(Scale::Quick).exec(exec(8)));
    assert_eq!(serial, parallel, "thread count changed fault-sweep results");
    assert_eq!(
        figure_csv(&serial),
        figure_csv(&parallel),
        "thread count changed rendered fault-sweep CSV bytes"
    );
}

#[test]
fn loss_zero_fault_sweep_is_byte_identical_to_no_fault_sweep() {
    // A sweep whose plan carries rate 0 must not disturb a single byte of
    // the fault-free output: zero-rate plans draw no random numbers and the
    // executor leaves their seeds untouched. The CSV contains no figure
    // id/title, so the two renders compare byte-for-byte.
    let runner = ParallelRunner::new(exec(2));
    let trace = NusConfig::new(20, 4)
        .seed(7)
        .attendance_rate(0.8)
        .generate();
    let base = || SimParams {
        days: 4,
        seed: 7,
        ..SimParams::default()
    };
    let faulty = runner.sweep_shared_trace(
        "fault_sweep",
        "loss-zero fault sweep",
        "loss rate",
        &[0.0],
        &trace,
        |x| SimParams {
            faults: FaultPlan::none().loss(x),
            ..base()
        },
        None,
    );
    let clean = runner.sweep_shared_trace(
        "clean_sweep",
        "no-fault sweep",
        "loss rate",
        &[0.0],
        &trace,
        |_| base(),
        None,
    );
    assert_eq!(
        figure_csv(&faulty),
        figure_csv(&clean),
        "a zero-rate fault plan perturbed the fault-free sweep"
    );
}

#[test]
fn telemetry_counters_are_identical_jobs_1_vs_8() {
    // Counters are a pure function of the deterministic event stream and are
    // merged in grid order, so they inherit the executor's determinism
    // contract: any worker count produces the same totals. (Phase timings
    // are wall clock and deliberately excluded from this comparison.)
    let mut ctx_serial = RunContext::new(Scale::Quick).exec(exec(1)).observed();
    let fig_serial = fig2a(&mut ctx_serial);
    let tel_serial = ctx_serial.take_telemetry();
    let mut ctx_parallel = RunContext::new(Scale::Quick).exec(exec(8)).observed();
    let fig_parallel = fig2a(&mut ctx_parallel);
    let tel_parallel = ctx_parallel.take_telemetry();
    assert_eq!(fig_serial, fig_parallel);
    assert_eq!(
        tel_serial.counters, tel_parallel.counters,
        "thread count changed telemetry counters"
    );
    assert!(tel_serial.counters.contacts > 0, "counters never fired");
    assert!(tel_serial.counters.bytes_moved > 0, "no bytes accounted");

    let mut ctx_faulty_1 = RunContext::new(Scale::Quick).exec(exec(1)).observed();
    let _ = fault_sweep(&mut ctx_faulty_1);
    let tel_faulty_1 = ctx_faulty_1.take_telemetry();
    let mut ctx_faulty_8 = RunContext::new(Scale::Quick).exec(exec(8)).observed();
    let _ = fault_sweep(&mut ctx_faulty_8);
    let tel_faulty_8 = ctx_faulty_8.take_telemetry();
    assert_eq!(
        tel_faulty_1.counters, tel_faulty_8.counters,
        "thread count changed fault-sweep telemetry counters"
    );
    assert!(
        tel_faulty_1.counters.frames_lost > 0,
        "loss cells drop frames"
    );
}

#[test]
fn telemetry_on_and_off_render_identical_csv() {
    // Enabling observation must not perturb simulation output: the observed
    // sweep's figure is byte-identical to the unobserved sweep's.
    let plain = fig2a(&mut RunContext::new(Scale::Quick).exec(exec(2)));
    let mut ctx = RunContext::new(Scale::Quick).exec(exec(2)).observed();
    let observed = fig2a(&mut ctx);
    let telemetry = ctx.take_telemetry();
    assert_eq!(plain, observed, "telemetry perturbed sweep results");
    assert_eq!(
        figure_csv(&plain),
        figure_csv(&observed),
        "telemetry changed rendered CSV bytes"
    );
    assert!(
        !telemetry.counters.is_zero(),
        "observation recorded nothing"
    );
}

#[test]
fn replicated_points_pool_counts_and_report_spread() {
    let fig = fig2a(&mut RunContext::new(Scale::Quick).exec(exec(4)));
    for series in &fig.series {
        for point in &series.points {
            assert_eq!(point.metadata.n, 2, "expected two replicates");
            assert!(point.metadata.min <= point.metadata.mean);
            assert!(point.metadata.mean <= point.metadata.max);
            assert!(point.metadata.stddev >= 0.0);
            // Pooled counts from both replicates back the merged result.
            assert!(point.result.queries > 0);
        }
    }
}
