//! Tit-for-tat incentive properties (paper §IV-B, §V-B): contributors earn
//! credit and are served earlier; free-riders are not completely inhibited
//! (broadcast reaches them) but rank behind contributors.

use dtn_trace::{NodeId, SimDuration, SimTime};
use mbt_core::discovery::{tft, MetadataOffer};
use mbt_core::node::run_contact;
use mbt_core::{
    CooperationMode, CreditLedger, MbtConfig, MbtNode, Metadata, Popularity, ProtocolKind, Query,
    Uri,
};

fn meta(name: &str, uri: &str) -> Metadata {
    Metadata::builder(name, "FOX", Uri::new(uri).unwrap()).build()
}

fn tft_node(i: u32) -> MbtNode {
    MbtNode::new(
        NodeId::new(i),
        ProtocolKind::Mbt,
        MbtConfig::new().cooperation(CooperationMode::TitForTat),
    )
}

#[test]
fn credits_accumulate_through_contacts() {
    // Node 0 carries metadata node 1 wants; after the contact node 1 credits
    // node 0 with the matched reward.
    let mut nodes = vec![tft_node(0), tft_node(1)];
    let mut seeded = meta("fox evening news", "mbt://a");
    let _ = &mut seeded;
    // Seed node 0 through a contact with an internet-like donor is overkill;
    // instead push via a third node acting as source.
    let mut source = tft_node(2);
    source.set_internet_access(true);
    let mut server = mbt_core::MetadataServer::new(1);
    server.publish(seeded, Popularity::new(0.5));
    source.add_query(Query::new("evening news").unwrap(), None);
    source.internet_session(&mut server, SimTime::ZERO);

    let mut all = vec![nodes.remove(0), nodes.remove(0), source];
    all[1].add_query(Query::new("evening news").unwrap(), None);
    // Contact among source (index 2) and node 0 (index 0): node 0 learns it.
    run_contact(
        &mut all,
        &[0, 2],
        SimTime::from_secs(10),
        SimDuration::from_secs(60),
    );
    assert!(all[0].has_metadata(&Uri::new("mbt://a").unwrap()));
    // node 0 credited the source for the (unmatched) metadata.
    assert!(all[0].credits().credit_of(NodeId::new(2)) > 0.0);

    // Now node 0 meets node 1, whose query matches: node 1 pays +5 for the
    // matched metadata and +5 again for the matched file that rode along
    // (§V-B reuses the same credit mechanism for file downloads).
    run_contact(
        &mut all,
        &[0, 1],
        SimTime::from_secs(100),
        SimDuration::from_secs(60),
    );
    assert!(all[1].has_metadata(&Uri::new("mbt://a").unwrap()));
    assert!(all[1].has_file(&Uri::new("mbt://a").unwrap()));
    assert_eq!(all[1].credits().credit_of(NodeId::new(0)), 10.0);
}

#[test]
fn contributor_queries_outrank_free_rider_queries() {
    // A sender holding two metadata, requested by a contributor (credit 5)
    // and a free-rider (credit 0) respectively, serves the contributor first
    // when the budget only allows one.
    let mut ledger = CreditLedger::new();
    ledger.reward_matched(NodeId::new(1)); // contributor
    let m_contrib = meta("for contributor", "mbt://c");
    let m_free = meta("for freerider", "mbt://f");
    let queries = vec![
        (NodeId::new(1), Query::new("contributor").unwrap()),
        (NodeId::new(2), Query::new("freerider").unwrap()),
    ];
    let offers = vec![
        MetadataOffer::build(&m_free, Popularity::MAX, &queries),
        MetadataOffer::build(&m_contrib, Popularity::MIN, &queries),
    ];
    let order = tft::send_order(offers, &ledger, 1);
    assert_eq!(order.len(), 1);
    assert_eq!(order[0].uri().as_str(), "mbt://c");
}

#[test]
fn free_riders_still_receive_broadcasts() {
    // The paper: "due to the broadcast nature of wireless networks,
    // free-riders cannot be completely inhibited." A clique broadcast under
    // tit-for-tat reaches the free-rider too.
    let mut nodes = vec![tft_node(0), tft_node(1), tft_node(2)];
    // Node 0 holds a file all can receive.
    let mut server = mbt_core::MetadataServer::new(1);
    server.publish(meta("hot clip", "mbt://hot"), Popularity::new(0.9));
    nodes[0].set_internet_access(true);
    nodes[0].add_query(Query::new("hot clip").unwrap(), None);
    nodes[0].internet_session(&mut server, SimTime::ZERO);

    run_contact(
        &mut nodes,
        &[0, 1, 2],
        SimTime::from_secs(50),
        SimDuration::from_secs(600),
    );
    let uri = Uri::new("mbt://hot").unwrap();
    assert!(nodes[1].has_file(&uri));
    assert!(
        nodes[2].has_file(&uri),
        "free-rider receives the broadcast too"
    );
}

#[test]
fn tft_and_cooperative_agree_when_everyone_is_equal() {
    // With all-zero credits and symmetric state, both modes deliver the same
    // set of items (ordering ties broken differently is fine; sets match).
    let build = |mode: CooperationMode| {
        let mut nodes: Vec<MbtNode> = (0..3)
            .map(|i| {
                MbtNode::new(
                    NodeId::new(i),
                    ProtocolKind::Mbt,
                    MbtConfig::new().cooperation(mode).metadata_per_contact(50),
                )
            })
            .collect();
        let mut server = mbt_core::MetadataServer::new(1);
        for i in 0..5 {
            server.publish(
                meta(&format!("clip {i}"), &format!("mbt://x{i}")),
                Popularity::new(0.5),
            );
        }
        nodes[0].set_internet_access(true);
        nodes[0].add_query(Query::new("clip").unwrap(), None);
        nodes[0].internet_session(&mut server, SimTime::ZERO);
        run_contact(
            &mut nodes,
            &[0, 1, 2],
            SimTime::from_secs(10),
            SimDuration::from_secs(600),
        );
        (0..5)
            .map(|i| nodes[2].has_metadata(&Uri::new(format!("mbt://x{i}")).unwrap()))
            .collect::<Vec<bool>>()
    };
    assert_eq!(
        build(CooperationMode::Cooperative),
        build(CooperationMode::TitForTat)
    );
}
