//! The prefetch contract: replaying a sharded trace with pipelined shard
//! prefetch (`SimParams::prefetch` / `mbt simulate --prefetch`) is
//! **byte-identical** to the serial replay at every depth and `--jobs`
//! count — the background decode worker only changes *when* shards are
//! parsed, never what the simulation sees.
//!
//! The only observable difference is the `shards_prefetched` telemetry
//! counter (and, with depth > 0, a higher `peak_resident_contacts`, since
//! decoded-ahead shards are resident too).

use std::sync::OnceLock;

use dtn_sim::telemetry::Counters;
use dtn_sim::{FaultPlan, Telemetry};
use dtn_trace::generators::DieselNetConfig;
use dtn_trace::{ShardWriter, ShardedTrace, SimDuration, TraceSource};
use mbt_experiments::figures::{fig2a, RunContext};
use mbt_experiments::report::figure_csv;
use mbt_experiments::runner::{run_simulation, SimParams};
use mbt_experiments::{ExecConfig, Scale};
use proptest::prelude::*;

/// Fresh per-test shard directory (tests run concurrently).
fn shard_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("mbt-prefetch-equivalence")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The simulation-visible counters: everything except the replay-mechanics
/// counters a prefetching run is allowed to report differently.
fn sim_counters(c: &Counters) -> Counters {
    Counters {
        shards_prefetched: 0,
        peak_resident_contacts: 0,
        ..*c
    }
}

#[test]
fn fig2a_csv_is_byte_identical_across_prefetch_depths_and_jobs() {
    let mut renders = Vec::new();
    for jobs in [1, 8] {
        for depth in [0, 1, 2] {
            let mut ctx = RunContext::new(Scale::Quick)
                .exec(ExecConfig::default().jobs(jobs))
                .sharded(shard_dir(&format!("fig2a-j{jobs}-p{depth}")))
                .prefetch(depth);
            renders.push(figure_csv(&fig2a(&mut ctx)));
        }
    }
    for render in &renders[1..] {
        assert_eq!(
            &renders[0], render,
            "prefetch depth or worker count changed figure CSV bytes"
        );
    }
}

#[test]
fn sixty_day_replay_with_active_faults_is_identical_at_every_depth() {
    // A 60-day trace (≈60 daily shards) keeps the prefetch worker busy for
    // the whole run, and the non-noop fault plan pins that injected faults
    // fire identically when contacts arrive from a decoded-ahead shard.
    let dir = shard_dir("60d-faults");
    let mut writer = ShardWriter::create(&dir, SimDuration::from_days(1)).unwrap();
    DieselNetConfig::new(16, 60)
        .seed(42)
        .generate_into(&mut writer);
    let sharded = writer.finish().unwrap();
    assert!(sharded.shard_count() >= 50, "expected ~60 daily shards");

    let base = SimParams {
        days: 60,
        files_per_day: 10,
        seed: 7,
        faults: FaultPlan::none().loss(0.2).churn(0.1).seed(7),
        ..SimParams::default()
    };
    let mut serial_tel = Telemetry::default();
    let serial = run_simulation(&sharded, &base, Some(&mut serial_tel));
    assert_eq!(serial_tel.counters.shards_prefetched, 0, "serial replay");
    for depth in [1usize, 2] {
        let mut tel = Telemetry::default();
        let params = SimParams {
            prefetch: depth,
            ..base.clone()
        };
        let r = run_simulation(&sharded, &params, Some(&mut tel));
        assert_eq!(serial, r, "prefetch depth {depth} changed the SimResult");
        assert_eq!(
            sim_counters(&serial_tel.counters),
            sim_counters(&tel.counters),
            "depth {depth} changed a simulation-visible counter"
        );
        // Single-decode replay: the manifest supplies the frequent-contact
        // map, so the one simulation pass is the only shard decode.
        assert_eq!(tel.counters.shards_loaded, sharded.shard_count() as u64);
        assert_eq!(
            tel.counters.shards_prefetched, tel.counters.shards_loaded,
            "a fully drained stream has prefetched exactly what it loaded"
        );
        assert!(
            tel.counters.peak_resident_contacts >= serial_tel.counters.peak_resident_contacts,
            "prefetched shards count toward residency"
        );
    }
}

/// One sharded fixture shared by every proptest case — building it per case
/// would dominate the run.
fn proptest_fixture() -> &'static ShardedTrace {
    static FIXTURE: OnceLock<ShardedTrace> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = shard_dir("proptest-fixture");
        let mut writer = ShardWriter::create(&dir, SimDuration::from_days(1)).unwrap();
        DieselNetConfig::new(12, 8)
            .seed(9)
            .generate_into(&mut writer);
        writer.finish().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Consuming any prefix of a prefetching stream — including dropping it
    /// mid-shard, which exercises the worker-abandonment path the engine
    /// takes when a contact starts beyond the horizon — yields exactly the
    /// serial contact sequence.
    #[test]
    fn random_partial_consumption_matches_the_serial_stream(
        take_raw in any::<u64>(),
        depth in 0usize..5,
    ) {
        let sharded = proptest_fixture();
        let len = TraceSource::len(sharded);
        let take = (take_raw % (len as u64 + 1)) as usize;
        let serial: Vec<_> = sharded.stream().take(take).collect();
        let prefetched: Vec<_> = sharded.stream_prefetch(depth).take(take).collect();
        prop_assert_eq!(serial, prefetched, "take {} depth {}", take, depth);
    }
}
