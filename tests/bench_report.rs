//! The perf-report pipeline, end to end: the bench harness, the JSON
//! round-trip, the baseline comparison, and the committed
//! `tests/fixtures/bench_baseline.json` fixture itself.
//!
//! To refresh the baselines after an *intentional* behaviour change:
//!
//! ```text
//! cargo build --release -p mbt-cli
//! ./target/release/mbt bench --scale quick --jobs 2 --out /tmp/BENCH_sweep.json
//! UPDATE_BASELINE=1 ./target/release/perf-check /tmp/BENCH_sweep.json
//! ./target/release/mbt bench --server --jobs 2 --out /tmp/BENCH_server.json
//! UPDATE_BASELINE=1 ./target/release/perf-check /tmp/BENCH_server.json \
//!     --baseline tests/fixtures/server_bench_baseline.json
//! ```
//!
//! and commit the rewritten fixture(s) alongside the change.

use std::time::Duration;

use dtn_sim::telemetry::Telemetry;
use mbt_experiments::perf::{
    compare, figure_cells, run_bench, run_server_bench_report, BenchReport, ServerBenchConfig,
    BENCH_SCHEMA,
};
use mbt_experiments::{ExecConfig, Scale, Tolerance};

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures/bench_baseline.json")
}

fn quick_bench() -> BenchReport {
    run_bench(Scale::Quick, &ExecConfig::default().jobs(2))
}

#[test]
fn bench_report_round_trips_and_compares_clean_against_itself() {
    let report = quick_bench();
    assert_eq!(report.schema, BENCH_SCHEMA);
    assert_eq!(report.sweeps, ["fig2a", "fig3a", "fault_sweep"]);
    assert!(report.cells > 0);
    assert!(report.cells_per_sec.is_finite());
    let parsed = BenchReport::from_json(&report.to_json()).unwrap();
    assert!(
        compare(&parsed, &report, &Tolerance::default()).is_empty(),
        "a report must be within tolerance of itself after a JSON round-trip"
    );
}

#[test]
fn committed_baseline_matches_current_behaviour() {
    // The same gate CI applies via perf-check: a fresh quick bench must
    // agree with the committed baseline on every deterministic field.
    // Timings are not compared here (test machines vary); perf-check
    // thresholds them separately.
    let baseline_text = std::fs::read_to_string(baseline_path())
        .expect("missing tests/fixtures/bench_baseline.json (see module docs to regenerate)");
    let baseline = BenchReport::from_json(&baseline_text).unwrap();
    assert_eq!(baseline.schema, BENCH_SCHEMA);

    let mut fresh = quick_bench();
    // Force the timing comparisons to be skipped: only the deterministic
    // fields (counters, cells, replicates, sweeps) remain.
    fresh.jobs = baseline.jobs + 1;
    let errors = compare(&fresh, &baseline, &Tolerance::default());
    assert!(
        errors.is_empty(),
        "fresh bench drifted from the committed baseline — if the change is \
         intentional, regenerate the fixture (see module docs):\n  {}",
        errors.join("\n  ")
    );
}

#[test]
fn zero_cell_report_stays_finite_and_comparable() {
    // Empty-sweep guard: a report over zero cells must carry zeroed rates
    // (never NaN or a div-by-zero panic) and still survive the JSON
    // round-trip and baseline comparison.
    let empty = BenchReport::new(
        "empty",
        &ExecConfig::serial(),
        0,
        Duration::ZERO,
        &Telemetry::default(),
        Vec::new(),
    );
    assert_eq!(empty.cells_per_sec, 0.0);
    assert!(empty.counters.is_zero());
    let parsed = BenchReport::from_json(&empty.to_json()).unwrap();
    assert!(compare(&parsed, &empty, &Tolerance::default()).is_empty());
}

#[test]
fn server_bench_report_round_trips_and_compares_clean() {
    // Shrunken shape: the full 10⁶-record corpus is a release-bench matter
    // (the CI perf job gates it against the committed fixture); this checks
    // the report plumbing end to end at test speed.
    let cfg = ServerBenchConfig {
        records: 800,
        ops: 600,
        shards: 4,
        seed: 42,
    };
    let report = run_server_bench_report(&cfg, &ExecConfig::default().jobs(2));
    assert_eq!(report.scale, "server");
    assert_eq!(report.cells, 0);
    assert!(report.sweeps.is_empty());
    let sb = report.server.as_ref().expect("server section");
    assert_eq!((sb.records, sb.shards, sb.ops), (800, 4, 600));
    assert!(sb.searches > 0 && sb.hits > 0 && sb.result_digest != 0);
    let parsed = BenchReport::from_json(&report.to_json()).unwrap();
    assert_eq!(
        parsed.server.as_ref().unwrap().result_digest,
        sb.result_digest,
        "the u64 digest must survive the JSON round-trip exactly"
    );
    assert!(compare(&parsed, &report, &Tolerance::default()).is_empty());
}

#[test]
fn committed_server_baseline_has_the_default_shape() {
    // The full-scale digest is verified by the CI perf job in release mode;
    // here we pin the fixture's *shape* so a stale or hand-edited baseline
    // fails fast in the ordinary test suite.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures/server_bench_baseline.json");
    let text = std::fs::read_to_string(&path).expect(
        "missing tests/fixtures/server_bench_baseline.json (see module docs to regenerate)",
    );
    let baseline = BenchReport::from_json(&text).unwrap();
    assert_eq!(baseline.schema, BENCH_SCHEMA);
    assert_eq!(baseline.scale, "server");
    let sb = baseline.server.as_ref().expect("server section");
    let defaults = ServerBenchConfig::default();
    assert_eq!(sb.records, defaults.records);
    assert_eq!(sb.ops, defaults.ops);
    assert_eq!(sb.shards, defaults.shards as u64);
    assert!(sb.result_digest != 0);
    assert!(sb.searches > 0 && sb.hits > 0 && sb.expired > 0);
}

#[test]
fn figure_cells_counts_the_grid() {
    let mut ctx =
        mbt_experiments::figures::RunContext::new(Scale::Quick).exec(ExecConfig::serial());
    let fig = mbt_experiments::figures::fig2a(&mut ctx);
    // Quick fig2a: 3 protocols × 3 points.
    assert_eq!(figure_cells(&fig, 1), 9);
    assert_eq!(figure_cells(&fig, 4), 36);
    assert_eq!(figure_cells(&fig, 0), 9, "replicates clamp to 1");
}
