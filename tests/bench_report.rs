//! The perf-report pipeline, end to end: the bench harness, the JSON
//! round-trip, the baseline comparison, and the committed
//! `tests/fixtures/bench_baseline.json` fixture itself.
//!
//! To refresh the baseline after an *intentional* behaviour change:
//!
//! ```text
//! cargo build --release -p mbt-cli
//! ./target/release/mbt bench --scale quick --jobs 2 --out /tmp/BENCH_sweep.json
//! UPDATE_BASELINE=1 ./target/release/perf-check /tmp/BENCH_sweep.json
//! ```
//!
//! and commit the rewritten fixture alongside the change.

use std::time::Duration;

use dtn_sim::telemetry::Telemetry;
use mbt_experiments::perf::{compare, figure_cells, run_bench, BenchReport, BENCH_SCHEMA};
use mbt_experiments::{ExecConfig, Scale, Tolerance};

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures/bench_baseline.json")
}

fn quick_bench() -> BenchReport {
    run_bench(Scale::Quick, &ExecConfig::default().jobs(2))
}

#[test]
fn bench_report_round_trips_and_compares_clean_against_itself() {
    let report = quick_bench();
    assert_eq!(report.schema, BENCH_SCHEMA);
    assert_eq!(report.sweeps, ["fig2a", "fig3a", "fault_sweep"]);
    assert!(report.cells > 0);
    assert!(report.cells_per_sec.is_finite());
    let parsed = BenchReport::from_json(&report.to_json()).unwrap();
    assert!(
        compare(&parsed, &report, &Tolerance::default()).is_empty(),
        "a report must be within tolerance of itself after a JSON round-trip"
    );
}

#[test]
fn committed_baseline_matches_current_behaviour() {
    // The same gate CI applies via perf-check: a fresh quick bench must
    // agree with the committed baseline on every deterministic field.
    // Timings are not compared here (test machines vary); perf-check
    // thresholds them separately.
    let baseline_text = std::fs::read_to_string(baseline_path())
        .expect("missing tests/fixtures/bench_baseline.json (see module docs to regenerate)");
    let baseline = BenchReport::from_json(&baseline_text).unwrap();
    assert_eq!(baseline.schema, BENCH_SCHEMA);

    let mut fresh = quick_bench();
    // Force the timing comparisons to be skipped: only the deterministic
    // fields (counters, cells, replicates, sweeps) remain.
    fresh.jobs = baseline.jobs + 1;
    let errors = compare(&fresh, &baseline, &Tolerance::default());
    assert!(
        errors.is_empty(),
        "fresh bench drifted from the committed baseline — if the change is \
         intentional, regenerate the fixture (see module docs):\n  {}",
        errors.join("\n  ")
    );
}

#[test]
fn zero_cell_report_stays_finite_and_comparable() {
    // Empty-sweep guard: a report over zero cells must carry zeroed rates
    // (never NaN or a div-by-zero panic) and still survive the JSON
    // round-trip and baseline comparison.
    let empty = BenchReport::new(
        "empty",
        &ExecConfig::serial(),
        0,
        Duration::ZERO,
        &Telemetry::default(),
        Vec::new(),
    );
    assert_eq!(empty.cells_per_sec, 0.0);
    assert!(empty.counters.is_zero());
    let parsed = BenchReport::from_json(&empty.to_json()).unwrap();
    assert!(compare(&parsed, &empty, &Tolerance::default()).is_empty());
}

#[test]
fn figure_cells_counts_the_grid() {
    let mut ctx =
        mbt_experiments::figures::RunContext::new(Scale::Quick).exec(ExecConfig::serial());
    let fig = mbt_experiments::figures::fig2a(&mut ctx);
    // Quick fig2a: 3 protocols × 3 points.
    assert_eq!(figure_cells(&fig, 1), 9);
    assert_eq!(figure_cells(&fig, 4), 36);
    assert_eq!(figure_cells(&fig, 0), 9, "replicates clamp to 1");
}
