//! Differential/integrity tests for fault recovery (ISSUE 2): injected piece
//! corruption is caught by checksum verification, the piece (and the file)
//! is re-fetched, final assembly matches the clean-run digest, and credit
//! balances never go negative under failed broadcasts.

use dtn_sim::FaultPlan;
use dtn_trace::{NodeId, SimDuration, SimTime};
use mbt_core::node::run_contact;
use mbt_core::piece::{split_into_pieces, Piece};
use mbt_core::{
    CooperationMode, FileAssembler, MbtConfig, MbtNode, Metadata, Popularity, ProtocolKind, Query,
    Uri,
};

fn uri(s: &str) -> Uri {
    Uri::new(s).unwrap()
}

fn content(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 37 + 11) % 251) as u8).collect()
}

/// Piece level: a corrupted piece is rejected by the checksum, the re-sent
/// clean piece completes the file, and the assembly is byte-identical to the
/// clean transfer — the "re-fetch heals corruption" contract the simulation
/// models by discarding corrupt receptions.
#[test]
fn corrupted_piece_is_caught_and_refetch_matches_clean_digest() {
    let u = uri("mbt://fox/film");
    let data = content(4_096);
    let meta = Metadata::builder("fox film", "FOX", u.clone())
        .content(&data, 512)
        .build();

    // Clean transfer: the reference digest.
    let mut clean = FileAssembler::new(meta.clone());
    for p in split_into_pieces(&u, &data, 512) {
        clean.add_piece(p).unwrap();
    }
    let clean_bytes = clean.assemble().unwrap();
    assert_eq!(clean_bytes, data);

    // Faulty transfer: every piece first arrives corrupted, is rejected by
    // verification, and is then re-fetched clean.
    let mut lossy = FileAssembler::new(meta.clone());
    for p in split_into_pieces(&u, &data, 512) {
        let mut mangled = p.data().to_vec();
        mangled[0] ^= 0x5A;
        let corrupted = Piece::new(p.id().clone(), mangled);
        assert!(!meta.verify_piece(&corrupted), "checksum must catch this");
        assert!(lossy.add_piece(corrupted).is_err(), "store must refuse it");
        lossy.add_piece(p).unwrap(); // the re-fetch
    }
    assert!(lossy.is_complete());
    assert_eq!(
        lossy.assemble().unwrap(),
        clean_bytes,
        "recovered assembly diverges from the clean digest"
    );
}

fn node(i: u32, config: &MbtConfig) -> MbtNode {
    MbtNode::new(NodeId::new(i), ProtocolKind::Mbt, config.clone())
}

/// Contact level: a corrupted file reception stores nothing, charges no
/// credit, and leaves the file wanted — a later clean contact delivers it.
#[test]
fn corrupt_reception_is_discarded_then_refetched_at_next_contact() {
    let plan = FaultPlan::none().corruption(0.6).seed(21);
    let sender = NodeId::new(0);
    let receiver = NodeId::new(1);
    let u = uri("mbt://fox/news");

    // The plan is a pure function of time, so we can pick one contact
    // instant where the reception corrupts and a later one where it doesn't.
    let t_corrupt = (0u64..100_000)
        .map(SimTime::from_secs)
        .find(|&t| plan.corrupts(t, sender, receiver, u.as_str()))
        .expect("corruption 0.6 hits somewhere");
    let t_clean = (t_corrupt.as_secs() + 1..100_000)
        .map(SimTime::from_secs)
        .find(|&t| !plan.corrupts(t, sender, receiver, u.as_str()))
        .expect("corruption 0.6 misses somewhere");

    let config = MbtConfig::new().faults(plan);
    let mut nodes = vec![node(0, &config), node(1, &config)];
    let meta = Metadata::builder("fox evening news", "FOX", u.clone()).build();
    nodes[0].seed_content(meta, Popularity::new(0.8), true);
    let _ = nodes[0].drain_events();
    nodes[1].add_query(Query::new("evening news").unwrap(), None);

    // First contact: metadata arrives (discovery phase is corruption-free),
    // the file reception corrupts and is discarded without credit.
    let report = run_contact(&mut nodes, &[0, 1], t_corrupt, SimDuration::from_secs(60));
    assert_eq!(report.corrupt_receptions, 1, "file reception must corrupt");
    assert!(nodes[1].has_metadata(&u), "metadata is unaffected");
    assert!(!nodes[1].has_file(&u), "corrupt file must not be stored");
    let credit_after_corrupt = nodes[1].credits().credit_of(sender);

    // Second contact: the still-wanted file is re-fetched cleanly and only
    // now earns the matched-file credit.
    let report = run_contact(&mut nodes, &[0, 1], t_clean, SimDuration::from_secs(60));
    assert_eq!(report.corrupt_receptions, 0);
    assert!(nodes[1].has_file(&u), "re-fetch must complete the file");
    let credit_after_clean = nodes[1].credits().credit_of(sender);
    assert!(
        credit_after_clean > credit_after_corrupt,
        "the successful transfer earns credit ({credit_after_corrupt} -> {credit_after_clean})"
    );
    assert!(credit_after_corrupt >= 0.0 && credit_after_clean >= 0.0);
}

/// Credit safety: under total frame loss nothing is delivered and nobody is
/// charged — balances stay exactly zero (and thus never negative), even in
/// tit-for-tat mode where credits drive scheduling.
#[test]
fn credits_never_go_negative_under_failed_broadcasts() {
    let config = MbtConfig::new()
        .cooperation(CooperationMode::TitForTat)
        .faults(FaultPlan::none().loss(1.0).seed(4));
    let mut nodes = vec![node(0, &config), node(1, &config)];
    let u = uri("mbt://fox/doc");
    let meta = Metadata::builder("fox documentary", "FOX", u.clone()).build();
    nodes[0].seed_content(meta, Popularity::new(0.9), true);
    let _ = nodes[0].drain_events();
    nodes[1].add_query(Query::new("documentary").unwrap(), None);

    let mut total_lost = 0;
    for i in 0..5u64 {
        let report = run_contact(
            &mut nodes,
            &[0, 1],
            SimTime::from_secs(i * 600),
            SimDuration::from_secs(60),
        );
        total_lost += report.frames_lost;
    }
    assert!(total_lost > 0, "every broadcast should have been lost");
    assert!(!nodes[1].has_metadata(&u));
    assert!(!nodes[1].has_file(&u));
    for (a, b) in [(0usize, 1usize), (1, 0)] {
        let other = nodes[b].id();
        let credit = nodes[a].credits().credit_of(other);
        assert!(
            credit == 0.0,
            "node {a} charged {credit} for broadcasts that never arrived"
        );
    }
}
