//! End-to-end integration: trace generation → simulation → delivery, plus a
//! manual hybrid-DTN scenario exercising the public API across crates.

use dtn_trace::generators::{DieselNetConfig, NusConfig};
use dtn_trace::{NodeId, SimDuration, SimTime, SpaceTimeGraph};
use mbt_core::node::run_pairwise_contact;
use mbt_core::{
    MbtConfig, MbtNode, Metadata, MetadataServer, Popularity, ProtocolSpec, Query, Uri,
};
use mbt_experiments::runner::{run_simulation, SimParams};

#[test]
fn nus_simulation_delivers_metadata_and_files() {
    let trace = NusConfig::new(40, 8).seed(7).generate();
    let params = SimParams::builder()
        .protocol(ProtocolSpec::MBT)
        .files_per_day(20)
        .days(8)
        .seed(7)
        .build();
    let r = run_simulation(&trace, &params, None);
    assert!(
        r.queries > 50,
        "expected a busy workload, got {} queries",
        r.queries
    );
    assert!(
        r.metadata_ratio > 0.05,
        "metadata ratio {}",
        r.metadata_ratio
    );
    assert!(r.file_ratio > 0.0, "file ratio {}", r.file_ratio);
    assert!(r.metadata_ratio >= r.file_ratio);
}

#[test]
fn dieselnet_simulation_delivers_over_pairwise_contacts() {
    let trace = DieselNetConfig::new(24, 8).seed(7).generate();
    let params = SimParams::builder()
        .protocol(ProtocolSpec::MBT)
        .files_per_day(20)
        .days(8)
        .seed(7)
        .frequent_window(SimDuration::from_days(3))
        .build();
    let r = run_simulation(&trace, &params, None);
    assert!(r.queries > 0);
    assert!(
        r.metadata_delivered > 0,
        "no metadata delivered on bus trace"
    );
}

#[test]
fn manual_three_hop_relay_through_the_dtn() {
    // Internet → node 0 (access) → node 1 (relay) → node 2 (requester).
    let mut server = MetadataServer::new(1);
    let uri = Uri::new("mbt://fox/breaking").unwrap();
    server.publish(
        Metadata::builder("fox breaking story", "FOX", uri.clone()).build(),
        Popularity::new(0.8),
    );

    let mk = |i: u32| MbtNode::new(NodeId::new(i), ProtocolSpec::MBT, MbtConfig::new());
    let mut nodes = vec![mk(0), mk(1), mk(2)];
    nodes[0].set_internet_access(true);
    nodes[0].add_query(Query::new("breaking story").unwrap(), None);
    nodes[2].add_query(Query::new("breaking story").unwrap(), None);

    nodes[0].internet_session(&mut server, SimTime::ZERO);
    assert!(nodes[0].has_file(&uri));

    // Node 0 meets node 1: metadata and file pushed (popularity phase).
    run_pairwise_contact(
        &mut nodes,
        0,
        1,
        SimTime::from_secs(100),
        SimDuration::from_secs(300),
    );
    assert!(
        nodes[1].has_file(&uri),
        "relay should carry the popular file"
    );

    // Node 1 later meets node 2, which actually wants the file.
    run_pairwise_contact(
        &mut nodes,
        1,
        2,
        SimTime::from_secs(5_000),
        SimDuration::from_secs(300),
    );
    assert!(nodes[2].has_metadata(&uri));
    assert!(
        nodes[2].has_file(&uri),
        "requester served through the relay"
    );
}

#[test]
fn space_time_reachability_sanity() {
    let trace = DieselNetConfig::new(12, 4).seed(3).generate();
    let graph = SpaceTimeGraph::new(&trace);
    let reach = graph.reachable(NodeId::new(0), SimTime::ZERO, None);
    assert!(reach.contains(&NodeId::new(0)));
    assert!(!reach.is_empty());
}

#[test]
fn simulation_scales_with_contact_budget() {
    let trace = NusConfig::new(30, 6).seed(9).generate();
    let tight = SimParams::builder()
        .config(
            MbtConfig::new()
                .metadata_per_contact(1)
                .files_per_contact(1),
        )
        .days(6)
        .seed(9)
        .build();
    let roomy = SimParams::builder()
        .config(
            MbtConfig::new()
                .metadata_per_contact(40)
                .files_per_contact(10),
        )
        .days(6)
        .seed(9)
        .build();
    let r_tight = run_simulation(&trace, &tight, None);
    let r_roomy = run_simulation(&trace, &roomy, None);
    assert!(
        r_roomy.file_ratio >= r_tight.file_ratio,
        "more budget cannot hurt: {} vs {}",
        r_roomy.file_ratio,
        r_tight.file_ratio
    );
    assert!(r_roomy.metadata_ratio >= r_tight.metadata_ratio);
}
