//! The evaluation's headline ordering: MBT ≥ MBT-Q ≥ MBT-QM in delivery
//! ratio (paper §VI-B), with MBT-QM flat in file delivery as Internet access
//! rises (Fig 3a) because it has no file discovery process.

use dtn_trace::generators::NusConfig;
use dtn_trace::ContactTrace;
use mbt_core::ProtocolKind;
use mbt_experiments::runner::{run_simulation, SimParams, SimResult};

fn trace() -> ContactTrace {
    NusConfig::new(40, 8).seed(21).generate()
}

fn run(protocol: ProtocolKind, internet_fraction: f64) -> SimResult {
    run_simulation(
        &trace(),
        &SimParams::builder()
            .protocol(protocol)
            .internet_fraction(internet_fraction)
            .files_per_day(20)
            .days(8)
            .seed(21)
            .build(),
        None,
    )
}

#[test]
fn mbt_dominates_on_metadata_delivery() {
    let mbt = run(ProtocolKind::Mbt, 0.3);
    let q = run(ProtocolKind::MbtQ, 0.3);
    let qm = run(ProtocolKind::MbtQm, 0.3);
    assert!(
        mbt.metadata_ratio >= q.metadata_ratio,
        "MBT {} < MBT-Q {}",
        mbt.metadata_ratio,
        q.metadata_ratio
    );
    assert!(
        q.metadata_ratio >= qm.metadata_ratio,
        "MBT-Q {} < MBT-QM {}",
        q.metadata_ratio,
        qm.metadata_ratio
    );
}

#[test]
fn mbt_dominates_on_file_delivery() {
    let mbt = run(ProtocolKind::Mbt, 0.3);
    let qm = run(ProtocolKind::MbtQm, 0.3);
    assert!(
        mbt.file_ratio >= qm.file_ratio,
        "MBT {} < MBT-QM {}",
        mbt.file_ratio,
        qm.file_ratio
    );
}

#[test]
fn discovery_driven_protocols_benefit_from_internet_access() {
    // Fig 3(a): MBT's file ratio rises quickly with Internet access; MBT-QM
    // shows (much) less improvement because it cannot discover.
    let mbt_lo = run(ProtocolKind::Mbt, 0.1);
    let mbt_hi = run(ProtocolKind::Mbt, 0.8);
    let qm_lo = run(ProtocolKind::MbtQm, 0.1);
    let qm_hi = run(ProtocolKind::MbtQm, 0.8);
    let mbt_gain = mbt_hi.file_ratio - mbt_lo.file_ratio;
    let qm_gain = qm_hi.file_ratio - qm_lo.file_ratio;
    assert!(
        mbt_gain >= qm_gain,
        "MBT gain {mbt_gain} should exceed MBT-QM gain {qm_gain}"
    );
}

#[test]
fn variants_differ_in_mechanism_counters() {
    let mbt = run(ProtocolKind::Mbt, 0.3);
    let q = run(ProtocolKind::MbtQ, 0.3);
    let qm = run(ProtocolKind::MbtQm, 0.3);
    assert!(mbt.queries_distributed > 0, "MBT distributes queries");
    assert_eq!(q.queries_distributed, 0);
    assert_eq!(qm.queries_distributed, 0);
    assert!(mbt.metadata_broadcasts > 0);
    assert!(q.metadata_broadcasts > 0);
    assert_eq!(
        qm.metadata_broadcasts, 0,
        "MBT-QM has no standalone metadata"
    );
}
