//! Reproducibility: identical seeds produce identical traces and identical
//! simulation results; different seeds differ.

use dtn_trace::generators::{DieselNetConfig, NusConfig, RandomWaypointConfig};
use mbt_core::ProtocolSpec;
use mbt_experiments::runner::{run_simulation, SimParams};

#[test]
fn traces_are_seed_deterministic() {
    assert_eq!(
        DieselNetConfig::new(20, 5).seed(1).generate(),
        DieselNetConfig::new(20, 5).seed(1).generate()
    );
    assert_eq!(
        NusConfig::new(40, 5).seed(1).generate(),
        NusConfig::new(40, 5).seed(1).generate()
    );
    assert_eq!(
        RandomWaypointConfig::new(8, 600).seed(1).generate(),
        RandomWaypointConfig::new(8, 600).seed(1).generate()
    );
}

#[test]
fn full_simulation_is_deterministic_per_protocol() {
    let trace = NusConfig::new(30, 6).seed(4).generate();
    for protocol in ProtocolSpec::builtin() {
        let params = SimParams::builder()
            .protocol(protocol)
            .days(6)
            .seed(4)
            .files_per_day(15)
            .build();
        let a = run_simulation(&trace, &params, None);
        let b = run_simulation(&trace, &params, None);
        assert_eq!(a, b, "{protocol} run not reproducible");
    }
}

#[test]
fn different_seeds_change_the_outcome() {
    let trace = NusConfig::new(30, 6).seed(4).generate();
    let base = SimParams::builder().days(6).files_per_day(15).build();
    let a = run_simulation(
        &trace,
        &SimParams {
            seed: 1,
            ..base.clone()
        },
        None,
    );
    let b = run_simulation(&trace, &SimParams { seed: 2, ..base }, None);
    assert_ne!(a, b, "different seeds should perturb the workload");
}

#[test]
fn dieselnet_simulation_deterministic_too() {
    let trace = DieselNetConfig::new(16, 6).seed(8).generate();
    let params = SimParams::builder()
        .days(6)
        .seed(8)
        .files_per_day(10)
        .frequent_window(dtn_trace::SimDuration::from_days(3))
        .build();
    assert_eq!(
        run_simulation(&trace, &params, None),
        run_simulation(&trace, &params, None)
    );
}
