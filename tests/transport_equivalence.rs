//! Differential suite: `BusTransport` is byte-identical to `SimTransport`.
//!
//! The transport seam's contract is that serializing every contact-phase
//! message into its wire frame and decoding it on the far side changes
//! *nothing* the simulator can see: same `SimResult`s, same rendered figure
//! CSVs, same telemetry counters, same per-contact reports — across thread
//! counts and under an active fault plan. These tests replay quick-scale
//! traces through both backends and compare bytes, and pin the exact frame
//! emission order of a contact so reordering regressions surface here.

use std::sync::Arc;

use dtn_sim::telemetry::PhaseTimes;
use dtn_sim::{FaultPlan, Telemetry};
use dtn_trace::generators::DieselNetConfig;
use dtn_trace::{NodeId, SimDuration, SimTime, TraceSource};
use mbt_core::node::{run_contact, run_contact_via, ContactReport};
use mbt_core::transport::{
    BusTransport, Carried, SimTransport, Transport, TransportKind, WireMessage,
};
use mbt_core::{
    MbtConfig, MbtNode, Metadata, MetadataServer, Popularity, ProtocolKind, Query, Uri,
};
use mbt_experiments::report::figure_csv;
use mbt_experiments::{run_simulation, ExecConfig, ParallelRunner, SimParams, SimResult};

fn uri(s: &str) -> Uri {
    Uri::new(s).unwrap()
}

/// A fig2a-style quick sweep (internet fraction on the x axis) over a shared
/// DieselNet trace, rendered to CSV bytes.
fn sweep_csv(kind: TransportKind, jobs: usize) -> String {
    let runner = ParallelRunner::new(ExecConfig::default().jobs(jobs).replicates(2));
    let source: Arc<dyn TraceSource> = Arc::new(DieselNetConfig::new(16, 6).seed(42).generate());
    let fig = runner.sweep_shared_source(
        "transport_equivalence",
        "fig2a-style sweep (transport differential)",
        "fraction of nodes with Internet access",
        &[0.1, 0.5, 0.9],
        source,
        |x| SimParams {
            internet_fraction: x,
            days: 6,
            seed: 42,
            frequent_window: SimDuration::from_days(3),
            transport: kind,
            ..SimParams::default()
        },
        None,
    );
    figure_csv(&fig)
}

#[test]
fn quick_sweep_is_byte_identical_across_backends_and_job_counts() {
    let baseline = sweep_csv(TransportKind::Sim, 1);
    for (kind, jobs) in [
        (TransportKind::Sim, 8),
        (TransportKind::Bus, 1),
        (TransportKind::Bus, 8),
    ] {
        assert_eq!(
            baseline,
            sweep_csv(kind, jobs),
            "{kind} transport with --jobs {jobs} diverged from sim --jobs 1"
        );
    }
}

/// One observed run under an active fault plan (loss + truncation + churn +
/// corruption all rolling).
fn faulty_run(kind: TransportKind) -> (SimResult, Telemetry) {
    let trace = DieselNetConfig::new(14, 5).seed(9).generate();
    let params = SimParams {
        days: 5,
        seed: 9,
        faults: FaultPlan::none()
            .loss(0.2)
            .truncate(0.2)
            .churn(0.1)
            .corruption(0.3)
            .seed(7),
        transport: kind,
        ..SimParams::default()
    };
    let mut telemetry = Telemetry::default();
    let result = run_simulation(&trace, &params, Some(&mut telemetry));
    (result, telemetry)
}

#[test]
fn active_fault_plan_is_byte_identical_across_backends() {
    let (sim_result, sim_tel) = faulty_run(TransportKind::Sim);
    let (bus_result, bus_tel) = faulty_run(TransportKind::Bus);
    assert_eq!(sim_result, bus_result, "fault-plan results diverged");
    assert_eq!(
        sim_tel.counters, bus_tel.counters,
        "fault-plan telemetry counters diverged"
    );
    assert!(
        sim_tel.counters.frames_lost > 0,
        "the plan never dropped a frame — the comparison proved nothing"
    );
    assert!(sim_tel.counters.corrupt_receptions > 0);
}

/// A 4-node clique where node 0 pre-fetched a queried file from the server:
/// the contact exercises hellos, query shares, a metadata broadcast, and a
/// file broadcast.
fn seeded_clique() -> Vec<MbtNode> {
    let mut server = MetadataServer::new(4);
    server.publish(
        Metadata::builder("fox evening news", "FOX", uri("mbt://news")).build(),
        Popularity::new(0.6),
    );
    server.publish(
        Metadata::builder("abc morning show", "ABC", uri("mbt://show")).build(),
        Popularity::new(0.4),
    );
    let mut nodes: Vec<MbtNode> = (0..4)
        .map(|i| MbtNode::new(NodeId::new(i), ProtocolKind::Mbt, MbtConfig::new()))
        .collect();
    nodes[0].set_internet_access(true);
    nodes[0].add_query(Query::new("evening news").unwrap(), None);
    nodes[1].add_query(Query::new("evening news").unwrap(), None);
    nodes[2].add_query(Query::new("morning show").unwrap(), None);
    nodes[2].set_frequent_contacts([NodeId::new(1), NodeId::new(3)]);
    nodes[3].set_frequent_contacts([NodeId::new(2)]);
    nodes[0].internet_session(&mut server, SimTime::ZERO);
    for n in &mut nodes {
        n.drain_events();
    }
    nodes
}

fn run_clique_via(transport: &mut dyn Transport, nodes: &mut [MbtNode]) -> ContactReport {
    let mut phases = PhaseTimes::default();
    run_contact_via(
        transport,
        nodes,
        &[0, 1, 2, 3],
        SimTime::from_secs(3_600),
        SimDuration::from_secs(900),
        &mut phases,
    )
}

#[test]
fn direct_contact_matches_across_backends_and_bus_carries_frames() {
    let mut via_sim = seeded_clique();
    let mut via_bus = seeded_clique();
    let mut plain = seeded_clique();

    let sim_report = run_clique_via(&mut SimTransport::new(), &mut via_sim);
    let mut bus = BusTransport::new();
    let bus_report = run_clique_via(&mut bus, &mut via_bus);
    let plain_report = run_contact(
        &mut plain,
        &[0, 1, 2, 3],
        SimTime::from_secs(3_600),
        SimDuration::from_secs(900),
    );

    assert_eq!(sim_report, plain_report, "seam changed run_contact");
    assert_eq!(sim_report, bus_report, "bus backend changed the report");
    assert!(
        bus.frames_carried() > 0,
        "the bus contact never serialized a frame"
    );
    assert_eq!(bus.frames_dropped(), 0);
    assert!(bus.bytes_on_wire() > 0);

    // Node state (not just counters) must agree: same events in the same
    // order, same stores.
    for ((s, b), p) in via_sim.iter_mut().zip(&mut via_bus).zip(&mut plain) {
        let se = s.drain_events();
        assert_eq!(se, b.drain_events(), "bus produced different node events");
        assert_eq!(se, p.drain_events(), "seam produced different node events");
        assert_eq!(s.metadata_count(), b.metadata_count());
        assert_eq!(s.file_count(), b.file_count());
        assert_eq!(s.query_count(), b.query_count());
    }
    assert!(
        sim_report.metadata_broadcasts > 0 && sim_report.file_broadcasts > 0,
        "the scenario exercised neither broadcast phase"
    );
    assert!(sim_report.queries_distributed > 0);
}

/// Records every carried frame as `sender->receiver kind(item)` while
/// behaving exactly like [`SimTransport`].
#[derive(Default)]
struct RecordingTransport {
    inner: SimTransport,
    log: Vec<String>,
}

impl Transport for RecordingTransport {
    fn join(&mut self, now: SimTime, members: &[NodeId]) {
        self.inner.join(now, members);
    }

    fn carry(
        &mut self,
        now: SimTime,
        sender: NodeId,
        receiver: NodeId,
        message: WireMessage,
    ) -> Carried {
        let item = match &message {
            WireMessage::Hello(h) => format!("hello({})", h.sender.index()),
            WireMessage::QueryShare { query, .. } => format!("query-share({})", query.text()),
            WireMessage::Metadata { metadata, .. } => {
                format!("metadata({})", metadata.uri().as_str())
            }
            WireMessage::FileBroadcast { uri, .. } => {
                format!("file-broadcast({})", uri.as_str())
            }
            other => other.kind().name().to_string(),
        };
        self.log
            .push(format!("{}->{} {item}", sender.index(), receiver.index()));
        self.inner.carry(now, sender, receiver, message)
    }

    fn leave(&mut self, now: SimTime, members: &[NodeId]) -> usize {
        self.inner.leave(now, members)
    }
}

#[test]
fn pairwise_frame_emission_order_is_pinned() {
    // Node 0 holds the queried file; node 1 wants it. The contact must emit
    // exactly: node 1's hello to the coordinator (node 0, lowest id), the
    // metadata broadcast, then the file broadcast — in that order, because
    // discovery runs before download (§V).
    let mut server = MetadataServer::new(4);
    server.publish(
        Metadata::builder("fox evening news", "FOX", uri("mbt://news")).build(),
        Popularity::new(0.6),
    );
    let mut nodes: Vec<MbtNode> = (0..2)
        .map(|i| MbtNode::new(NodeId::new(i), ProtocolKind::Mbt, MbtConfig::new()))
        .collect();
    nodes[0].set_internet_access(true);
    nodes[0].add_query(Query::new("evening news").unwrap(), None);
    nodes[1].add_query(Query::new("evening news").unwrap(), None);
    nodes[0].internet_session(&mut server, SimTime::ZERO);

    let mut recorder = RecordingTransport::default();
    let mut phases = PhaseTimes::default();
    run_contact_via(
        &mut recorder,
        &mut nodes,
        &[0, 1],
        SimTime::from_secs(60),
        SimDuration::from_secs(600),
        &mut phases,
    );
    assert_eq!(
        recorder.log,
        vec![
            "1->0 hello(1)",
            "0->1 metadata(mbt://news)",
            "0->1 file-broadcast(mbt://news)",
        ],
        "frame emission order changed"
    );
}

#[test]
fn clique_frame_emission_order_is_repeatable() {
    // The richer 4-node clique: the exact sequence is a pure function of
    // member state (the contact path iterates only ordered collections), so
    // two identical runs must log identical sequences.
    let mut first_nodes = seeded_clique();
    let mut second_nodes = seeded_clique();
    let mut first = RecordingTransport::default();
    let mut second = RecordingTransport::default();
    run_clique_via(&mut first, &mut first_nodes);
    run_clique_via(&mut second, &mut second_nodes);
    assert!(!first.log.is_empty());
    assert_eq!(first.log, second.log, "frame order is not deterministic");
    // Hellos from every non-coordinator member come first, addressed to the
    // coordinator (lowest id).
    assert_eq!(
        &first.log[..3],
        &["1->0 hello(1)", "2->0 hello(2)", "3->0 hello(3)"]
    );
}
