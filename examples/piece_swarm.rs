//! Piece-level swarm download within one long clique contact.
//!
//! Six devices sit in one room; each starts with a random subset of a
//! 12-piece file (pieces picked up at different times and places, §III-B).
//! Round by round, the broadcast scheduler picks one piece to transmit —
//! rarest first — and everyone missing it receives it simultaneously. The
//! example counts broadcast rounds against the pair-wise alternative and
//! verifies the reassembled file byte-for-byte.
//!
//! Run with: `cargo run -p mbt-experiments --example piece_swarm`

use std::collections::BTreeSet;

use dtn_trace::NodeId;
use mbt_core::download::{strategy, Offer};
use mbt_core::piece::{split_into_pieces, PieceId};
use mbt_core::{FileAssembler, Metadata, Popularity, Uri};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // The file: 12 pieces of 128 bytes.
    let uri = Uri::new("mbt://fox/concert-recording")?;
    let data: Vec<u8> = (0..12 * 128).map(|_| rng.gen()).collect();
    let metadata = Metadata::builder("FOX concert recording", "FOX", uri.clone())
        .content(&data, 128)
        .build();
    let pieces = split_into_pieces(&uri, &data, 128);
    println!("file: {} bytes in {} pieces", data.len(), pieces.len());

    // Six devices, each holding a random half of the pieces; together they
    // cover the whole file.
    let members: Vec<NodeId> = (0..6).map(NodeId::new).collect();
    let mut holdings: Vec<BTreeSet<u32>> = (0..6)
        .map(|_| {
            let mut idx: Vec<u32> = (0..pieces.len() as u32).collect();
            idx.shuffle(&mut rng);
            idx.into_iter().take(pieces.len() / 2).collect()
        })
        .collect();
    for i in 0..pieces.len() as u32 {
        // Guarantee coverage: assign any globally-missing piece to node 0.
        if !holdings.iter().any(|h| h.contains(&i)) {
            holdings[0].insert(i);
        }
    }
    for (i, h) in holdings.iter().enumerate() {
        println!(
            "  node {i} starts with {} / {} pieces",
            h.len(),
            pieces.len()
        );
    }

    // Swarm rounds: one broadcast per round, rarest piece first.
    let mut rounds = 0usize;
    loop {
        let offers: Vec<Offer<PieceId>> = (0..pieces.len() as u32)
            .map(|idx| {
                let id = PieceId::new(uri.clone(), idx);
                let holders: Vec<NodeId> = members
                    .iter()
                    .copied()
                    .filter(|m| holdings[m.index()].contains(&idx))
                    .collect();
                let requesters: Vec<NodeId> = members
                    .iter()
                    .copied()
                    .filter(|m| !holdings[m.index()].contains(&idx))
                    .collect();
                Offer::new(id, Popularity::new(0.5), requesters, holders)
            })
            .filter(|o| !o.requesters.is_empty())
            .collect();
        if offers.is_empty() {
            break;
        }
        let schedule = strategy::rarest_first_schedule(offers, 1);
        let broadcast = schedule.into_iter().next().expect("offers were non-empty");
        let idx = broadcast.item.index();
        for m in &members {
            holdings[m.index()].insert(idx);
        }
        rounds += 1;
    }
    println!("\nswarm complete after {rounds} broadcast rounds");
    let pairwise_transfers: usize = 6 * pieces.len()
        - holdings.iter().map(BTreeSet::len).sum::<usize>()
        + rounds * (members.len() - 1); // receivers served per broadcast
    println!(
        "(a pair-wise scheme would have needed ≥ {} individual transfers)",
        pairwise_transfers
    );

    // Everyone reassembles and verifies against the metadata checksums.
    for m in &members {
        let mut asm = FileAssembler::new(metadata.clone());
        for idx in &holdings[m.index()] {
            asm.add_piece(pieces[*idx as usize].clone())?;
        }
        assert!(asm.is_complete());
        assert_eq!(asm.assemble().unwrap(), data);
    }
    println!("all 6 nodes reassembled and verified the file (SHA-1 per piece).");
    Ok(())
}
