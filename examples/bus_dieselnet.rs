//! Vehicular file sharing: the UMassDieselNet-style scenario.
//!
//! Transit buses on scheduled routes meet pair-wise for tens of seconds.
//! Riders' devices (modeled as the buses themselves, as in the original
//! trace) spread metadata during those short contacts and bulk file pieces
//! when routes overlap longer. This example generates a bus trace, inspects
//! its contact statistics, saves/reloads it through the text format, and
//! runs the full protocol comparison.
//!
//! Run with: `cargo run -p mbt-experiments --example bus_dieselnet --release`

use dtn_trace::generators::DieselNetConfig;
use dtn_trace::{read_trace, write_trace, SimDuration, TraceStats};
use mbt_core::ProtocolSpec;
use mbt_experiments::runner::{run_simulation, SimParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let buses = 30;
    let days = 10;
    println!("generating a bus contact trace: {buses} buses, {days} days");
    let trace = DieselNetConfig::new(buses, days).seed(2006).generate();

    let stats = TraceStats::compute(&trace);
    println!(
        "  {} pair-wise contacts, mean duration {:.0}s, span {:.1} days",
        trace.len(),
        stats.mean_contact_duration_secs().unwrap_or(0.0),
        trace.span().as_days_f64()
    );

    // Round-trip through the on-disk format, as a deployment would.
    let mut buf = Vec::new();
    write_trace(&mut buf, &trace)?;
    let reloaded = read_trace(buf.as_slice())?;
    assert_eq!(reloaded, trace);
    println!(
        "  trace serialized to {} bytes of text and reloaded\n",
        buf.len()
    );

    println!("running all three protocol variants (30% of buses pass WiFi depots):");
    for protocol in ProtocolSpec::TRIAD {
        let params = SimParams::builder()
            .protocol(protocol)
            .internet_fraction(0.3)
            .files_per_day(20)
            .ttl_days(3)
            .days(days)
            .seed(2006)
            .frequent_window(SimDuration::from_days(3))
            .build();
        let r = run_simulation(&trace, &params, None);
        println!(
            "  {:>7}: metadata ratio {:.3}, file ratio {:.3}  ({} contacts used)",
            protocol.name(),
            r.metadata_ratio,
            r.file_ratio,
            r.contacts
        );
    }

    println!("\nshort contacts favor discovery-first ordering (§V):");
    for first in [true, false] {
        let params = SimParams::builder()
            .config(mbt_core::MbtConfig::new().discovery_first(first))
            .internet_fraction(0.3)
            .files_per_day(20)
            .days(days)
            .seed(2006)
            .frequent_window(SimDuration::from_days(3))
            .build();
        let r = run_simulation(&trace, &params, None);
        println!(
            "  discovery_first={first}: metadata ratio {:.3}, file ratio {:.3}",
            r.metadata_ratio, r.file_ratio
        );
    }
    Ok(())
}
