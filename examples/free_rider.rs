//! Tit-for-tat incentives vs a free-rider.
//!
//! Three devices meet repeatedly. Alice and Bob contribute — they carry and
//! forward metadata the others asked for. Carol free-rides: she requests but
//! never carries anything useful. Under the tit-for-tat scheduler (paper
//! §IV-B), Alice and Bob accumulate credit with each other and get their
//! requests served first when budgets are tight; Carol is not choked (the
//! broadcast reaches her anyway) but her requests rank last.
//!
//! Run with: `cargo run -p mbt-experiments --example free_rider`

use dtn_trace::NodeId;
use mbt_core::discovery::{tft, MetadataOffer};
use mbt_core::{CreditLedger, Metadata, Popularity, Query, Uri};

fn meta(name: &str, uri: &str) -> Metadata {
    Metadata::builder(name, "FOX", Uri::new(uri).unwrap()).build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let alice = NodeId::new(0);
    let carol = NodeId::new(2);

    // Bob's view of the world after a week of contacts: Alice repeatedly
    // delivered metadata he had queried for; Carol never sent anything.
    let mut bob_ledger = CreditLedger::new();
    for _ in 0..3 {
        bob_ledger.reward_matched(alice);
    }
    bob_ledger.reward_unmatched(alice, Popularity::new(0.4));
    println!("Bob's ledger after a week:");
    for (peer, credit) in bob_ledger.ranked_peers() {
        println!("  {peer}: {credit:.1} credit");
    }
    println!(
        "  {carol}: {:.1} credit (never contributed)\n",
        bob_ledger.credit_of(carol)
    );

    // Bob now holds two metadata: one Alice asked for, one Carol asked for.
    // His contact is short — the budget allows only ONE metadata.
    let for_alice = meta("jazz festival recap", "mbt://jazz");
    let for_carol = meta("cooking show finale", "mbt://cooking");
    let queries = vec![
        (alice, Query::new("jazz festival")?),
        (carol, Query::new("cooking show")?),
    ];
    let offers = vec![
        MetadataOffer::build(&for_carol, Popularity::MAX, &queries),
        MetadataOffer::build(&for_alice, Popularity::MIN, &queries),
    ];

    let order = tft::send_order(offers.clone(), &bob_ledger, 1);
    println!("budget = 1 metadata; Bob broadcasts: {}", order[0].name());
    assert_eq!(order[0].uri().as_str(), "mbt://jazz");
    println!("  -> the contributor's request wins, despite lower popularity\n");

    // With a budget of 2, Carol still gets served — free-riders are not
    // completely inhibited, broadcast reaches them; they just wait longer.
    let order = tft::send_order(offers, &bob_ledger, 2);
    println!("budget = 2 metadata; broadcast order:");
    for (i, m) in order.iter().enumerate() {
        println!("  {}. {}", i + 1, m.name());
    }
    assert_eq!(order[1].uri().as_str(), "mbt://cooking");
    println!("  -> Carol is served second: deprioritized, not excluded.");
    Ok(())
}
