//! Campus podcast distribution: the NUS-style clique scenario.
//!
//! A campus of students shares daily podcast episodes. Class sessions put
//! students in classroom cliques; the broadcast-based download lets one
//! transmission serve a whole room. This example runs the full simulation
//! pipeline over a generated timetable trace and reports delivery ratios per
//! protocol variant, plus the effect of skipping lectures.
//!
//! Run with: `cargo run -p mbt-experiments --example campus_podcast --release`

use dtn_trace::generators::NusConfig;
use dtn_trace::{SimDuration, TraceStats};
use mbt_core::ProtocolSpec;
use mbt_experiments::runner::{run_simulation, SimParams};

fn main() {
    let students = 60;
    let days = 10;
    println!("generating a campus timetable trace: {students} students, {days} days");
    let trace = NusConfig::new(students, days)
        .seed(2011)
        .attendance_rate(0.85)
        .generate();
    let stats = TraceStats::compute(&trace);
    println!(
        "  {} classroom sessions, mean room size {:.1} students\n",
        trace.len(),
        stats.mean_contact_size(&trace).unwrap_or(0.0)
    );

    println!("running every registered protocol variant (30% of students have campus WiFi):");
    for protocol in ProtocolSpec::builtin() {
        let params = SimParams::builder()
            .protocol(protocol)
            .internet_fraction(0.3)
            .files_per_day(20)
            .ttl_days(3)
            .days(days)
            .seed(2011)
            .frequent_window(SimDuration::from_days(1))
            .build();
        let r = run_simulation(&trace, &params, None);
        println!(
            "  {:>10}: metadata ratio {:.3}, file ratio {:.3}  ({} queries, {} metadata bcasts, {} file bcasts)",
            protocol.name(),
            r.metadata_ratio,
            r.file_ratio,
            r.queries,
            r.metadata_broadcasts,
            r.file_broadcasts
        );
    }

    println!("\neffect of attendance (full MBT):");
    for attendance in [0.5, 0.75, 1.0] {
        let trace = NusConfig::new(students, days)
            .seed(2011)
            .attendance_rate(attendance)
            .generate();
        let params = SimParams::builder()
            .internet_fraction(0.3)
            .files_per_day(20)
            .days(days)
            .seed(2011)
            .frequent_window(SimDuration::from_days(1))
            .build();
        let r = run_simulation(&trace, &params, None);
        println!(
            "  attendance {attendance:.2}: metadata ratio {:.3}, file ratio {:.3}",
            r.metadata_ratio, r.file_ratio
        );
    }
}
