//! Quickstart: share one file across a five-node hybrid DTN.
//!
//! One node has Internet access and downloads a published file; the other
//! four obtain it purely through DTN contacts — including a classroom-style
//! clique where a single broadcast serves three receivers at once.
//!
//! Run with: `cargo run -p mbt-experiments --example quickstart`

use dtn_trace::{NodeId, SimDuration, SimTime};
use mbt_core::node::{run_contact, run_pairwise_contact};
use mbt_core::{
    MbtConfig, MbtNode, Metadata, MetadataServer, Popularity, ProtocolSpec, Query, Uri,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The Internet side: a metadata server with one published file.
    let mut server = MetadataServer::new(1);
    let uri = Uri::new("mbt://fox/evening-news/ep-1")?;
    let metadata = Metadata::builder("FOX Evening News episode 1", "FOX", uri.clone())
        .description("nightly news broadcast, 30 minutes")
        .sized(12 * 256 * 1024, 256 * 1024, Vec::new())
        .build();
    server.publish(metadata, Popularity::new(0.6));
    println!("published: FOX Evening News episode 1 ({uri})");

    // 2. Five mobile nodes running full MBT. Only node 0 reaches the Internet.
    let mut nodes: Vec<MbtNode> = (0..5)
        .map(|i| MbtNode::new(NodeId::new(i), ProtocolSpec::MBT, MbtConfig::new()))
        .collect();
    nodes[0].set_internet_access(true);

    // Everyone is interested in the evening news.
    for node in nodes.iter_mut() {
        node.add_query(Query::new("evening news")?, None);
    }

    // 3. Node 0 syncs at a WiFi access point: metadata + file downloaded.
    nodes[0].internet_session(&mut server, SimTime::ZERO);
    println!(
        "node 0 synced with the Internet: has file = {}",
        nodes[0].has_file(&uri)
    );

    // 4. Node 0 passes node 1 on the street (a short pair-wise contact).
    run_pairwise_contact(
        &mut nodes,
        0,
        1,
        SimTime::from_secs(600),
        SimDuration::from_secs(45),
    );
    println!(
        "after street contact: node 1 has file = {}",
        nodes[1].has_file(&uri)
    );

    // 5. Nodes 1, 2, 3, 4 sit in one classroom: a clique contact. One
    //    broadcast from node 1 serves all three receivers simultaneously.
    let report = run_contact(
        &mut nodes,
        &[1, 2, 3, 4],
        SimTime::from_secs(3_600),
        SimDuration::from_hours(2),
    );
    println!(
        "classroom clique: {} metadata broadcast(s), {} file broadcast(s)",
        report.metadata_broadcasts, report.file_broadcasts
    );
    for (i, node) in nodes.iter().enumerate().skip(2) {
        println!("  node {i} has file = {}", node.has_file(&uri));
    }

    assert!(nodes.iter().all(|n| n.has_file(&uri)));
    println!("\nall five nodes obtained the file; only one Internet download happened.");
    Ok(())
}
