//! Property-based tests for the contact-trace substrate.

use proptest::prelude::*;

use dtn_trace::{read_trace, write_trace, Contact, ContactTrace, NodeId, SimDuration, SimTime};

/// Strategy: a valid contact with 2..=6 distinct participants.
fn arb_contact() -> impl Strategy<Value = Contact> {
    (
        proptest::collection::btree_set(0u32..50, 2..6),
        0u64..1_000_000,
        1u64..10_000,
    )
        .prop_map(|(ids, start, len)| {
            let nodes: Vec<NodeId> = ids.into_iter().map(NodeId::new).collect();
            Contact::clique(
                nodes,
                SimTime::from_secs(start),
                SimTime::from_secs(start + len),
            )
            .expect("constructed contacts are valid")
        })
}

fn arb_trace() -> impl Strategy<Value = ContactTrace> {
    proptest::collection::vec(arb_contact(), 0..40).prop_map(|v| v.into_iter().collect())
}

proptest! {
    #[test]
    fn traces_are_sorted_by_start(trace in arb_trace()) {
        let starts: Vec<u64> = trace.iter().map(|c| c.start().as_secs()).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        prop_assert_eq!(starts, sorted);
    }

    #[test]
    fn collect_is_order_insensitive(mut contacts in proptest::collection::vec(arb_contact(), 0..20)) {
        let a: ContactTrace = contacts.clone().into_iter().collect();
        contacts.reverse();
        let b: ContactTrace = contacts.into_iter().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn parser_round_trips(trace in arb_trace()) {
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let parsed = read_trace(buf.as_slice()).unwrap();
        prop_assert_eq!(parsed, trace);
    }

    #[test]
    fn window_is_subset_and_sorted(trace in arb_trace(), from in 0u64..500_000, len in 0u64..500_000) {
        let w = trace.window(SimTime::from_secs(from), SimTime::from_secs(from + len));
        prop_assert!(w.len() <= trace.len());
        for c in w.iter() {
            prop_assert!(c.start().as_secs() >= from);
            prop_assert!(c.start().as_secs() < from + len);
            prop_assert!(trace.contacts().contains(c));
        }
    }

    #[test]
    fn involving_only_contains_node(trace in arb_trace(), id in 0u32..50) {
        let node = NodeId::new(id);
        let sub = trace.involving(node);
        for c in sub.iter() {
            prop_assert!(c.involves(node));
        }
        // Complement check: contacts not in `sub` don't involve the node.
        let sub_count = trace.iter().filter(|c| c.involves(node)).count();
        prop_assert_eq!(sub.len(), sub_count);
    }

    #[test]
    fn merge_preserves_total_count(a in arb_trace(), b in arb_trace()) {
        let merged = a.merge(&b);
        prop_assert_eq!(merged.len(), a.len() + b.len());
    }

    #[test]
    fn contact_pairs_count_is_choose_two(contact in arb_contact()) {
        let n = contact.size();
        prop_assert_eq!(contact.pairs().len(), n * (n - 1) / 2);
        // Every pair is ordered and involves real participants.
        for (x, y) in contact.pairs() {
            prop_assert!(x < y);
            prop_assert!(contact.involves(x));
            prop_assert!(contact.involves(y));
        }
    }

    #[test]
    fn peers_of_partition(contact in arb_contact()) {
        for &p in contact.participants() {
            let peers = contact.peers_of(p);
            prop_assert_eq!(peers.len(), contact.size() - 1);
            prop_assert!(!peers.contains(&p));
        }
    }

    #[test]
    fn span_bounds_every_contact(trace in arb_trace()) {
        if let (Some(start), Some(end)) = (trace.start_time(), trace.end_time()) {
            for c in trace.iter() {
                prop_assert!(c.start() >= start);
                prop_assert!(c.end() <= end);
            }
            prop_assert_eq!(end.duration_since(start), trace.span());
        } else {
            prop_assert!(trace.is_empty());
        }
    }

    #[test]
    fn time_arithmetic_round_trips(base in 0u64..1_000_000_000, delta in 0u64..1_000_000) {
        let t = SimTime::from_secs(base);
        let d = SimDuration::from_secs(delta);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d).duration_since(t), d);
        prop_assert_eq!(t.saturating_sub(d).saturating_add(d).as_secs().max(base), (t.saturating_sub(d) + d).as_secs().max(base));
    }

    #[test]
    fn day_and_second_of_day_consistent(secs in 0u64..10_000_000_000) {
        let t = SimTime::from_secs(secs);
        prop_assert_eq!(t.day() * dtn_trace::SECONDS_PER_DAY + t.second_of_day(), secs);
        prop_assert!(t.second_of_day() < dtn_trace::SECONDS_PER_DAY);
    }
}

proptest! {
    #[test]
    fn aggregate_graph_consistent_with_stats(trace in arb_trace()) {
        use dtn_trace::{AggregateGraph, TraceStats};
        let graph = AggregateGraph::from_trace(&trace);
        let stats = TraceStats::compute(&trace);
        prop_assert_eq!(graph.nodes(), trace.nodes());
        // Meeting counts agree with pair contact counts.
        for &a in &graph.nodes() {
            for &b in &graph.nodes() {
                if a < b {
                    prop_assert_eq!(
                        graph.meeting_count(a, b),
                        stats.pair_contact_count(a, b) as u64
                    );
                }
            }
        }
        // Degrees agree.
        prop_assert_eq!(graph.degrees(), stats.degrees());
    }

    #[test]
    fn aggregate_components_partition_nodes(trace in arb_trace()) {
        use dtn_trace::AggregateGraph;
        let graph = AggregateGraph::from_trace(&trace);
        let comps = graph.components();
        let mut all: Vec<NodeId> = comps.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, trace.nodes(), "components must partition the nodes");
        // Density in [0, 1].
        prop_assert!((0.0..=1.0).contains(&graph.density()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn community_generator_invariants(
        nodes in 4u32..40, days in 1u64..6, seed in 0u64..1_000,
        communities in 1u32..6, attendance in 0.3f64..1.0
    ) {
        use dtn_trace::generators::CommunityConfig;
        let cfg = CommunityConfig::new(nodes, days)
            .communities(communities)
            .attendance(attendance)
            .seed(seed);
        let t = cfg.generate();
        for c in t.iter() {
            prop_assert!(c.size() >= 2);
            prop_assert!(c.start().day() < days);
            for p in c.participants() {
                prop_assert!(p.raw() < nodes);
            }
        }
        // Determinism.
        prop_assert_eq!(t, cfg.generate());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The indexed/streaming generator paths must reproduce the retained
    // all-pairs oracles exactly: same contacts, same multiplicities, same
    // order — the city-scale sweep is a pure enumeration change.

    #[test]
    fn dieselnet_indexed_sweep_equals_oracle(
        buses in 2u32..=256, days in 1u64..5, seed in 0u64..1_000, routes in 1u32..16
    ) {
        use dtn_trace::generators::DieselNetConfig;
        let cfg = DieselNetConfig::new(buses, days).seed(seed).routes(routes);
        let mut indexed = ContactTrace::builder();
        cfg.generate_into(&mut indexed);
        let mut oracle = ContactTrace::builder();
        cfg.generate_into_all_pairs(&mut oracle);
        prop_assert_eq!(indexed.build(), oracle.build());
    }

    #[test]
    fn nus_streaming_path_equals_oracle(
        students in 2u32..=256, days in 1u64..8, seed in 0u64..1_000,
        attendance in 0.2f64..1.0
    ) {
        use dtn_trace::generators::NusConfig;
        let cfg = NusConfig::new(students, days).seed(seed).attendance_rate(attendance);
        let mut streamed = ContactTrace::builder();
        cfg.generate_into(&mut streamed);
        let mut oracle = ContactTrace::builder();
        cfg.generate_into_all_pairs(&mut oracle);
        prop_assert_eq!(streamed.build(), oracle.build());
    }

    #[test]
    fn community_streaming_path_equals_oracle(
        nodes in 2u32..=256, days in 1u64..5, seed in 0u64..1_000,
        communities in 1u32..8, attendance in 0.3f64..1.0
    ) {
        use dtn_trace::generators::CommunityConfig;
        let cfg = CommunityConfig::new(nodes, days)
            .communities(communities)
            .attendance(attendance)
            .seed(seed);
        let mut streamed = ContactTrace::builder();
        cfg.generate_into(&mut streamed);
        let mut oracle = ContactTrace::builder();
        cfg.generate_into_all_pairs(&mut oracle);
        prop_assert_eq!(streamed.build(), oracle.build());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn space_time_delivery_times_are_causal(trace in arb_trace(), src in 0u32..50, created in 0u64..1_000_000) {
        let graph = dtn_trace::SpaceTimeGraph::new(&trace);
        let source = NodeId::new(src);
        let created = SimTime::from_secs(created);
        let arrivals = graph.earliest_delivery(source, created);
        // The source is present at its creation time; nothing arrives before.
        prop_assert_eq!(arrivals.get(&source), Some(&created));
        for (&node, &at) in &arrivals {
            prop_assert!(at >= created, "node {node} got the message before creation");
        }
    }

    #[test]
    fn space_time_monotone_in_creation_time(trace in arb_trace(), src in 0u32..50) {
        // Creating the message later can only shrink the reachable set.
        let graph = dtn_trace::SpaceTimeGraph::new(&trace);
        let source = NodeId::new(src);
        let early = graph.reachable(source, SimTime::ZERO, None);
        let late = graph.reachable(source, SimTime::from_secs(500_000), None);
        for n in &late {
            prop_assert!(early.contains(n), "late-reachable {n} not early-reachable");
        }
    }

    #[test]
    fn frequent_scan_equals_trace_stats_map(trace in arb_trace(), every_secs in 1u64..400_000) {
        // The streaming scan must reproduce the retained-statistics map
        // exactly, window exemptions and degenerate spans included.
        use dtn_trace::{FrequentScan, TraceStats};
        let every = SimDuration::from_secs(every_secs);
        let mut scan = FrequentScan::new(every);
        for contact in trace.iter() {
            scan.observe(contact);
        }
        let expected = TraceStats::compute(&trace).frequent_contact_map(every);
        prop_assert_eq!(scan.finish(), expected);
    }

    #[test]
    fn frequent_contacts_are_symmetric(trace in arb_trace()) {
        // Pair regularity is a property of the pair: u frequent-with v ⇔ v
        // frequent-with u.
        let stats = dtn_trace::TraceStats::compute(&trace);
        let every = SimDuration::from_days(1);
        for &u in stats.nodes() {
            for v in stats.frequent_contacts(u, every) {
                let back = stats.frequent_contacts(v, every);
                prop_assert!(back.contains(&u), "{u} frequent with {v} but not vice versa");
            }
        }
    }
}
