//! Aggregated (time-collapsed) contact graphs.
//!
//! Collapsing a trace over time yields a weighted graph — total contact time
//! and meeting count per node pair — the standard first view of a mobility
//! dataset: how clustered is it, is it connected at all, which nodes are
//! hubs. Used by `mbt trace-stats` and the mobility experiments.

use std::collections::{BTreeMap, BTreeSet};

use crate::node::NodeId;
use crate::time::SimDuration;
use crate::trace::ContactTrace;

/// The time-collapsed weighted contact graph of a trace.
///
/// # Example
///
/// ```
/// use dtn_trace::{aggregate::AggregateGraph, Contact, ContactTrace, NodeId, SimTime};
///
/// let trace: ContactTrace = vec![
///     Contact::pairwise(NodeId::new(0), NodeId::new(1), SimTime::from_secs(0), SimTime::from_secs(60))?,
///     Contact::pairwise(NodeId::new(2), NodeId::new(3), SimTime::from_secs(0), SimTime::from_secs(60))?,
/// ].into_iter().collect();
///
/// let graph = AggregateGraph::from_trace(&trace);
/// assert_eq!(graph.components().len(), 2, "two islands");
/// assert_eq!(graph.total_contact_time(NodeId::new(0), NodeId::new(1)).as_secs(), 60);
/// # Ok::<(), dtn_trace::ContactError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct AggregateGraph {
    /// Per unordered pair: (meeting count, total contact seconds).
    edges: BTreeMap<(NodeId, NodeId), (u64, u64)>,
    nodes: BTreeSet<NodeId>,
}

impl AggregateGraph {
    /// Builds the aggregate graph from a trace. Clique contacts contribute
    /// each of their pairs.
    pub fn from_trace(trace: &ContactTrace) -> Self {
        let mut graph = AggregateGraph::default();
        for contact in trace.iter() {
            let secs = contact.duration().as_secs();
            for &p in contact.participants() {
                graph.nodes.insert(p);
            }
            for pair in contact.pairs() {
                let entry = graph.edges.entry(pair).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += secs;
            }
        }
        graph
    }

    /// All nodes that appear in the trace, sorted.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.nodes.iter().copied().collect()
    }

    /// Number of weighted edges (pairs that ever met).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// How many times the pair met.
    pub fn meeting_count(&self, a: NodeId, b: NodeId) -> u64 {
        self.edges.get(&ordered(a, b)).map_or(0, |&(c, _)| c)
    }

    /// Total time the pair spent in contact.
    pub fn total_contact_time(&self, a: NodeId, b: NodeId) -> SimDuration {
        SimDuration::from_secs(self.edges.get(&ordered(a, b)).map_or(0, |&(_, s)| s))
    }

    /// The degree (distinct peers ever met) of each node.
    pub fn degrees(&self) -> BTreeMap<NodeId, usize> {
        let mut deg: BTreeMap<NodeId, usize> = self.nodes.iter().map(|&n| (n, 0)).collect();
        for &(a, b) in self.edges.keys() {
            *deg.entry(a).or_insert(0) += 1;
            *deg.entry(b).or_insert(0) += 1;
        }
        deg
    }

    /// Connected components of the aggregate graph, each sorted, largest
    /// first (ties broken by smallest member).
    pub fn components(&self) -> Vec<Vec<NodeId>> {
        let mut adjacency: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for &(a, b) in self.edges.keys() {
            adjacency.entry(a).or_default().push(b);
            adjacency.entry(b).or_default().push(a);
        }
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        let mut components = Vec::new();
        for &start in &self.nodes {
            if seen.contains(&start) {
                continue;
            }
            let mut component = Vec::new();
            let mut stack = vec![start];
            seen.insert(start);
            while let Some(n) = stack.pop() {
                component.push(n);
                for &peer in adjacency.get(&n).into_iter().flatten() {
                    if seen.insert(peer) {
                        stack.push(peer);
                    }
                }
            }
            component.sort_unstable();
            components.push(component);
        }
        components.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
        components
    }

    /// True if every node can (eventually) reach every other, ignoring time.
    ///
    /// A necessary — not sufficient — condition for full delivery: the
    /// time-respecting reachability of
    /// [`SpaceTimeGraph`](crate::SpaceTimeGraph) is strictly stronger.
    pub fn is_connected(&self) -> bool {
        self.components().len() <= 1
    }

    /// Clustering summary: the graph density `edges / (n choose 2)`.
    pub fn density(&self) -> f64 {
        let n = self.nodes.len();
        if n < 2 {
            return 0.0;
        }
        self.edges.len() as f64 / (n * (n - 1) / 2) as f64
    }
}

fn ordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::Contact;
    use crate::time::SimTime;

    fn pc(a: u32, b: u32, start: u64, end: u64) -> Contact {
        Contact::pairwise(
            NodeId::new(a),
            NodeId::new(b),
            SimTime::from_secs(start),
            SimTime::from_secs(end),
        )
        .unwrap()
    }

    #[test]
    fn accumulates_weights() {
        let t: ContactTrace = vec![pc(0, 1, 0, 30), pc(1, 0, 100, 150)]
            .into_iter()
            .collect();
        let g = AggregateGraph::from_trace(&t);
        assert_eq!(g.meeting_count(NodeId::new(0), NodeId::new(1)), 2);
        assert_eq!(
            g.total_contact_time(NodeId::new(1), NodeId::new(0)),
            SimDuration::from_secs(80)
        );
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn clique_contributes_all_pairs() {
        let c = Contact::clique(
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
            SimTime::from_secs(0),
            SimTime::from_secs(10),
        )
        .unwrap();
        let t: ContactTrace = vec![c].into_iter().collect();
        let g = AggregateGraph::from_trace(&t);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.density(), 1.0);
    }

    #[test]
    fn components_detect_partition() {
        let t: ContactTrace = vec![pc(0, 1, 0, 10), pc(2, 3, 0, 10), pc(3, 4, 20, 30)]
            .into_iter()
            .collect();
        let g = AggregateGraph::from_trace(&t);
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(
            comps[0],
            vec![NodeId::new(2), NodeId::new(3), NodeId::new(4)]
        );
        assert!(!g.is_connected());
    }

    #[test]
    fn connected_chain() {
        let t: ContactTrace = vec![pc(0, 1, 0, 10), pc(1, 2, 0, 10), pc(2, 3, 0, 10)]
            .into_iter()
            .collect();
        let g = AggregateGraph::from_trace(&t);
        assert!(g.is_connected());
        let deg = g.degrees();
        assert_eq!(deg[&NodeId::new(0)], 1);
        assert_eq!(deg[&NodeId::new(1)], 2);
    }

    #[test]
    fn empty_trace_graph() {
        let g = AggregateGraph::from_trace(&ContactTrace::new());
        assert!(g.nodes().is_empty());
        assert_eq!(g.density(), 0.0);
        assert!(g.is_connected(), "vacuously connected");
        assert_eq!(g.meeting_count(NodeId::new(0), NodeId::new(1)), 0);
    }

    #[test]
    fn unknown_pairs_have_zero_weight() {
        let t: ContactTrace = vec![pc(0, 1, 0, 10)].into_iter().collect();
        let g = AggregateGraph::from_trace(&t);
        assert_eq!(g.meeting_count(NodeId::new(0), NodeId::new(9)), 0);
        assert_eq!(
            g.total_contact_time(NodeId::new(0), NodeId::new(9)),
            SimDuration::ZERO
        );
    }
}
