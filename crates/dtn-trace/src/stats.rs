//! Trace statistics.
//!
//! The MBT paper determines each node's *frequent contacting nodes* from
//! statistics of the traces (§VI-A): in the UMassDieselNet trace, nodes that
//! have contacts at least every three days; in the NUS student trace, nodes
//! that have contacts at least once per day. [`TraceStats::frequent_contacts`]
//! implements exactly that rule.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::contact::Contact;
use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};
use crate::trace::ContactTrace;

/// Aggregate statistics over a [`ContactTrace`].
///
/// # Example
///
/// ```
/// use dtn_trace::{Contact, ContactTrace, NodeId, SimTime, TraceStats, SimDuration};
///
/// let trace: ContactTrace = vec![
///     Contact::pairwise(NodeId::new(0), NodeId::new(1), SimTime::from_secs(0), SimTime::from_secs(60))?,
///     Contact::pairwise(NodeId::new(0), NodeId::new(1), SimTime::from_days(1), SimTime::from_days(1) + SimDuration::from_secs(60))?,
/// ]
/// .into_iter()
/// .collect();
///
/// let stats = TraceStats::compute(&trace);
/// assert_eq!(stats.contact_count(), 2);
/// assert_eq!(stats.pair_contact_count(NodeId::new(0), NodeId::new(1)), 2);
/// # Ok::<(), dtn_trace::ContactError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceStats {
    contact_count: usize,
    span: SimDuration,
    duration_total_secs: u64,
    /// Per unordered pair: sorted contact start times.
    pair_starts: BTreeMap<(NodeId, NodeId), Vec<SimTime>>,
    nodes: Vec<NodeId>,
}

impl TraceStats {
    /// Computes statistics for a trace.
    ///
    /// Clique contacts contribute one pair-event to every unordered pair of
    /// participants (students in one classroom all "meet" each other).
    pub fn compute(trace: &ContactTrace) -> Self {
        Self::compute_stream(trace.iter().cloned())
    }

    /// Computes statistics from one streaming pass, without requiring the
    /// full trace in memory. Contacts may arrive in any order; span, node
    /// set, and per-pair start lists are derived during the pass.
    ///
    /// `compute_stream(trace.iter().cloned())` is identical to
    /// [`TraceStats::compute`] on the same trace.
    pub fn compute_stream<I: IntoIterator<Item = crate::contact::Contact>>(contacts: I) -> Self {
        let mut contact_count = 0usize;
        let mut duration_total_secs = 0u64;
        let mut min_start: Option<SimTime> = None;
        let mut max_end: Option<SimTime> = None;
        let mut pair_starts: BTreeMap<(NodeId, NodeId), Vec<SimTime>> = BTreeMap::new();
        let mut nodes: BTreeSet<NodeId> = BTreeSet::new();
        for contact in contacts {
            contact_count += 1;
            duration_total_secs += contact.duration().as_secs();
            min_start = Some(min_start.map_or(contact.start(), |t| t.min(contact.start())));
            max_end = Some(max_end.map_or(contact.end(), |t| t.max(contact.end())));
            nodes.extend(contact.participants().iter().copied());
            for pair in contact.pairs() {
                pair_starts.entry(pair).or_default().push(contact.start());
            }
        }
        for starts in pair_starts.values_mut() {
            starts.sort_unstable();
        }
        let span = match (min_start, max_end) {
            (Some(s), Some(e)) => e.duration_since(s),
            _ => SimDuration::ZERO,
        };
        TraceStats {
            contact_count,
            span,
            duration_total_secs,
            pair_starts,
            nodes: nodes.into_iter().collect(),
        }
    }

    /// Number of contacts in the trace.
    pub fn contact_count(&self) -> usize {
        self.contact_count
    }

    /// Total trace span (first start to last end).
    pub fn span(&self) -> SimDuration {
        self.span
    }

    /// The nodes appearing in the trace, sorted.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Mean contact duration in seconds, or `None` for an empty trace.
    pub fn mean_contact_duration_secs(&self) -> Option<f64> {
        if self.contact_count == 0 {
            return None;
        }
        Some(self.duration_total_secs as f64 / self.contact_count as f64)
    }

    /// Number of contacts between the unordered pair `(a, b)`.
    pub fn pair_contact_count(&self, a: NodeId, b: NodeId) -> usize {
        self.pair_starts
            .get(&ordered(a, b))
            .map_or(0, |starts| starts.len())
    }

    /// Inter-contact times (gaps between consecutive contact starts) for the
    /// unordered pair `(a, b)`.
    pub fn inter_contact_times(&self, a: NodeId, b: NodeId) -> Vec<SimDuration> {
        let Some(starts) = self.pair_starts.get(&ordered(a, b)) else {
            return Vec::new();
        };
        starts
            .windows(2)
            .map(|w| w[1].duration_since(w[0]))
            .collect()
    }

    /// All inter-contact times across all pairs, pooled.
    pub fn pooled_inter_contact_times(&self) -> Vec<SimDuration> {
        let mut out = Vec::new();
        for starts in self.pair_starts.values() {
            out.extend(starts.windows(2).map(|w| w[1].duration_since(w[0])));
        }
        out.sort_unstable();
        out
    }

    /// The *frequent contacting nodes* of `node` under the paper's rule: a
    /// peer is frequent if the pair has at least one contact in every
    /// consecutive window of length `every` across the whole trace span.
    ///
    /// The paper instantiates `every` as 3 days for the UMassDieselNet trace
    /// and 1 day for the NUS student trace (§VI-A). Windows in which the
    /// *entire network* is idle (weekends on a campus trace, overnight gaps)
    /// are skipped — "at least once per day" means per day the network is
    /// active. A pair with no contact at all is never frequent.
    pub fn frequent_contacts(&self, node: NodeId, every: SimDuration) -> Vec<NodeId> {
        if every.is_zero() || self.span.is_zero() {
            return Vec::new();
        }
        let trace_start = SimTime::ZERO;
        let trace_end = trace_start + self.span;
        let mut all_starts: Vec<SimTime> = self
            .pair_starts
            .values()
            .flat_map(|s| s.iter().copied())
            .collect();
        all_starts.sort_unstable();
        let mut result = Vec::new();
        for (&(a, b), starts) in &self.pair_starts {
            let peer = if a == node {
                b
            } else if b == node {
                a
            } else {
                continue;
            };
            if is_regular(starts, &all_starts, trace_start, trace_end, every) {
                result.push(peer);
            }
        }
        result.sort_unstable();
        result
    }

    /// Map from every node to its frequent contacts (see
    /// [`TraceStats::frequent_contacts`]).
    pub fn frequent_contact_map(&self, every: SimDuration) -> BTreeMap<NodeId, Vec<NodeId>> {
        let mut map: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for &node in &self.nodes {
            map.insert(node, self.frequent_contacts(node, every));
        }
        map
    }

    /// Average clique size over all contacts (2.0 for purely pair-wise traces).
    pub fn mean_contact_size(&self, trace: &ContactTrace) -> Option<f64> {
        if trace.is_empty() {
            return None;
        }
        let total: usize = trace.iter().map(|c| c.size()).sum();
        Some(total as f64 / trace.len() as f64)
    }

    /// Degree of each node: the number of distinct peers it ever contacts.
    pub fn degrees(&self) -> BTreeMap<NodeId, usize> {
        let mut peers: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
        for &(a, b) in self.pair_starts.keys() {
            peers.entry(a).or_default().insert(b);
            peers.entry(b).or_default().insert(a);
        }
        let mut out: BTreeMap<NodeId, usize> = BTreeMap::new();
        for &node in &self.nodes {
            out.insert(node, peers.get(&node).map_or(0, |s| s.len()));
        }
        out
    }
}

/// True if `starts` has at least one entry in every *active* window of
/// length `every` tiled across `[trace_start, trace_end)`. A window is
/// active when `all_starts` (every contact in the trace, sorted) has at
/// least one entry in it; fully idle windows are skipped.
fn is_regular(
    starts: &[SimTime],
    all_starts: &[SimTime],
    trace_start: SimTime,
    trace_end: SimTime,
    every: SimDuration,
) -> bool {
    if starts.is_empty() {
        return false;
    }
    let mut window_start = trace_start;
    let mut idx = 0usize;
    let mut all_idx = 0usize;
    while window_start < trace_end {
        let window_end = window_start.saturating_add(every);
        while idx < starts.len() && starts[idx] < window_start {
            idx += 1;
        }
        while all_idx < all_starts.len() && all_starts[all_idx] < window_start {
            all_idx += 1;
        }
        let window_active = all_idx < all_starts.len() && all_starts[all_idx] < window_end;
        if window_active {
            let hit = idx < starts.len() && starts[idx] < window_end;
            if !hit {
                return false;
            }
        }
        window_start = window_end;
    }
    true
}

/// Streaming computation of the frequent-contact map.
///
/// Produces exactly [`TraceStats::frequent_contact_map`] — same windows,
/// same idle-window exemption, same vacuous edge cases — from a single pass
/// over the contacts, without retaining per-pair start lists. `TraceStats`
/// keeps every contact start of every pair (O(pair-events) memory) and then
/// re-scans the whole pair table once per node; at city scale both blow up.
/// The scan instead keeps one pair set per *window* of the rule, folds each
/// window into a running intersection as soon as the stream has moved past
/// it, and expands the surviving pairs into per-node lists at the end, so
/// memory is bounded by the pairs active in a handful of windows.
///
/// Contacts must be observed in nondecreasing start order — the order every
/// [`ContactStream`](crate::ContactStream) and [`ContactTrace`] iteration
/// yields. Observing a contact whose window has already been folded panics
/// rather than returning a silently wrong map.
///
/// # Example
///
/// ```
/// use dtn_trace::{Contact, ContactTrace, FrequentScan, NodeId, SimDuration, SimTime, TraceStats};
///
/// let trace: ContactTrace = (0..3)
///     .map(|day| {
///         Contact::pairwise(
///             NodeId::new(0),
///             NodeId::new(1),
///             SimTime::from_days(day),
///             SimTime::from_days(day) + SimDuration::from_secs(60),
///         )
///         .unwrap()
///     })
///     .collect();
/// let every = SimDuration::from_days(1);
/// let mut scan = FrequentScan::new(every);
/// for contact in trace.iter() {
///     scan.observe(contact);
/// }
/// assert_eq!(
///     scan.finish(),
///     TraceStats::compute(&trace).frequent_contact_map(every)
/// );
/// ```
#[derive(Debug, Clone)]
pub struct FrequentScan {
    every_secs: u64,
    min_start: Option<SimTime>,
    max_end: Option<SimTime>,
    max_start_secs: u64,
    /// Windows the stream may still touch or whose validity (window start
    /// inside the final trace span) is still unknown: `(window index, pairs
    /// with a contact start in the window)`, ascending by index. Windows
    /// with no contacts never appear — they are the idle windows the rule
    /// exempts.
    pending: VecDeque<(u64, BTreeSet<(NodeId, NodeId)>)>,
    /// Index below which windows are folded; a contact landing there would
    /// change an already-consumed window.
    min_open_window: u64,
    /// Intersection of every folded window's pair set; `None` until the
    /// first fold.
    frequent: Option<BTreeSet<(NodeId, NodeId)>>,
    /// Every pair seen, kept only until the first fold: when no enumerated
    /// window turns out to be active, the rule holds vacuously and every
    /// pair with at least one contact is frequent.
    union: BTreeSet<(NodeId, NodeId)>,
    nodes: BTreeSet<NodeId>,
}

impl FrequentScan {
    /// Starts a scan with the rule's window length (see
    /// [`TraceStats::frequent_contacts`] for the paper's instantiations).
    pub fn new(every: SimDuration) -> Self {
        FrequentScan {
            every_secs: every.as_secs(),
            min_start: None,
            max_end: None,
            max_start_secs: 0,
            pending: VecDeque::new(),
            min_open_window: 0,
            frequent: None,
            union: BTreeSet::new(),
            nodes: BTreeSet::new(),
        }
    }

    /// Feeds one contact.
    ///
    /// # Panics
    ///
    /// Panics if `contact` starts before a window the scan has already
    /// folded — i.e. when contacts arrive out of start order.
    pub fn observe(&mut self, contact: &Contact) {
        self.nodes.extend(contact.participants().iter().copied());
        let start = contact.start();
        self.min_start = Some(self.min_start.map_or(start, |t| t.min(start)));
        self.max_end = Some(self.max_end.map_or(contact.end(), |t| t.max(contact.end())));
        self.max_start_secs = self.max_start_secs.max(start.as_secs());
        if self.every_secs == 0 {
            return; // A zero-length window yields an all-empty map anyway.
        }
        let window = start.as_secs() / self.every_secs;
        assert!(
            window >= self.min_open_window,
            "FrequentScan requires nondecreasing contact starts \
             (window {window} is already folded)"
        );
        let pairs = contact.pairs();
        if self.frequent.is_none() {
            self.union.extend(pairs.iter().copied());
        }
        let slot = match self.pending.binary_search_by_key(&window, |&(w, _)| w) {
            Ok(i) => i,
            Err(i) => {
                self.pending.insert(i, (window, BTreeSet::new()));
                i
            }
        };
        self.pending[slot].1.extend(pairs);
        self.fold_ready();
    }

    /// Folds leading pending windows that are *complete* (the stream has
    /// moved past them) and *valid* (their start lies inside the trace span
    /// observed so far — a lower bound on the final span, so a window valid
    /// now is valid at the end). Completeness and validity are both
    /// monotone in the window index, so stopping at the first failure is
    /// exact.
    fn fold_ready(&mut self) {
        let (Some(min_start), Some(max_end)) = (self.min_start, self.max_end) else {
            return;
        };
        let trace_end = max_end.as_secs() - min_start.as_secs();
        while let Some((window, _)) = self.pending.front() {
            let complete = (window + 1)
                .checked_mul(self.every_secs)
                .is_some_and(|end| end <= self.max_start_secs);
            let valid = window
                .checked_mul(self.every_secs)
                .is_some_and(|start| start < trace_end);
            if !(complete && valid) {
                break;
            }
            let (window, pairs) = self.pending.pop_front().expect("front exists");
            self.min_open_window = window + 1;
            self.fold(pairs);
        }
    }

    fn fold(&mut self, window: BTreeSet<(NodeId, NodeId)>) {
        match &mut self.frequent {
            None => {
                self.frequent = Some(window);
                // An active window exists: the vacuous fallback is dead.
                self.union = BTreeSet::new();
            }
            Some(frequent) => frequent.retain(|pair| window.contains(pair)),
        }
    }

    /// Finishes the scan: folds the remaining valid windows against the
    /// final trace span and expands the surviving pairs into the same map
    /// [`TraceStats::frequent_contact_map`] produces — every node in the
    /// trace, mapped to its sorted frequent peers.
    pub fn finish(mut self) -> BTreeMap<NodeId, Vec<NodeId>> {
        let mut map: BTreeMap<NodeId, Vec<NodeId>> =
            self.nodes.iter().map(|&n| (n, Vec::new())).collect();
        let span = match (self.min_start, self.max_end) {
            (Some(s), Some(e)) => e.as_secs() - s.as_secs(),
            _ => 0,
        };
        if self.every_secs == 0 || span == 0 {
            return map;
        }
        for (window, pairs) in std::mem::take(&mut self.pending) {
            let valid = window
                .checked_mul(self.every_secs)
                .is_some_and(|start| start < span);
            // Windows at or past the trace end are never enumerated by the
            // rule; contacts there count for nothing.
            if valid {
                self.fold(pairs);
            }
        }
        let frequent = self.frequent.unwrap_or(self.union);
        for (a, b) in frequent {
            // Pairs iterate in sorted order and a < b throughout, so each
            // node's peer list comes out sorted without a final sort.
            map.get_mut(&a)
                .expect("pair nodes are in the node set")
                .push(b);
            map.get_mut(&b)
                .expect("pair nodes are in the node set")
                .push(a);
        }
        map
    }
}

fn ordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Convenience: the paper's frequent-contact rule for the DieselNet trace
/// (contacts at least every three days).
pub const DIESELNET_FREQUENT_EVERY: SimDuration = SimDuration::from_days(3);

/// Convenience: the paper's frequent-contact rule for the NUS student trace
/// (contacts at least once per day).
pub const NUS_FREQUENT_EVERY: SimDuration = SimDuration::from_days(1);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::Contact;

    fn pc(a: u32, b: u32, start: u64, end: u64) -> Contact {
        Contact::pairwise(
            NodeId::new(a),
            NodeId::new(b),
            SimTime::from_secs(start),
            SimTime::from_secs(end),
        )
        .unwrap()
    }

    fn day(d: u64) -> u64 {
        d * crate::SECONDS_PER_DAY
    }

    #[test]
    fn counts_and_durations() {
        let t: ContactTrace = vec![pc(0, 1, 0, 30), pc(0, 1, 100, 160)]
            .into_iter()
            .collect();
        let s = TraceStats::compute(&t);
        assert_eq!(s.contact_count(), 2);
        assert_eq!(s.mean_contact_duration_secs(), Some(45.0));
        assert_eq!(s.pair_contact_count(NodeId::new(1), NodeId::new(0)), 2);
    }

    #[test]
    fn empty_trace_stats() {
        let s = TraceStats::compute(&ContactTrace::new());
        assert_eq!(s.contact_count(), 0);
        assert_eq!(s.mean_contact_duration_secs(), None);
        assert!(s.pooled_inter_contact_times().is_empty());
    }

    #[test]
    fn inter_contact_times_per_pair() {
        let t: ContactTrace = vec![pc(0, 1, 0, 10), pc(0, 1, 100, 110), pc(0, 1, 250, 260)]
            .into_iter()
            .collect();
        let s = TraceStats::compute(&t);
        assert_eq!(
            s.inter_contact_times(NodeId::new(0), NodeId::new(1)),
            vec![SimDuration::from_secs(100), SimDuration::from_secs(150)]
        );
    }

    #[test]
    fn clique_counts_all_pairs() {
        let c = Contact::clique(
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
            SimTime::from_secs(0),
            SimTime::from_secs(10),
        )
        .unwrap();
        let t: ContactTrace = vec![c].into_iter().collect();
        let s = TraceStats::compute(&t);
        assert_eq!(s.pair_contact_count(NodeId::new(0), NodeId::new(2)), 1);
        assert_eq!(s.pair_contact_count(NodeId::new(1), NodeId::new(2)), 1);
    }

    #[test]
    fn frequent_contacts_daily_pair() {
        // Nodes 0 and 1 meet once per day for 3 days; node 2 meets node 0 only once.
        let t: ContactTrace = vec![
            pc(0, 1, day(0) + 100, day(0) + 200),
            pc(0, 1, day(1) + 100, day(1) + 200),
            pc(0, 1, day(2) + 100, day(2) + 200),
            pc(0, 2, day(1) + 500, day(1) + 600),
        ]
        .into_iter()
        .collect();
        let s = TraceStats::compute(&t);
        let freq = s.frequent_contacts(NodeId::new(0), SimDuration::from_days(1));
        assert_eq!(freq, vec![NodeId::new(1)]);
    }

    #[test]
    fn frequent_contacts_respects_gap() {
        // A two-day hole breaks the "at least every day" rule. Other pairs
        // keep the network active every day, so the idle-window exemption
        // does not apply.
        let t: ContactTrace = vec![
            pc(0, 1, day(0) + 100, day(0) + 200),
            pc(0, 1, day(3) + 100, day(3) + 200),
            pc(2, 3, day(1) + 100, day(1) + 200),
            pc(2, 3, day(2) + 100, day(2) + 200),
        ]
        .into_iter()
        .collect();
        let s = TraceStats::compute(&t);
        assert!(s
            .frequent_contacts(NodeId::new(0), SimDuration::from_days(1))
            .is_empty());
        // But the looser 3-day DieselNet rule tolerates it: windows [0,3d)
        // and [3d,6d) each hold a (0,1) contact.
        assert_eq!(
            s.frequent_contacts(NodeId::new(0), DIESELNET_FREQUENT_EVERY),
            vec![NodeId::new(1)]
        );
    }

    #[test]
    fn globally_idle_windows_are_exempt() {
        // Contacts only on "school days" 0 and 3 for everyone: the network
        // itself was idle on days 1-2, so a pair meeting on both active days
        // still counts as frequent under the 1-day rule.
        let t: ContactTrace = vec![
            pc(0, 1, day(0) + 100, day(0) + 200),
            pc(0, 1, day(3) + 100, day(3) + 200),
            pc(2, 3, day(0) + 300, day(0) + 400),
            pc(2, 3, day(3) + 300, day(3) + 400),
        ]
        .into_iter()
        .collect();
        let s = TraceStats::compute(&t);
        assert_eq!(
            s.frequent_contacts(NodeId::new(0), SimDuration::from_days(1)),
            vec![NodeId::new(1)]
        );
    }

    #[test]
    fn frequent_contact_map_covers_all_nodes() {
        let t: ContactTrace = vec![pc(0, 1, 100, 200)].into_iter().collect();
        let s = TraceStats::compute(&t);
        let map = s.frequent_contact_map(SimDuration::from_days(1));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn zero_window_yields_nothing() {
        let t: ContactTrace = vec![pc(0, 1, 100, 200)].into_iter().collect();
        let s = TraceStats::compute(&t);
        assert!(s
            .frequent_contacts(NodeId::new(0), SimDuration::ZERO)
            .is_empty());
    }

    #[test]
    fn degrees_count_distinct_peers() {
        let t: ContactTrace = vec![pc(0, 1, 0, 10), pc(0, 1, 20, 30), pc(0, 2, 40, 50)]
            .into_iter()
            .collect();
        let s = TraceStats::compute(&t);
        let deg = s.degrees();
        assert_eq!(deg[&NodeId::new(0)], 2);
        assert_eq!(deg[&NodeId::new(1)], 1);
    }

    #[test]
    fn mean_contact_size_pairwise_is_two() {
        let t: ContactTrace = vec![pc(0, 1, 0, 10)].into_iter().collect();
        let s = TraceStats::compute(&t);
        assert_eq!(s.mean_contact_size(&t), Some(2.0));
    }

    #[test]
    fn compute_stream_matches_compute_regardless_of_order() {
        let contacts = vec![pc(0, 1, 100, 200), pc(2, 3, 0, 50), pc(0, 2, 300, 400)];
        let trace: ContactTrace = contacts.clone().into_iter().collect();
        let from_trace = TraceStats::compute(&trace);
        // Feed the un-sorted original order — stats must not depend on it.
        let from_stream = TraceStats::compute_stream(contacts);
        assert_eq!(from_stream.contact_count(), from_trace.contact_count());
        assert_eq!(from_stream.span(), from_trace.span());
        assert_eq!(from_stream.nodes(), from_trace.nodes());
        assert_eq!(
            from_stream.mean_contact_duration_secs(),
            from_trace.mean_contact_duration_secs()
        );
        assert_eq!(
            from_stream.pair_contact_count(NodeId::new(0), NodeId::new(1)),
            from_trace.pair_contact_count(NodeId::new(0), NodeId::new(1))
        );
        assert_eq!(
            from_stream.pooled_inter_contact_times(),
            from_trace.pooled_inter_contact_times()
        );
    }

    fn scan_of(trace: &ContactTrace, every: SimDuration) -> BTreeMap<NodeId, Vec<NodeId>> {
        let mut scan = FrequentScan::new(every);
        for contact in trace.iter() {
            scan.observe(contact);
        }
        scan.finish()
    }

    #[test]
    fn frequent_scan_matches_map_on_daily_and_gapped_traces() {
        let traces: Vec<ContactTrace> = vec![
            // Daily pair plus a one-off.
            vec![
                pc(0, 1, day(0) + 100, day(0) + 200),
                pc(0, 1, day(1) + 100, day(1) + 200),
                pc(0, 1, day(2) + 100, day(2) + 200),
                pc(0, 2, day(1) + 500, day(1) + 600),
            ]
            .into_iter()
            .collect(),
            // Two-day hole with the network otherwise active.
            vec![
                pc(0, 1, day(0) + 100, day(0) + 200),
                pc(2, 3, day(1) + 100, day(1) + 200),
                pc(2, 3, day(2) + 100, day(2) + 200),
                pc(0, 1, day(3) + 100, day(3) + 200),
            ]
            .into_iter()
            .collect(),
            // Globally idle days 1-2 (the exemption).
            vec![
                pc(0, 1, day(0) + 100, day(0) + 200),
                pc(2, 3, day(0) + 300, day(0) + 400),
                pc(0, 1, day(3) + 100, day(3) + 200),
                pc(2, 3, day(3) + 300, day(3) + 400),
            ]
            .into_iter()
            .collect(),
            // Clique contacts.
            vec![Contact::clique(
                vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
                SimTime::from_secs(100),
                SimTime::from_secs(200),
            )
            .unwrap()]
            .into_iter()
            .collect(),
            ContactTrace::new(),
        ];
        for trace in &traces {
            let stats = TraceStats::compute(trace);
            for every in [SimDuration::from_days(1), DIESELNET_FREQUENT_EVERY] {
                assert_eq!(scan_of(trace, every), stats.frequent_contact_map(every));
            }
        }
    }

    #[test]
    fn frequent_scan_zero_window_is_all_empty() {
        let t: ContactTrace = vec![pc(0, 1, 100, 200)].into_iter().collect();
        let map = scan_of(&t, SimDuration::ZERO);
        assert_eq!(map.len(), 2);
        assert!(map.values().all(Vec::is_empty));
    }

    #[test]
    fn frequent_scan_vacuous_trace_marks_contacted_pairs_frequent() {
        // Both starts land past the trace end (end-start span 10, window 5):
        // no enumerated window is ever active, so the rule holds vacuously
        // for every pair with a contact — in TraceStats and the scan alike.
        let t: ContactTrace = vec![pc(0, 1, 10, 20), pc(2, 3, 19, 20)]
            .into_iter()
            .collect();
        let every = SimDuration::from_secs(5);
        let expected = TraceStats::compute(&t).frequent_contact_map(every);
        assert_eq!(expected[&NodeId::new(0)], vec![NodeId::new(1)]);
        assert_eq!(scan_of(&t, every), expected);
    }

    #[test]
    #[should_panic(expected = "nondecreasing contact starts")]
    fn frequent_scan_rejects_out_of_order_folded_window() {
        let mut scan = FrequentScan::new(SimDuration::from_secs(1));
        scan.observe(&pc(0, 1, 0, 1));
        scan.observe(&pc(0, 1, 5, 6));
        scan.observe(&pc(0, 1, 10, 11)); // folds windows 0 and 5
        scan.observe(&pc(2, 3, 0, 1)); // lands in the folded window 0
    }

    #[test]
    fn pooled_inter_contact_times_sorted() {
        let t: ContactTrace = vec![
            pc(0, 1, 0, 10),
            pc(0, 1, 500, 510),
            pc(2, 3, 0, 10),
            pc(2, 3, 100, 110),
        ]
        .into_iter()
        .collect();
        let s = TraceStats::compute(&t);
        let pooled = s.pooled_inter_contact_times();
        assert_eq!(
            pooled,
            vec![SimDuration::from_secs(100), SimDuration::from_secs(500)]
        );
    }
}
