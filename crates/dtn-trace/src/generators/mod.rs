//! Synthetic trace generators.
//!
//! The MBT paper evaluates on two traces: the real UMassDieselNet bus trace
//! and the synthetic NUS student contact trace. Neither raw trace is
//! redistributable, so this module regenerates traces with the same
//! *structure* the paper relies on:
//!
//! - [`dieselnet`] produces **pair-wise only** contacts between buses on
//!   scheduled routes (the paper notes the UMassDieselNet trace "only
//!   contains pair-wise contacts"),
//! - [`nus`] produces **classroom clique** contacts from a campus timetable
//!   (students "can receive messages from each other if and only if they are
//!   in the same classroom"), with the attendance-rate knob of Fig 3(f),
//! - [`random_waypoint`] is a generic mobility-derived generator used by the
//!   ablation experiments,
//! - [`community`] is a caveman-style home-community model with traveling
//!   bridges, for experiments on clustered mobility.
//!
//! All generators are deterministic given a seed.

pub mod community;
pub mod dieselnet;
pub mod nus;
pub mod random_waypoint;

pub use community::CommunityConfig;
pub use dieselnet::DieselNetConfig;
pub use nus::NusConfig;
pub use random_waypoint::RandomWaypointConfig;
