//! DieselNet-style bus trace generator.
//!
//! The UMassDieselNet trace (Burgess et al., INFOCOM'06) records pair-wise
//! radio contacts between ~40 transit buses running scheduled routes around
//! Amherst, MA. Its load-bearing properties for the MBT evaluation are:
//!
//! - contacts are **strictly pair-wise** (buses rarely meet three at a time),
//!   so download cliques degenerate to pairs;
//! - contacts are **short** (tens of seconds: two buses passing each other);
//! - contacts are **sparse and route-structured**: a pair of buses on
//!   intersecting routes meets a few times per day, other pairs almost never;
//! - buses only operate during **service hours** (roughly 6:00–22:00).
//!
//! This generator reproduces those properties from a small route model: buses
//! are assigned to routes; every pair of routes has a crossing intensity; a
//! pair of buses meets as a Poisson process whose rate is the product of its
//! routes' crossing intensity, thinned to service hours.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::contact::Contact;
use crate::node::NodeId;
use crate::time::{SimDuration, SimTime, SECONDS_PER_DAY};
use crate::trace::{ContactSink, ContactTrace};

/// Configuration for the DieselNet-style generator.
///
/// Construct with [`DieselNetConfig::new`] and customize with the builder
/// methods; call [`DieselNetConfig::generate`] to produce a trace.
///
/// # Example
///
/// ```
/// use dtn_trace::generators::DieselNetConfig;
///
/// let trace = DieselNetConfig::new(20, 7).seed(42).generate();
/// assert!(trace.iter().all(|c| c.size() == 2), "DieselNet contacts are pair-wise");
/// ```
#[derive(Debug, Clone)]
pub struct DieselNetConfig {
    buses: u32,
    days: u64,
    routes: u32,
    seed: u64,
    service_start_hour: u64,
    service_end_hour: u64,
    same_route_rate_per_day: f64,
    crossing_route_rate_per_day: f64,
    mean_contact_secs: f64,
}

impl DieselNetConfig {
    /// Creates a configuration for `buses` buses over `days` days with
    /// defaults matched to the published trace statistics (~40 buses,
    /// ~8 routes, short contacts, 06:00–22:00 service).
    pub fn new(buses: u32, days: u64) -> Self {
        DieselNetConfig {
            buses,
            days,
            routes: 8,
            seed: 0,
            service_start_hour: 6,
            service_end_hour: 22,
            same_route_rate_per_day: 2.0,
            crossing_route_rate_per_day: 0.35,
            mean_contact_secs: 45.0,
        }
    }

    /// Sets the RNG seed (default 0). Same seed ⇒ same trace.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of routes buses are assigned to (default 8).
    ///
    /// # Panics
    ///
    /// Panics if `routes == 0`.
    pub fn routes(mut self, routes: u32) -> Self {
        assert!(routes > 0, "at least one route is required");
        self.routes = routes;
        self
    }

    /// Sets daily service hours `[start, end)` in whole hours (default 6–22).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or exceeds 24 hours.
    pub fn service_hours(mut self, start: u64, end: u64) -> Self {
        assert!(start < end && end <= 24, "invalid service window");
        self.service_start_hour = start;
        self.service_end_hour = end;
        self
    }

    /// Mean daily meetings for a pair of buses on the *same* route
    /// (default 2.0).
    pub fn same_route_rate_per_day(mut self, rate: f64) -> Self {
        self.same_route_rate_per_day = rate.max(0.0);
        self
    }

    /// Mean daily meetings for a pair of buses on *crossing* routes
    /// (default 0.35).
    pub fn crossing_route_rate_per_day(mut self, rate: f64) -> Self {
        self.crossing_route_rate_per_day = rate.max(0.0);
        self
    }

    /// Mean contact duration in seconds (default 45).
    pub fn mean_contact_secs(mut self, secs: f64) -> Self {
        self.mean_contact_secs = secs.max(1.0);
        self
    }

    /// Number of buses.
    pub fn bus_count(&self) -> u32 {
        self.buses
    }

    /// Number of simulated days.
    pub fn day_count(&self) -> u64 {
        self.days
    }

    /// Generates the contact trace.
    ///
    /// The output contains only pair-wise contacts, all within service
    /// hours, sorted by start time.
    pub fn generate(&self) -> ContactTrace {
        let mut builder = ContactTrace::builder();
        self.generate_into(&mut builder);
        builder.build()
    }

    /// Generates the trace directly into `sink` — e.g. a
    /// [`ShardWriter`](crate::shard::ShardWriter) — without ever holding the
    /// full contact list in memory. The contact sequence (and RNG draw
    /// order) is identical to [`DieselNetConfig::generate`], emitted in
    /// generation order rather than sorted order.
    ///
    /// Candidate pairs come from a route-indexed sweep: for each bus only
    /// the buses on its own route and on the handful of crossing routes
    /// (ring neighbours plus the hub pair) are enumerated, so the cost is
    /// O(positive-rate pairs), not O(buses²). With many routes (city-scale
    /// configurations keep routes proportional to buses) that is
    /// O(contacts). RNG draws happen only for positive-rate pairs, in
    /// ascending `(a, b)` order — exactly the draws the all-pairs loop
    /// makes — so the output is byte-identical to
    /// [`DieselNetConfig::generate_into_all_pairs`].
    pub fn generate_into<S: ContactSink + ?Sized>(&self, sink: &mut S) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xD1E5_E1DE);
        let window_secs = (self.service_end_hour - self.service_start_hour) * 3_600;
        let routes = self.routes;
        let hub = routes / 2;

        for a in 0..self.buses {
            let ra = a % routes;
            // Partner routes with a positive meeting rate, deduped. At most
            // four: the bus's own route, the two ring neighbours, and the
            // hub partner when `ra` is an endpoint of the hub pair.
            let mut partner_routes = [0u32; 4];
            let mut partner_count = 0;
            let mut push_route = |r: u32| {
                if !partner_routes[..partner_count].contains(&r) {
                    partner_routes[partner_count] = r;
                    partner_count += 1;
                }
            };
            if self.same_route_rate_per_day > 0.0 {
                push_route(ra);
            }
            if self.crossing_route_rate_per_day > 0.0 && routes > 1 {
                let up = (ra + 1) % routes;
                let down = (ra + routes - 1) % routes;
                if up != ra {
                    push_route(up);
                }
                if down != ra {
                    push_route(down);
                }
                if ra == 0 && hub != 0 {
                    push_route(hub);
                } else if ra == hub && hub != 0 {
                    push_route(0);
                }
            }
            let partner_routes = &partner_routes[..partner_count];

            // Ascending merge over the partner buckets (each bucket is the
            // arithmetic sequence rb, rb+routes, …): heads[i] is the next
            // not-yet-visited bus > a on partner_routes[i]. Visiting
            // partners in ascending b order reproduces the all-pairs RNG
            // draw order exactly.
            let mut heads = [u32::MAX; 4];
            for (i, &rb) in partner_routes.iter().enumerate() {
                let k = if a < rb { 0 } else { (a - rb) / routes + 1 };
                let first = rb as u64 + k as u64 * routes as u64;
                if first < self.buses as u64 {
                    heads[i] = first as u32;
                }
            }
            loop {
                let mut min_i = usize::MAX;
                let mut b = u32::MAX;
                for (i, &head) in heads[..partner_count].iter().enumerate() {
                    if head < b {
                        b = head;
                        min_i = i;
                    }
                }
                if min_i == usize::MAX {
                    break;
                }
                heads[min_i] = match b.checked_add(routes) {
                    Some(next) if next < self.buses => next,
                    _ => u32::MAX,
                };
                let rate = if b % routes == ra {
                    self.same_route_rate_per_day
                } else {
                    self.crossing_route_rate_per_day
                };
                self.emit_pair(&mut rng, a, b, rate, window_secs, sink);
            }
        }
    }

    /// The original all-pairs enumeration, retained as the equivalence
    /// oracle for the indexed sweep in [`DieselNetConfig::generate_into`].
    /// O(buses²) — test use only.
    #[doc(hidden)]
    pub fn generate_into_all_pairs<S: ContactSink + ?Sized>(&self, sink: &mut S) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xD1E5_E1DE);
        let route_of: Vec<u32> = (0..self.buses).map(|b| b % self.routes).collect();

        // Routes cross if adjacent in a ring layout (route r crosses r±1) or
        // share the downtown hub (routes 0 and routes/2).
        let crosses = |ra: u32, rb: u32| -> bool {
            if ra == rb {
                return true;
            }
            let d = ra.abs_diff(rb);
            d == 1 || d == self.routes - 1 || (ra.min(rb) == 0 && ra.max(rb) == self.routes / 2)
        };

        let window_secs = (self.service_end_hour - self.service_start_hour) * 3_600;

        for a in 0..self.buses {
            for b in (a + 1)..self.buses {
                let (ra, rb) = (route_of[a as usize], route_of[b as usize]);
                let rate = if ra == rb {
                    self.same_route_rate_per_day
                } else if crosses(ra, rb) {
                    self.crossing_route_rate_per_day
                } else {
                    0.0
                };
                if rate <= 0.0 {
                    continue;
                }
                self.emit_pair(&mut rng, a, b, rate, window_secs, sink);
            }
        }
    }

    /// Draws and emits all meetings of one positive-rate pair over the
    /// configured days. Shared by the indexed sweep and the all-pairs
    /// oracle so both make the identical RNG draws per pair.
    fn emit_pair<S: ContactSink + ?Sized>(
        &self,
        rng: &mut StdRng,
        a: u32,
        b: u32,
        rate: f64,
        window_secs: u64,
        sink: &mut S,
    ) {
        if rate <= 0.0 {
            return;
        }
        for day in 0..self.days {
            let meetings = sample_poisson(rng, rate);
            for _ in 0..meetings {
                let offset = rng.gen_range(0..window_secs.max(1));
                let start = day * SECONDS_PER_DAY + self.service_start_hour * 3_600 + offset;
                let dur = sample_exponential(rng, self.mean_contact_secs)
                    .round()
                    .max(5.0) as u64;
                let end = (start + dur).min(day * SECONDS_PER_DAY + self.service_end_hour * 3_600);
                if end <= start {
                    continue;
                }
                let contact = Contact::pairwise(
                    NodeId::new(a),
                    NodeId::new(b),
                    SimTime::from_secs(start),
                    SimTime::from_secs(end),
                )
                .expect("generator produces valid contacts");
                sink.push_contact(contact);
            }
        }
    }

    /// The paper's frequent-contact window for this trace: three days.
    pub fn frequent_contact_window(&self) -> SimDuration {
        crate::stats::DIESELNET_FREQUENT_EVERY
    }
}

/// Samples a Poisson random variate with the given mean via inversion
/// (Knuth's algorithm); fine for the small rates used here.
pub(crate) fn sample_poisson<R: Rng>(rng: &mut R, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            // Defensive cap; unreachable for the rates this crate uses.
            return k;
        }
    }
}

/// Samples an exponential variate with the given mean.
pub(crate) fn sample_exponential<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::ContactKind;
    use crate::stats::TraceStats;

    #[test]
    fn deterministic_for_seed() {
        let a = DieselNetConfig::new(10, 3).seed(7).generate();
        let b = DieselNetConfig::new(10, 3).seed(7).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn generate_into_builder_matches_generate() {
        let cfg = DieselNetConfig::new(12, 4).seed(7);
        let mut builder = ContactTrace::builder();
        cfg.generate_into(&mut builder);
        assert_eq!(builder.build(), cfg.generate());
    }

    #[test]
    fn indexed_sweep_matches_all_pairs_oracle() {
        // Route counts that stress the candidate-set edges: a single route,
        // the routes=2 hub/adjacency overlap, odd counts, more routes than
        // buses, and the default 8.
        for routes in [1u32, 2, 3, 5, 8, 40] {
            for (same, crossing) in [(2.0, 0.35), (0.0, 0.35), (2.0, 0.0), (0.0, 0.0)] {
                let cfg = DieselNetConfig::new(33, 3)
                    .seed(21)
                    .routes(routes)
                    .same_route_rate_per_day(same)
                    .crossing_route_rate_per_day(crossing);
                let mut indexed = ContactTrace::builder();
                cfg.generate_into(&mut indexed);
                let mut all_pairs = ContactTrace::builder();
                cfg.generate_into_all_pairs(&mut all_pairs);
                assert_eq!(
                    indexed.build(),
                    all_pairs.build(),
                    "routes={routes} same={same} crossing={crossing}"
                );
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = DieselNetConfig::new(10, 3).seed(1).generate();
        let b = DieselNetConfig::new(10, 3).seed(2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn all_contacts_pairwise() {
        let t = DieselNetConfig::new(20, 5).seed(3).generate();
        assert!(!t.is_empty());
        assert!(t.iter().all(|c| c.kind() == ContactKind::Pairwise));
    }

    #[test]
    fn contacts_respect_service_hours() {
        let cfg = DieselNetConfig::new(15, 4).seed(9).service_hours(6, 22);
        let t = cfg.generate();
        for c in t.iter() {
            let sod = c.start().second_of_day();
            assert!(
                sod >= 6 * 3600,
                "contact starts before service at {}",
                c.start()
            );
            assert!(
                sod < 22 * 3600,
                "contact starts after service at {}",
                c.start()
            );
            assert!(c.end().second_of_day() <= 22 * 3600 || c.end().second_of_day() == 0);
        }
    }

    #[test]
    fn contacts_are_short() {
        let t = DieselNetConfig::new(20, 5).seed(5).generate();
        let stats = TraceStats::compute(&t);
        let mean = stats.mean_contact_duration_secs().unwrap();
        assert!(
            mean > 10.0 && mean < 200.0,
            "mean duration {mean} out of range"
        );
    }

    #[test]
    fn same_route_pairs_meet_more() {
        // Buses 0 and 8 share route 0 (with 8 routes and `b % routes`);
        // buses 0 and 4 are on crossing-but-different routes (0 and 4 = hub).
        let t = DieselNetConfig::new(16, 30).seed(11).generate();
        let stats = TraceStats::compute(&t);
        let same = stats.pair_contact_count(NodeId::new(0), NodeId::new(8));
        let cross = stats.pair_contact_count(NodeId::new(0), NodeId::new(4));
        assert!(
            same > cross,
            "same-route pair ({same}) should out-meet crossing pair ({cross})"
        );
    }

    #[test]
    fn unrelated_routes_never_meet() {
        // Routes 2 and 5 neither adjacent nor the hub pair (0, 4) with 8 routes.
        let t = DieselNetConfig::new(16, 30).seed(13).generate();
        let stats = TraceStats::compute(&t);
        assert_eq!(stats.pair_contact_count(NodeId::new(2), NodeId::new(5)), 0);
    }

    #[test]
    fn frequent_contacts_exist_with_default_rates() {
        let cfg = DieselNetConfig::new(16, 9).seed(17);
        let t = cfg.generate();
        let stats = TraceStats::compute(&t);
        let any_frequent = t.nodes().iter().any(|&n| {
            !stats
                .frequent_contacts(n, cfg.frequent_contact_window())
                .is_empty()
        });
        assert!(
            any_frequent,
            "expected at least one frequent pair over 9 days"
        );
    }

    #[test]
    fn zero_rate_yields_no_cross_contacts() {
        let t = DieselNetConfig::new(16, 5)
            .seed(19)
            .crossing_route_rate_per_day(0.0)
            .same_route_rate_per_day(0.0)
            .generate();
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid service window")]
    fn rejects_bad_service_window() {
        let _ = DieselNetConfig::new(5, 1).service_hours(10, 10);
    }

    #[test]
    fn poisson_mean_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| sample_poisson(&mut rng, 2.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "poisson mean {mean}");
    }

    #[test]
    fn exponential_mean_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| sample_exponential(&mut rng, 45.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 45.0).abs() < 3.0, "exponential mean {mean}");
    }
}
