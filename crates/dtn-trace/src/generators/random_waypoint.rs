//! Random-waypoint mobility trace generator.
//!
//! A generic pedestrian-mobility generator used by the ablation experiments:
//! nodes move in a square arena under the random waypoint model, and a
//! contact exists while two nodes are within radio range. Unlike the
//! structured [`dieselnet`](super::dieselnet) and [`nus`](super::nus)
//! generators this produces organic contact dynamics, including the
//! "majority of connections are short" property the paper's §V leans on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::contact::Contact;
use crate::node::NodeId;
use crate::time::SimTime;
use crate::trace::ContactTrace;

/// Configuration for the random-waypoint generator.
///
/// # Example
///
/// ```
/// use dtn_trace::generators::RandomWaypointConfig;
///
/// let trace = RandomWaypointConfig::new(10, 3_600).seed(7).generate();
/// assert!(trace.iter().all(|c| c.size() == 2));
/// ```
#[derive(Debug, Clone)]
pub struct RandomWaypointConfig {
    nodes: u32,
    duration_secs: u64,
    arena_m: f64,
    range_m: f64,
    min_speed_mps: f64,
    max_speed_mps: f64,
    pause_secs: u64,
    step_secs: u64,
    seed: u64,
}

impl RandomWaypointConfig {
    /// Creates a configuration for `nodes` nodes over `duration_secs`
    /// seconds. Defaults: 1 km × 1 km arena, 50 m radio range, pedestrian
    /// speeds 0.5–2 m/s, 60 s pauses, 10 s sampling step.
    pub fn new(nodes: u32, duration_secs: u64) -> Self {
        RandomWaypointConfig {
            nodes,
            duration_secs,
            arena_m: 1_000.0,
            range_m: 50.0,
            min_speed_mps: 0.5,
            max_speed_mps: 2.0,
            pause_secs: 60,
            step_secs: 10,
            seed: 0,
        }
    }

    /// Sets the RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the square arena side length in meters (default 1000).
    ///
    /// # Panics
    ///
    /// Panics if `side <= 0`.
    pub fn arena_m(mut self, side: f64) -> Self {
        assert!(side > 0.0, "arena side must be positive");
        self.arena_m = side;
        self
    }

    /// Sets the radio range in meters (default 50).
    ///
    /// # Panics
    ///
    /// Panics if `range <= 0`.
    pub fn range_m(mut self, range: f64) -> Self {
        assert!(range > 0.0, "radio range must be positive");
        self.range_m = range;
        self
    }

    /// Sets the sampling step in seconds (default 10). Contacts shorter than
    /// one step may be missed — smaller steps are more accurate but slower.
    pub fn step_secs(mut self, step: u64) -> Self {
        self.step_secs = step.max(1);
        self
    }

    /// Sets the speed range in meters/second (default 0.5–2.0).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or non-positive.
    pub fn speed_mps(mut self, min: f64, max: f64) -> Self {
        assert!(min > 0.0 && max >= min, "invalid speed range");
        self.min_speed_mps = min;
        self.max_speed_mps = max;
        self
    }

    /// Generates the pair-wise contact trace by sampling node positions.
    pub fn generate(&self) -> ContactTrace {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x4A1D_0117);
        let n = self.nodes as usize;

        #[derive(Clone)]
        struct Walker {
            x: f64,
            y: f64,
            tx: f64,
            ty: f64,
            speed: f64,
            pause_left: f64,
        }

        let mut walkers: Vec<Walker> = (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0..self.arena_m);
                let y = rng.gen_range(0.0..self.arena_m);
                Walker {
                    x,
                    y,
                    tx: rng.gen_range(0.0..self.arena_m),
                    ty: rng.gen_range(0.0..self.arena_m),
                    speed: rng.gen_range(self.min_speed_mps..=self.max_speed_mps),
                    pause_left: 0.0,
                }
            })
            .collect();

        // open_since[i][j] = Some(start) while pair is currently in range.
        let mut open_since: Vec<Vec<Option<u64>>> = vec![vec![None; n]; n];
        let mut builder = ContactTrace::builder();
        let range_sq = self.range_m * self.range_m;

        let mut t = 0u64;
        while t <= self.duration_secs {
            // Close or open contacts based on current positions.
            #[allow(clippy::needless_range_loop)] // paired index access
            for i in 0..n {
                for j in (i + 1)..n {
                    let dx = walkers[i].x - walkers[j].x;
                    let dy = walkers[i].y - walkers[j].y;
                    let in_range = dx * dx + dy * dy <= range_sq;
                    match (in_range, open_since[i][j]) {
                        (true, None) => open_since[i][j] = Some(t),
                        (false, Some(start)) => {
                            push_pair(&mut builder, i, j, start, t);
                            open_since[i][j] = None;
                        }
                        _ => {}
                    }
                }
            }
            // Advance walkers.
            let dt = self.step_secs as f64;
            for w in walkers.iter_mut() {
                if w.pause_left > 0.0 {
                    w.pause_left -= dt;
                    continue;
                }
                let dx = w.tx - w.x;
                let dy = w.ty - w.y;
                let dist = (dx * dx + dy * dy).sqrt();
                let step = w.speed * dt;
                if dist <= step {
                    w.x = w.tx;
                    w.y = w.ty;
                    w.pause_left = self.pause_secs as f64;
                    w.tx = rng.gen_range(0.0..self.arena_m);
                    w.ty = rng.gen_range(0.0..self.arena_m);
                    w.speed = rng.gen_range(self.min_speed_mps..=self.max_speed_mps);
                } else {
                    w.x += dx / dist * step;
                    w.y += dy / dist * step;
                }
            }
            t += self.step_secs;
        }
        // Close any still-open contacts at the end of the run.
        #[allow(clippy::needless_range_loop)] // paired index access
        for i in 0..n {
            for j in (i + 1)..n {
                if let Some(start) = open_since[i][j] {
                    push_pair(
                        &mut builder,
                        i,
                        j,
                        start,
                        self.duration_secs + self.step_secs,
                    );
                }
            }
        }
        builder.build()
    }
}

fn push_pair(builder: &mut crate::trace::TraceBuilder, i: usize, j: usize, start: u64, end: u64) {
    if end <= start {
        return;
    }
    let contact = Contact::pairwise(
        NodeId::new(i as u32),
        NodeId::new(j as u32),
        SimTime::from_secs(start),
        SimTime::from_secs(end),
    )
    .expect("generator produces valid contacts");
    builder.push(contact);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = RandomWaypointConfig::new(8, 1_800).seed(3).generate();
        let b = RandomWaypointConfig::new(8, 1_800).seed(3).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn denser_arena_more_contacts() {
        let sparse = RandomWaypointConfig::new(10, 3_600)
            .seed(1)
            .arena_m(2_000.0)
            .generate();
        let dense = RandomWaypointConfig::new(10, 3_600)
            .seed(1)
            .arena_m(300.0)
            .generate();
        assert!(
            dense.len() > sparse.len(),
            "dense {} vs sparse {}",
            dense.len(),
            sparse.len()
        );
    }

    #[test]
    fn contacts_are_pairwise_and_in_horizon() {
        let cfg = RandomWaypointConfig::new(6, 1_200).seed(2);
        let t = cfg.generate();
        for c in t.iter() {
            assert_eq!(c.size(), 2);
            assert!(c.end().as_secs() <= 1_200 + 10);
        }
    }

    #[test]
    fn wider_range_more_contact_time() {
        let narrow = RandomWaypointConfig::new(10, 3_600)
            .seed(4)
            .range_m(20.0)
            .generate();
        let wide = RandomWaypointConfig::new(10, 3_600)
            .seed(4)
            .range_m(150.0)
            .generate();
        let total = |t: &ContactTrace| -> u64 { t.iter().map(|c| c.duration().as_secs()).sum() };
        assert!(total(&wide) > total(&narrow));
    }

    #[test]
    #[should_panic(expected = "radio range")]
    fn rejects_bad_range() {
        let _ = RandomWaypointConfig::new(2, 10).range_m(0.0);
    }
}
