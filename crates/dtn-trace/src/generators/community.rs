//! Community-based mobility trace generator.
//!
//! A caveman-style model widely used in the DTN literature (e.g. the social
//! pocket-switched-network line of work the paper cites as \[6\]): nodes
//! belong to *home communities* that gather daily; a fraction of nodes are
//! *travelers* who sometimes visit another community's gathering. Contacts
//! within a gathering are cliques. The result is a clustered contact graph
//! with sparse inter-community bridges — the regime where store-carry-forward
//! relaying (and MBT's query distribution to frequent contacts) matters most.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::contact::Contact;
use crate::node::NodeId;
use crate::time::{SimDuration, SimTime, SECONDS_PER_DAY};
use crate::trace::{ContactSink, ContactTrace};

/// Configuration for the community generator.
///
/// # Example
///
/// ```
/// use dtn_trace::generators::CommunityConfig;
///
/// let trace = CommunityConfig::new(40, 10).communities(4).seed(5).generate();
/// assert!(!trace.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct CommunityConfig {
    nodes: u32,
    days: u64,
    communities: u32,
    traveler_fraction: f64,
    travel_probability: f64,
    gathering_secs: u64,
    gatherings_per_day: u32,
    attendance: f64,
    seed: u64,
}

impl CommunityConfig {
    /// Creates a configuration: `nodes` nodes over `days` days, defaulting
    /// to 4 communities, 20 % travelers who travel 30 % of the time, two
    /// 1-hour gatherings per day, 90 % attendance.
    pub fn new(nodes: u32, days: u64) -> Self {
        CommunityConfig {
            nodes,
            days,
            communities: 4,
            traveler_fraction: 0.2,
            travel_probability: 0.3,
            gathering_secs: 3_600,
            gatherings_per_day: 2,
            attendance: 0.9,
            seed: 0,
        }
    }

    /// Sets the RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of communities (default 4).
    ///
    /// # Panics
    ///
    /// Panics if `communities == 0`.
    pub fn communities(mut self, communities: u32) -> Self {
        assert!(communities > 0, "at least one community is required");
        self.communities = communities;
        self
    }

    /// Sets the fraction of nodes that are travelers (default 0.2).
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` ∈ [0, 1].
    pub fn traveler_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        self.traveler_fraction = fraction;
        self
    }

    /// Sets the per-gathering probability that a traveler visits a foreign
    /// community (default 0.3).
    ///
    /// # Panics
    ///
    /// Panics unless `p` ∈ [0, 1].
    pub fn travel_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.travel_probability = p;
        self
    }

    /// Sets gatherings per community per day (default 2).
    pub fn gatherings_per_day(mut self, n: u32) -> Self {
        self.gatherings_per_day = n.max(1);
        self
    }

    /// Sets the attendance probability (default 0.9).
    ///
    /// # Panics
    ///
    /// Panics unless `p` ∈ [0, 1].
    pub fn attendance(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "attendance must be in [0, 1]");
        self.attendance = p;
        self
    }

    /// The home community of each node under this configuration.
    pub fn home_of(&self, node: NodeId) -> u32 {
        node.raw() % self.communities
    }

    /// Generates the clique contact trace.
    pub fn generate(&self) -> ContactTrace {
        let mut builder = ContactTrace::builder();
        self.generate_into(&mut builder);
        builder.build()
    }

    /// Generates the trace directly into `sink` — e.g. a
    /// [`ShardWriter`](crate::shard::ShardWriter) — without holding the full
    /// contact list in memory. The contact sequence (and RNG draw order) is
    /// identical to [`CommunityConfig::generate`], emitted in generation
    /// order rather than sorted order.
    ///
    /// Attendance is bucketed per community (never node × node) and the
    /// per-slot venue buckets are reused across slots, so steady-state cost
    /// is O(attendance draws + clique members). Output is byte-identical to
    /// [`CommunityConfig::generate_into_all_pairs`].
    pub fn generate_into<S: ContactSink + ?Sized>(&self, sink: &mut S) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xC033_7411);
        // Travelers are the lowest-indexed members of each community slot.
        let traveler_count = ((self.nodes as f64) * self.traveler_fraction).round() as u32;
        let is_traveler = |n: u32| n < traveler_count;

        let slot_gap = (12 * 3_600) / u64::from(self.gatherings_per_day).max(1);
        let mut attendees: Vec<Vec<NodeId>> = vec![Vec::new(); self.communities as usize];
        for day in 0..self.days {
            for slot in 0..self.gatherings_per_day {
                let start_secs = day * SECONDS_PER_DAY + 8 * 3_600 + u64::from(slot) * slot_gap;
                // Where does each node gather this slot?
                for bucket in &mut attendees {
                    bucket.clear();
                }
                for n in 0..self.nodes {
                    if self.attendance < 1.0 && rng.gen::<f64>() >= self.attendance {
                        continue;
                    }
                    let home = n % self.communities;
                    let venue = if is_traveler(n)
                        && self.communities > 1
                        && rng.gen::<f64>() < self.travel_probability
                    {
                        // Visit a uniformly random foreign community.
                        let mut v = rng.gen_range(0..self.communities - 1);
                        if v >= home {
                            v += 1;
                        }
                        v
                    } else {
                        home
                    };
                    attendees[venue as usize].push(NodeId::new(n));
                }
                for members in &attendees {
                    if members.len() < 2 {
                        continue;
                    }
                    let contact = Contact::clique(
                        members.clone(),
                        SimTime::from_secs(start_secs),
                        SimTime::from_secs(start_secs + self.gathering_secs),
                    )
                    .expect("generator produces valid cliques");
                    sink.push_contact(contact);
                }
            }
        }
    }

    /// The original per-slot fresh-allocation loop, retained as the
    /// equivalence oracle for the bucket-reusing path in
    /// [`CommunityConfig::generate_into`]. Test use only.
    #[doc(hidden)]
    pub fn generate_into_all_pairs<S: ContactSink + ?Sized>(&self, sink: &mut S) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xC033_7411);
        let traveler_count = ((self.nodes as f64) * self.traveler_fraction).round() as u32;
        let is_traveler = |n: u32| n < traveler_count;

        let slot_gap = (12 * 3_600) / u64::from(self.gatherings_per_day).max(1);
        for day in 0..self.days {
            for slot in 0..self.gatherings_per_day {
                let start_secs = day * SECONDS_PER_DAY + 8 * 3_600 + u64::from(slot) * slot_gap;
                let mut attendees: Vec<Vec<NodeId>> = vec![Vec::new(); self.communities as usize];
                for n in 0..self.nodes {
                    if self.attendance < 1.0 && rng.gen::<f64>() >= self.attendance {
                        continue;
                    }
                    let home = n % self.communities;
                    let venue = if is_traveler(n)
                        && self.communities > 1
                        && rng.gen::<f64>() < self.travel_probability
                    {
                        let mut v = rng.gen_range(0..self.communities - 1);
                        if v >= home {
                            v += 1;
                        }
                        v
                    } else {
                        home
                    };
                    attendees[venue as usize].push(NodeId::new(n));
                }
                for members in attendees {
                    if members.len() < 2 {
                        continue;
                    }
                    let contact = Contact::clique(
                        members,
                        SimTime::from_secs(start_secs),
                        SimTime::from_secs(start_secs + self.gathering_secs),
                    )
                    .expect("generator produces valid cliques");
                    sink.push_contact(contact);
                }
            }
        }
    }

    /// A reasonable frequent-contact window for this model: one day.
    pub fn frequent_contact_window(&self) -> SimDuration {
        SimDuration::from_days(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn deterministic_for_seed() {
        let a = CommunityConfig::new(30, 5).seed(3).generate();
        let b = CommunityConfig::new(30, 5).seed(3).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn generate_into_matches_all_pairs_oracle() {
        for (attendance, travelers) in [(0.9, 0.2), (1.0, 0.0), (0.5, 0.5)] {
            let cfg = CommunityConfig::new(37, 6)
                .seed(31)
                .communities(5)
                .attendance(attendance)
                .traveler_fraction(travelers);
            let mut streamed = ContactTrace::builder();
            cfg.generate_into(&mut streamed);
            let mut oracle = ContactTrace::builder();
            cfg.generate_into_all_pairs(&mut oracle);
            assert_eq!(
                streamed.build(),
                oracle.build(),
                "attendance={attendance} travelers={travelers}"
            );
        }
    }

    #[test]
    fn produces_cliques_every_day() {
        let t = CommunityConfig::new(40, 6).seed(1).generate();
        assert!(!t.is_empty());
        let days: std::collections::BTreeSet<u64> = t.iter().map(|c| c.start().day()).collect();
        assert_eq!(days.len(), 6, "gatherings every day");
        assert!(t.iter().any(|c| c.size() > 2));
    }

    #[test]
    fn home_community_members_meet_often() {
        let cfg = CommunityConfig::new(40, 10).seed(2).communities(4);
        let t = cfg.generate();
        let stats = TraceStats::compute(&t);
        // Nodes 4 and 8 share home community 0 (n % 4); nodes 5 and 6 do not.
        // (Use non-travelers: with 20% travelers, nodes 0..8 are travelers.)
        let same = stats.pair_contact_count(NodeId::new(12), NodeId::new(16));
        let diff = stats.pair_contact_count(NodeId::new(13), NodeId::new(16));
        assert!(same > diff, "same-community {same} vs cross {diff}");
    }

    #[test]
    fn no_travelers_means_no_bridges() {
        let cfg = CommunityConfig::new(40, 5)
            .seed(3)
            .communities(4)
            .traveler_fraction(0.0)
            .attendance(1.0);
        let t = cfg.generate();
        let stats = TraceStats::compute(&t);
        // Any cross-community pair never meets.
        assert_eq!(stats.pair_contact_count(NodeId::new(0), NodeId::new(1)), 0);
        assert!(stats.pair_contact_count(NodeId::new(0), NodeId::new(4)) > 0);
    }

    #[test]
    fn travelers_create_bridges() {
        let cfg = CommunityConfig::new(40, 20)
            .seed(4)
            .communities(2)
            .traveler_fraction(0.5)
            .travel_probability(0.5)
            .attendance(1.0);
        let t = cfg.generate();
        let stats = TraceStats::compute(&t);
        // Node 0 (traveler, home 0) should eventually meet node 1 (home 1).
        assert!(stats.pair_contact_count(NodeId::new(0), NodeId::new(1)) > 0);
    }

    #[test]
    fn gatherings_do_not_overlap_per_node() {
        let t = CommunityConfig::new(30, 4).seed(5).generate();
        let mut by_start: std::collections::BTreeMap<u64, Vec<&Contact>> =
            std::collections::BTreeMap::new();
        for c in t.iter() {
            by_start.entry(c.start().as_secs()).or_default().push(c);
        }
        for group in by_start.values() {
            for (i, a) in group.iter().enumerate() {
                for b in &group[i + 1..] {
                    for p in a.participants() {
                        assert!(!b.involves(*p), "node {p} in two venues at once");
                    }
                }
            }
        }
    }

    #[test]
    fn zero_attendance_is_empty() {
        let t = CommunityConfig::new(20, 3)
            .seed(6)
            .attendance(0.0)
            .generate();
        assert!(t.is_empty());
    }

    #[test]
    fn home_of_is_modular() {
        let cfg = CommunityConfig::new(10, 1).communities(3);
        assert_eq!(cfg.home_of(NodeId::new(0)), 0);
        assert_eq!(cfg.home_of(NodeId::new(4)), 1);
        assert_eq!(cfg.home_of(NodeId::new(8)), 2);
    }

    #[test]
    #[should_panic(expected = "at least one community")]
    fn rejects_zero_communities() {
        let _ = CommunityConfig::new(10, 1).communities(0);
    }
}
