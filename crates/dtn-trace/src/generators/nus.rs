//! NUS-style student contact trace generator.
//!
//! The NUS student contact trace (Srinivasan et al., MobiCom'06) is itself
//! synthetic: it is *derived from campus class schedules*, under the model
//! that two students are in contact if and only if they sit in the same
//! classroom session. The MBT paper relies on two structural properties:
//!
//! - contacts are **cliques** — everyone in a classroom can receive everyone
//!   else's broadcasts, and
//! - cliques **do not overlap** — a student attends at most one session at a
//!   time, so the paper's non-interfering-clique assumption holds.
//!
//! This generator rebuilds the trace from the same construction: a weekly
//! timetable of course sessions, student enrollment, and an *attendance rate*
//! (the probability a student actually shows up to an enrolled session),
//! which is the x-axis of the paper's Fig 3(f).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::contact::Contact;
use crate::node::NodeId;
use crate::time::{SimDuration, SimTime, SECONDS_PER_DAY};
use crate::trace::{ContactSink, ContactTrace};

/// Configuration for the NUS-style campus generator.
///
/// # Example
///
/// ```
/// use dtn_trace::generators::NusConfig;
///
/// let trace = NusConfig::new(60, 14).seed(1).attendance_rate(0.9).generate();
/// // Classroom contacts are cliques of enrolled students who attended.
/// assert!(trace.iter().all(|c| c.size() >= 2));
/// ```
#[derive(Debug, Clone)]
pub struct NusConfig {
    students: u32,
    days: u64,
    courses: u32,
    courses_per_student: u32,
    sessions_per_course_per_week: u32,
    session_secs: u64,
    attendance_rate: f64,
    weekends_off: bool,
    seed: u64,
}

impl NusConfig {
    /// Creates a configuration for `students` students over `days` days with
    /// defaults shaped like a teaching timetable: 1-in-4 student/course
    /// ratio, 5 courses per student, two 2-hour sessions per course per week,
    /// weekdays only, full attendance.
    pub fn new(students: u32, days: u64) -> Self {
        NusConfig {
            students,
            days,
            courses: (students / 4).max(1),
            courses_per_student: 5,
            sessions_per_course_per_week: 2,
            session_secs: 2 * 3_600,
            attendance_rate: 1.0,
            weekends_off: true,
            seed: 0,
        }
    }

    /// Sets the RNG seed (default 0). Same seed ⇒ same timetable *and* same
    /// attendance draws.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of distinct courses (default `students / 4`).
    ///
    /// # Panics
    ///
    /// Panics if `courses == 0`.
    pub fn courses(mut self, courses: u32) -> Self {
        assert!(courses > 0, "at least one course is required");
        self.courses = courses;
        self
    }

    /// Sets how many courses each student enrolls in (default 5, clamped to
    /// the number of courses).
    pub fn courses_per_student(mut self, k: u32) -> Self {
        self.courses_per_student = k.max(1);
        self
    }

    /// Sets weekly sessions per course (default 2).
    pub fn sessions_per_course_per_week(mut self, k: u32) -> Self {
        self.sessions_per_course_per_week = k.max(1);
        self
    }

    /// Sets the session length in seconds (default 2 hours).
    pub fn session_secs(mut self, secs: u64) -> Self {
        self.session_secs = secs.max(60);
        self
    }

    /// Sets the probability that an enrolled student attends a given session
    /// (default 1.0). This is the Fig 3(f) knob.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate <= 1.0`.
    pub fn attendance_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "attendance rate must be in [0, 1]"
        );
        self.attendance_rate = rate;
        self
    }

    /// Whether Saturday/Sunday have no sessions (default true).
    pub fn weekends_off(mut self, off: bool) -> Self {
        self.weekends_off = off;
        self
    }

    /// Number of students.
    pub fn student_count(&self) -> u32 {
        self.students
    }

    /// Number of simulated days.
    pub fn day_count(&self) -> u64 {
        self.days
    }

    /// Generates the clique contact trace.
    ///
    /// Sessions are scheduled on a 9:00–17:00 hour grid such that no student
    /// is enrolled in two simultaneous sessions (sessions of the courses a
    /// student takes are placed in distinct slots where possible; conflicts
    /// are resolved by dropping attendance of the later course, preserving
    /// the non-overlapping-clique property).
    pub fn generate(&self) -> ContactTrace {
        let mut builder = ContactTrace::builder();
        self.generate_into(&mut builder);
        builder.build()
    }

    /// Generates the trace directly into `sink` — e.g. a
    /// [`ShardWriter`](crate::shard::ShardWriter) — without holding the full
    /// contact list in memory. The contact sequence (and RNG draw order) is
    /// identical to [`NusConfig::generate`], emitted in generation order
    /// rather than sorted order.
    ///
    /// Enumeration is roster-indexed (per-course buckets, never student ×
    /// student) and the per-day occupancy table is one flat day-stamped
    /// array allocated once, so the per-day cost is O(sessions + roster
    /// sizes) — no O(students) allocation churn per simulated day. Output
    /// is byte-identical to [`NusConfig::generate_into_all_pairs`].
    pub fn generate_into<S: ContactSink + ?Sized>(&self, sink: &mut S) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x0005_CAFE);
        let (roster, timetable, slots_per_day) = self.build_schedule(&mut rng);

        // Flat (student, slot) occupancy, stamped with `day + 1`: a cell is
        // busy today iff its stamp equals today's marker, so the table never
        // needs clearing between days.
        let mut busy: Vec<u64> = vec![0; self.students as usize * slots_per_day as usize];
        for day in 0..self.days {
            let weekday = (day % 7) as u32;
            if self.weekends_off && weekday >= 5 {
                continue;
            }
            let marker = day + 1;
            for (course, cells) in timetable.iter().enumerate() {
                for &cell in cells {
                    let cell_day = cell / slots_per_day;
                    let slot = cell % slots_per_day;
                    if cell_day != weekday {
                        continue;
                    }
                    let start_secs =
                        day * SECONDS_PER_DAY + 9 * 3_600 + slot as u64 * self.session_secs;
                    let end_secs = start_secs + self.session_secs;
                    let mut attendees: Vec<NodeId> = Vec::new();
                    for &student in &roster[course] {
                        if busy[student.index() * slots_per_day as usize + slot as usize] == marker
                        {
                            continue;
                        }
                        if self.attendance_rate >= 1.0 || rng.gen::<f64>() < self.attendance_rate {
                            attendees.push(student);
                        }
                    }
                    if attendees.len() < 2 {
                        continue;
                    }
                    for &student in &attendees {
                        busy[student.index() * slots_per_day as usize + slot as usize] = marker;
                    }
                    let contact = Contact::clique(
                        attendees,
                        SimTime::from_secs(start_secs),
                        SimTime::from_secs(end_secs),
                    )
                    .expect("generator produces valid cliques");
                    sink.push_contact(contact);
                }
            }
        }
    }

    /// The original emission loop with a fresh per-day `Vec<Vec<bool>>`
    /// occupancy table, retained as the equivalence oracle for the stamped
    /// flat table in [`NusConfig::generate_into`]. Test use only.
    #[doc(hidden)]
    pub fn generate_into_all_pairs<S: ContactSink + ?Sized>(&self, sink: &mut S) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x0005_CAFE);
        let (roster, timetable, slots_per_day) = self.build_schedule(&mut rng);

        for day in 0..self.days {
            let weekday = (day % 7) as u32;
            if self.weekends_off && weekday >= 5 {
                continue;
            }
            // Track which slot each student already occupies today so
            // overlapping enrollments never produce overlapping cliques.
            let mut busy: Vec<Vec<bool>> =
                vec![vec![false; slots_per_day as usize]; self.students as usize];
            for (course, cells) in timetable.iter().enumerate() {
                for &cell in cells {
                    let cell_day = cell / slots_per_day;
                    let slot = cell % slots_per_day;
                    if cell_day != weekday {
                        continue;
                    }
                    let start_secs =
                        day * SECONDS_PER_DAY + 9 * 3_600 + slot as u64 * self.session_secs;
                    let end_secs = start_secs + self.session_secs;
                    let mut attendees: Vec<NodeId> = Vec::new();
                    for &student in &roster[course] {
                        if busy[student.index()][slot as usize] {
                            continue;
                        }
                        if self.attendance_rate >= 1.0 || rng.gen::<f64>() < self.attendance_rate {
                            attendees.push(student);
                        }
                    }
                    if attendees.len() < 2 {
                        continue;
                    }
                    for &student in &attendees {
                        busy[student.index()][slot as usize] = true;
                    }
                    let contact = Contact::clique(
                        attendees,
                        SimTime::from_secs(start_secs),
                        SimTime::from_secs(end_secs),
                    )
                    .expect("generator produces valid cliques");
                    sink.push_contact(contact);
                }
            }
        }
    }

    /// Draws the enrollment and builds the course rosters and weekly
    /// timetable. Shared by the streaming path and the oracle so both
    /// consume the identical RNG prefix.
    #[allow(clippy::type_complexity)]
    fn build_schedule(&self, rng: &mut StdRng) -> (Vec<Vec<NodeId>>, Vec<Vec<u32>>, u32) {
        let courses_per_student = self.courses_per_student.min(self.courses);

        // Enrollment: each student picks distinct courses, weighted toward
        // low-numbered ("large intro") courses by sampling from a shuffled
        // deck with two copies of the first half.
        let mut enrollment: Vec<Vec<u32>> = Vec::with_capacity(self.students as usize);
        let mut deck: Vec<u32> = (0..self.courses).chain(0..self.courses / 2).collect();
        for _ in 0..self.students {
            deck.shuffle(rng);
            let mut picked: Vec<u32> = Vec::with_capacity(courses_per_student as usize);
            for &c in deck.iter() {
                if !picked.contains(&c) {
                    picked.push(c);
                    if picked.len() == courses_per_student as usize {
                        break;
                    }
                }
            }
            picked.sort_unstable();
            enrollment.push(picked);
        }

        // Timetable: assign each course session to a (weekday, hour-slot)
        // cell. 5 weekdays x 4 two-hour slots (9-11, 11-13, 13-15, 15-17).
        let slots_per_day = (8 * 3_600 / self.session_secs).max(1) as u32;
        let weekdays: u32 = if self.weekends_off { 5 } else { 7 };
        let total_cells = weekdays * slots_per_day;
        let mut timetable: Vec<Vec<u32>> = Vec::with_capacity(self.courses as usize);
        let mut next_cell = 0u32;
        for _ in 0..self.courses {
            let mut cells = Vec::with_capacity(self.sessions_per_course_per_week as usize);
            for _ in 0..self.sessions_per_course_per_week {
                cells.push(next_cell % total_cells);
                // A large odd stride spreads a course's sessions across the week
                // and staggers different courses.
                next_cell = next_cell.wrapping_add(7);
            }
            timetable.push(cells);
        }

        // Roster per course.
        let mut roster: Vec<Vec<NodeId>> = vec![Vec::new(); self.courses as usize];
        for (student, courses) in enrollment.iter().enumerate() {
            for &c in courses {
                roster[c as usize].push(NodeId::new(student as u32));
            }
        }
        (roster, timetable, slots_per_day)
    }

    /// The paper's frequent-contact window for this trace: one day.
    pub fn frequent_contact_window(&self) -> SimDuration {
        crate::stats::NUS_FREQUENT_EVERY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_for_seed() {
        let a = NusConfig::new(40, 7).seed(5).generate();
        let b = NusConfig::new(40, 7).seed(5).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn generate_into_builder_matches_generate() {
        let cfg = NusConfig::new(40, 7).seed(5).attendance_rate(0.8);
        let mut builder = ContactTrace::builder();
        cfg.generate_into(&mut builder);
        assert_eq!(builder.build(), cfg.generate());
    }

    #[test]
    fn stamped_occupancy_matches_all_pairs_oracle() {
        for attendance in [1.0, 0.8, 0.3] {
            for weekends in [true, false] {
                let cfg = NusConfig::new(45, 10)
                    .seed(23)
                    .attendance_rate(attendance)
                    .weekends_off(weekends);
                let mut streamed = ContactTrace::builder();
                cfg.generate_into(&mut streamed);
                let mut oracle = ContactTrace::builder();
                cfg.generate_into_all_pairs(&mut oracle);
                assert_eq!(
                    streamed.build(),
                    oracle.build(),
                    "attendance={attendance} weekends_off={weekends}"
                );
            }
        }
    }

    #[test]
    fn produces_cliques() {
        let t = NusConfig::new(60, 7).seed(1).generate();
        assert!(!t.is_empty());
        assert!(t.iter().any(|c| c.size() > 2), "expected classroom cliques");
    }

    #[test]
    fn cliques_never_overlap_per_student() {
        let t = NusConfig::new(80, 14).seed(2).generate();
        // For every pair of simultaneous contacts, participant sets are disjoint.
        let mut by_start: HashMap<u64, Vec<&Contact>> = HashMap::new();
        for c in t.iter() {
            by_start.entry(c.start().as_secs()).or_default().push(c);
        }
        for group in by_start.values() {
            for (i, a) in group.iter().enumerate() {
                for b in &group[i + 1..] {
                    for p in a.participants() {
                        assert!(!b.involves(*p), "student {p} in two simultaneous cliques");
                    }
                }
            }
        }
    }

    #[test]
    fn weekends_have_no_contacts() {
        let t = NusConfig::new(40, 14).seed(3).generate();
        for c in t.iter() {
            let weekday = c.start().day() % 7;
            assert!(weekday < 5, "contact on weekend day {weekday}");
        }
    }

    #[test]
    fn weekends_on_when_requested() {
        let t = NusConfig::new(40, 14)
            .seed(3)
            .weekends_off(false)
            .generate();
        let has_weekend = t.iter().any(|c| c.start().day() % 7 >= 5);
        assert!(has_weekend);
    }

    #[test]
    fn sessions_within_teaching_hours() {
        let t = NusConfig::new(40, 7).seed(4).generate();
        for c in t.iter() {
            let sod = c.start().second_of_day();
            assert!((9 * 3600..17 * 3600).contains(&sod));
        }
    }

    #[test]
    fn zero_attendance_yields_empty_trace() {
        let t = NusConfig::new(40, 7)
            .seed(5)
            .attendance_rate(0.0)
            .generate();
        assert!(t.is_empty());
    }

    #[test]
    fn lower_attendance_means_smaller_cliques() {
        let full = NusConfig::new(100, 7)
            .seed(6)
            .attendance_rate(1.0)
            .generate();
        let half = NusConfig::new(100, 7)
            .seed(6)
            .attendance_rate(0.5)
            .generate();
        let mean = |t: &ContactTrace| {
            t.iter().map(|c| c.size()).sum::<usize>() as f64 / t.len().max(1) as f64
        };
        assert!(mean(&half) < mean(&full));
    }

    #[test]
    fn students_meet_classmates_daily_ish() {
        let cfg = NusConfig::new(60, 14).seed(7);
        let t = cfg.generate();
        let stats = crate::stats::TraceStats::compute(&t);
        // With 5 courses x 2 sessions/week each, most students have some
        // recurring classmate; just require the mechanism produces contacts
        // on most weekdays.
        let days_with_contacts: std::collections::HashSet<u64> =
            t.iter().map(|c| c.start().day()).collect();
        assert!(days_with_contacts.len() >= 8, "got {days_with_contacts:?}");
        assert!(stats.contact_count() > 50);
    }

    #[test]
    #[should_panic(expected = "attendance rate")]
    fn rejects_bad_attendance() {
        let _ = NusConfig::new(10, 1).attendance_rate(1.5);
    }

    #[test]
    fn respects_course_count() {
        let t = NusConfig::new(30, 7)
            .seed(8)
            .courses(3)
            .courses_per_student(2)
            .generate();
        assert!(!t.is_empty());
    }
}
