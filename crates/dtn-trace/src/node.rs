//! Node identifiers.

use std::fmt;

/// Identifier of a node (a mobile device) in a delay tolerant network.
///
/// `NodeId` is a cheap `Copy` newtype over `u32`. Identifiers are dense in
/// practice (traces number their nodes `0..n`), which lets downstream code use
/// them as vector indices via [`NodeId::index`].
///
/// # Example
///
/// ```
/// use dtn_trace::NodeId;
///
/// let a = NodeId::new(3);
/// assert_eq!(a.index(), 3);
/// assert_eq!(a.to_string(), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from its raw value.
    pub const fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Returns the raw value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the identifier as a `usize`, suitable for indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u32 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Returns the identifiers `0..count` as a vector.
///
/// Convenience for tests and generators that work with dense node ranges.
///
/// # Example
///
/// ```
/// let ids = dtn_trace::node::dense_ids(3);
/// assert_eq!(ids.len(), 3);
/// assert_eq!(ids[2].raw(), 2);
/// ```
pub fn dense_ids(count: u32) -> Vec<NodeId> {
    (0..count).map(NodeId::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn round_trips_raw_value() {
        let id = NodeId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(u32::from(id), 42);
        assert_eq!(NodeId::from(42u32), id);
    }

    #[test]
    fn index_matches_raw() {
        assert_eq!(NodeId::new(7).index(), 7usize);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(NodeId::new(0).to_string(), "n0");
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }

    #[test]
    fn usable_in_hash_set() {
        let set: HashSet<NodeId> = dense_ids(4).into_iter().collect();
        assert_eq!(set.len(), 4);
        assert!(set.contains(&NodeId::new(3)));
    }

    #[test]
    fn dense_ids_are_dense() {
        let ids = dense_ids(5);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default(), NodeId::new(0));
    }
}
