//! The [`TraceSource`] seam: one abstraction over in-memory and on-disk
//! traces.
//!
//! A simulation run needs two things from a trace: a handful of summary
//! facts (node set, id space, span) and a single pass over the contacts in
//! event order. `TraceSource` exposes exactly that, so the simulator and the
//! sweep executor run identically over a fully materialized
//! [`ContactTrace`] and a sharded on-disk trace
//! ([`ShardedTrace`](crate::shard::ShardedTrace)) that never fits in RAM.
//!
//! Streams also self-report [`StreamStats`] — how many shards were faulted
//! in and the peak number of contacts resident at once — which the
//! experiment layer surfaces as telemetry counters.

use std::collections::BTreeMap;
use std::fmt;

use crate::contact::Contact;
use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};
use crate::trace::ContactTrace;

/// Memory-behaviour observations of one finished (or in-progress) stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Number of on-disk shards loaded. Zero for in-memory sources.
    pub shards_loaded: u64,
    /// Number of shards whose decode was started ahead of consumption by a
    /// pipelined stream. Zero for in-memory and serial sharded streams.
    pub shards_prefetched: u64,
    /// Peak number of contacts resident in the stream's buffer at once.
    /// For in-memory sources this is the full trace length; for serial
    /// sharded sources it is bounded by the largest single shard; a
    /// pipelined stream counts every decoded-ahead shard as resident too.
    pub peak_resident_contacts: u64,
}

impl StreamStats {
    /// Combines observations from several streams: shard loads and prefetches
    /// add, peaks take the maximum (they describe concurrent residency, not
    /// totals).
    pub fn absorb(&mut self, other: StreamStats) {
        self.shards_loaded += other.shards_loaded;
        self.shards_prefetched += other.shards_prefetched;
        self.peak_resident_contacts = self
            .peak_resident_contacts
            .max(other.peak_resident_contacts);
    }
}

/// A single in-order pass over a trace's contacts.
///
/// The iterator yields contacts in canonical event order (start, end,
/// participants — the [`ContactTrace`] sort). [`ContactStream::stream_stats`]
/// may be called at any point; it reflects what the stream has observed so
/// far.
pub trait ContactStream: Iterator<Item = Contact> {
    /// Memory-behaviour observations up to this point.
    fn stream_stats(&self) -> StreamStats;
}

/// Anything a simulation can replay: summary facts plus a streaming pass.
///
/// Implemented by [`ContactTrace`] (everything resident) and
/// [`ShardedTrace`](crate::shard::ShardedTrace) (one shard resident at a
/// time). `Send + Sync` so sweep executors can share one source across
/// worker threads behind an `Arc`.
pub trait TraceSource: Send + Sync + fmt::Debug {
    /// Total number of contacts.
    fn len(&self) -> usize;

    /// True if the source holds no contacts.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All node ids appearing in any contact, sorted ascending.
    fn nodes(&self) -> Vec<NodeId>;

    /// Largest node id plus one, or zero when empty.
    fn id_space(&self) -> usize;

    /// Earliest contact start, if any.
    fn start_time(&self) -> Option<SimTime>;

    /// Latest contact end, if any.
    fn end_time(&self) -> Option<SimTime>;

    /// Total time covered from first start to last end.
    fn span(&self) -> SimDuration {
        match (self.start_time(), self.end_time()) {
            (Some(s), Some(e)) => e.duration_since(s),
            _ => SimDuration::ZERO,
        }
    }

    /// Opens a fresh stream over the contacts in event order.
    ///
    /// Each call starts from the beginning. A run that still needs a
    /// separate statistics pass (because [`TraceSource::frequent_map`]
    /// returned `None`) opens one extra stream for it.
    fn stream(&self) -> Box<dyn ContactStream + '_>;

    /// Opens a stream that may decode ahead of consumption by up to `depth`
    /// units (shards, for on-disk sources). `depth == 0` means strictly
    /// serial. Sources without a pipelined implementation fall back to
    /// [`TraceSource::stream`]; the contact sequence is identical either
    /// way — prefetching only changes *when* decoding happens, never what
    /// is yielded.
    fn stream_prefetch(&self, depth: usize) -> Box<dyn ContactStream + '_> {
        let _ = depth;
        self.stream()
    }

    /// The frequent-contact peer map at granularity `every`, derived from
    /// precomputed aggregates when the source carries them.
    ///
    /// Returns `None` when the source cannot derive the map without a full
    /// contact pass (the in-memory backing, old shard manifests without
    /// pair aggregates, or an `every` that does not align with the shard
    /// window); callers then fall back to streaming a
    /// [`FrequentScan`](crate::stats::FrequentScan) pass. When `Some`, the
    /// result is byte-identical to what that fallback pass would produce.
    fn frequent_map(&self, every: SimDuration) -> Option<BTreeMap<NodeId, Vec<NodeId>>> {
        let _ = every;
        None
    }
}

/// Stream over an in-memory trace: clones contacts out of the resident
/// buffer. `shards_loaded` is zero and the peak residency is the full
/// trace length (everything is always resident).
#[derive(Debug)]
struct MemoryStream<'a> {
    inner: std::slice::Iter<'a, Contact>,
    len: u64,
}

impl Iterator for MemoryStream<'_> {
    type Item = Contact;

    fn next(&mut self) -> Option<Contact> {
        self.inner.next().cloned()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ContactStream for MemoryStream<'_> {
    fn stream_stats(&self) -> StreamStats {
        StreamStats {
            shards_loaded: 0,
            shards_prefetched: 0,
            peak_resident_contacts: self.len,
        }
    }
}

impl TraceSource for ContactTrace {
    fn len(&self) -> usize {
        ContactTrace::len(self)
    }

    fn nodes(&self) -> Vec<NodeId> {
        ContactTrace::nodes(self)
    }

    fn id_space(&self) -> usize {
        ContactTrace::id_space(self)
    }

    fn start_time(&self) -> Option<SimTime> {
        ContactTrace::start_time(self)
    }

    fn end_time(&self) -> Option<SimTime> {
        ContactTrace::end_time(self)
    }

    fn stream(&self) -> Box<dyn ContactStream + '_> {
        Box::new(MemoryStream {
            inner: self.iter(),
            len: ContactTrace::len(self) as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pc(a: u32, b: u32, start: u64, end: u64) -> Contact {
        Contact::pairwise(
            NodeId::new(a),
            NodeId::new(b),
            SimTime::from_secs(start),
            SimTime::from_secs(end),
        )
        .unwrap()
    }

    #[test]
    fn memory_stream_matches_trace_order() {
        let trace: ContactTrace = vec![pc(0, 1, 50, 60), pc(1, 2, 10, 20)]
            .into_iter()
            .collect();
        let source: &dyn TraceSource = &trace;
        let streamed: Vec<Contact> = source.stream().collect();
        assert_eq!(streamed, trace.contacts());
    }

    #[test]
    fn memory_stream_stats_report_full_residency() {
        let trace: ContactTrace = vec![pc(0, 1, 0, 1), pc(1, 2, 2, 3)].into_iter().collect();
        let stats = TraceSource::stream(&trace).stream_stats();
        assert_eq!(stats.shards_loaded, 0);
        assert_eq!(stats.peak_resident_contacts, 2);
    }

    #[test]
    fn source_facts_match_trace_facts() {
        let trace: ContactTrace = vec![pc(0, 7, 5, 9), pc(2, 3, 1, 4)].into_iter().collect();
        let source: &dyn TraceSource = &trace;
        assert_eq!(source.len(), 2);
        assert!(!source.is_empty());
        assert_eq!(source.id_space(), 8);
        assert_eq!(source.start_time(), Some(SimTime::from_secs(1)));
        assert_eq!(source.end_time(), Some(SimTime::from_secs(9)));
        assert_eq!(source.span(), SimDuration::from_secs(8));
        assert_eq!(source.nodes().len(), 4);
    }

    #[test]
    fn absorb_adds_loads_and_maxes_peaks() {
        let mut a = StreamStats {
            shards_loaded: 2,
            shards_prefetched: 1,
            peak_resident_contacts: 100,
        };
        a.absorb(StreamStats {
            shards_loaded: 3,
            shards_prefetched: 4,
            peak_resident_contacts: 40,
        });
        assert_eq!(a.shards_loaded, 5);
        assert_eq!(a.shards_prefetched, 5, "prefetch counts add like loads");
        assert_eq!(a.peak_resident_contacts, 100);
    }

    #[test]
    fn default_stream_prefetch_falls_back_to_serial() {
        let trace: ContactTrace = vec![pc(0, 1, 50, 60), pc(1, 2, 10, 20)]
            .into_iter()
            .collect();
        let source: &dyn TraceSource = &trace;
        let serial: Vec<Contact> = source.stream().collect();
        let prefetched: Vec<Contact> = source.stream_prefetch(4).collect();
        assert_eq!(serial, prefetched);
        assert_eq!(
            source.stream_prefetch(4).stream_stats().shards_prefetched,
            0
        );
        assert_eq!(
            source.frequent_map(SimDuration::from_secs(60)),
            None,
            "in-memory sources have no precomputed aggregates"
        );
    }
}
