//! Contacts: the edges of a DTN's space-time graph.
//!
//! A *contact* is a period of time during which a set of nodes can
//! communicate (paper §II-A). Vehicular traces such as UMassDieselNet record
//! pair-wise contacts; campus traces such as the NUS student trace put all
//! students attending the same class session in one *clique contact* in which
//! every node can receive every other node's broadcasts.

use std::error::Error;
use std::fmt;

use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};

/// Whether a contact connects exactly two nodes or a full clique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContactKind {
    /// A contact between exactly two nodes (e.g. two buses meeting).
    Pairwise,
    /// A contact among three or more mutually-reachable nodes (e.g. one
    /// classroom session). Every participant can receive broadcasts from
    /// every other participant.
    Clique,
}

/// Error produced when constructing an invalid [`Contact`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContactError {
    /// The contact would end at or before it starts.
    EmptyInterval {
        /// Claimed start instant.
        start: SimTime,
        /// Claimed end instant.
        end: SimTime,
    },
    /// Fewer than two distinct participants.
    TooFewParticipants {
        /// Number of distinct participants supplied.
        distinct: usize,
    },
    /// The same node appears twice in the participant list.
    DuplicateParticipant(NodeId),
}

impl fmt::Display for ContactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContactError::EmptyInterval { start, end } => {
                write!(f, "contact interval [{start}, {end}) is empty")
            }
            ContactError::TooFewParticipants { distinct } => {
                write!(f, "contact needs at least 2 distinct nodes, got {distinct}")
            }
            ContactError::DuplicateParticipant(id) => {
                write!(f, "node {id} appears more than once in contact")
            }
        }
    }
}

impl Error for ContactError {}

/// A single contact: a set of nodes mutually connected over `[start, end)`.
///
/// Participants are stored sorted by [`NodeId`], which makes equality and
/// hashing independent of construction order.
///
/// # Example
///
/// ```
/// use dtn_trace::{Contact, ContactKind, NodeId, SimTime};
///
/// let c = Contact::clique(
///     vec![NodeId::new(2), NodeId::new(0), NodeId::new(1)],
///     SimTime::from_secs(0),
///     SimTime::from_secs(3600),
/// )?;
/// assert_eq!(c.kind(), ContactKind::Clique);
/// assert_eq!(c.participants()[0], NodeId::new(0));
/// assert!(c.involves(NodeId::new(2)));
/// # Ok::<(), dtn_trace::ContactError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Contact {
    participants: Vec<NodeId>,
    start: SimTime,
    end: SimTime,
}

impl Contact {
    /// Creates a pair-wise contact between `a` and `b` over `[start, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`ContactError::EmptyInterval`] if `end <= start` and
    /// [`ContactError::DuplicateParticipant`] if `a == b`.
    pub fn pairwise(
        a: NodeId,
        b: NodeId,
        start: SimTime,
        end: SimTime,
    ) -> Result<Self, ContactError> {
        if a == b {
            return Err(ContactError::DuplicateParticipant(a));
        }
        Self::clique(vec![a, b], start, end)
    }

    /// Creates a contact among the given participants over `[start, end)`.
    ///
    /// With exactly two participants this is equivalent to
    /// [`Contact::pairwise`]; with more, the contact is a clique.
    ///
    /// # Errors
    ///
    /// Returns an error if the interval is empty, a participant is repeated,
    /// or fewer than two nodes are given.
    pub fn clique(
        mut participants: Vec<NodeId>,
        start: SimTime,
        end: SimTime,
    ) -> Result<Self, ContactError> {
        if end <= start {
            return Err(ContactError::EmptyInterval { start, end });
        }
        participants.sort_unstable();
        if let Some(dup) = first_duplicate(&participants) {
            return Err(ContactError::DuplicateParticipant(dup));
        }
        if participants.len() < 2 {
            return Err(ContactError::TooFewParticipants {
                distinct: participants.len(),
            });
        }
        Ok(Contact {
            participants,
            start,
            end,
        })
    }

    /// The contact kind, derived from the participant count.
    pub fn kind(&self) -> ContactKind {
        if self.participants.len() == 2 {
            ContactKind::Pairwise
        } else {
            ContactKind::Clique
        }
    }

    /// The participants, sorted by node id.
    pub fn participants(&self) -> &[NodeId] {
        &self.participants
    }

    /// Number of participants.
    pub fn size(&self) -> usize {
        self.participants.len()
    }

    /// Start instant (inclusive).
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// End instant (exclusive).
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// Contact duration.
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }

    /// True if `node` participates in this contact.
    pub fn involves(&self, node: NodeId) -> bool {
        self.participants.binary_search(&node).is_ok()
    }

    /// The participants other than `node`.
    ///
    /// Returns an empty vector if `node` does not participate.
    pub fn peers_of(&self, node: NodeId) -> Vec<NodeId> {
        if !self.involves(node) {
            return Vec::new();
        }
        self.participants
            .iter()
            .copied()
            .filter(|&p| p != node)
            .collect()
    }

    /// True if the contact is active at instant `t` (i.e. `start <= t < end`).
    pub fn active_at(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// All unordered participant pairs `(a, b)` with `a < b`.
    ///
    /// A pair-wise contact yields one pair; a clique of size `n` yields
    /// `n * (n - 1) / 2`.
    pub fn pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.size() * (self.size() - 1) / 2);
        for (i, &a) in self.participants.iter().enumerate() {
            for &b in &self.participants[i + 1..] {
                out.push((a, b));
            }
        }
        out
    }
}

impl fmt::Display for Contact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "contact[{}..{}](", self.start, self.end)?;
        for (i, p) in self.participants.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

fn first_duplicate(sorted: &[NodeId]) -> Option<NodeId> {
    sorted.windows(2).find(|w| w[0] == w[1]).map(|w| w[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pairwise_contact_is_pairwise() {
        let c = Contact::pairwise(NodeId::new(1), NodeId::new(0), t(0), t(10)).unwrap();
        assert_eq!(c.kind(), ContactKind::Pairwise);
        assert_eq!(c.size(), 2);
        assert_eq!(c.participants(), &[NodeId::new(0), NodeId::new(1)]);
    }

    #[test]
    fn clique_contact_is_clique() {
        let c = Contact::clique(
            vec![NodeId::new(5), NodeId::new(3), NodeId::new(4)],
            t(0),
            t(10),
        )
        .unwrap();
        assert_eq!(c.kind(), ContactKind::Clique);
        assert_eq!(c.size(), 3);
    }

    #[test]
    fn rejects_empty_interval() {
        let err = Contact::pairwise(NodeId::new(0), NodeId::new(1), t(10), t(10)).unwrap_err();
        assert!(matches!(err, ContactError::EmptyInterval { .. }));
    }

    #[test]
    fn rejects_self_contact() {
        let err = Contact::pairwise(NodeId::new(2), NodeId::new(2), t(0), t(10)).unwrap_err();
        assert_eq!(err, ContactError::DuplicateParticipant(NodeId::new(2)));
    }

    #[test]
    fn rejects_duplicate_in_clique() {
        let err = Contact::clique(
            vec![NodeId::new(1), NodeId::new(2), NodeId::new(1)],
            t(0),
            t(10),
        )
        .unwrap_err();
        assert_eq!(err, ContactError::DuplicateParticipant(NodeId::new(1)));
    }

    #[test]
    fn rejects_singleton() {
        let err = Contact::clique(vec![NodeId::new(1)], t(0), t(10)).unwrap_err();
        assert!(matches!(
            err,
            ContactError::TooFewParticipants { distinct: 1 }
        ));
    }

    #[test]
    fn duration_and_activity() {
        let c = Contact::pairwise(NodeId::new(0), NodeId::new(1), t(10), t(40)).unwrap();
        assert_eq!(c.duration(), SimDuration::from_secs(30));
        assert!(c.active_at(t(10)));
        assert!(c.active_at(t(39)));
        assert!(!c.active_at(t(40)));
        assert!(!c.active_at(t(9)));
    }

    #[test]
    fn peers_of_excludes_self() {
        let c = Contact::clique(
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
            t(0),
            t(10),
        )
        .unwrap();
        assert_eq!(
            c.peers_of(NodeId::new(1)),
            vec![NodeId::new(0), NodeId::new(2)]
        );
        assert!(c.peers_of(NodeId::new(9)).is_empty());
    }

    #[test]
    fn pairs_enumerates_all() {
        let c = Contact::clique(
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3),
            ],
            t(0),
            t(10),
        )
        .unwrap();
        assert_eq!(c.pairs().len(), 6);
        assert!(c.pairs().contains(&(NodeId::new(1), NodeId::new(3))));
    }

    #[test]
    fn equality_independent_of_order() {
        let a = Contact::clique(vec![NodeId::new(0), NodeId::new(1)], t(0), t(5)).unwrap();
        let b = Contact::clique(vec![NodeId::new(1), NodeId::new(0)], t(0), t(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn display_lists_participants() {
        let c = Contact::pairwise(NodeId::new(0), NodeId::new(1), t(0), t(5)).unwrap();
        let s = c.to_string();
        assert!(s.contains("n0"));
        assert!(s.contains("n1"));
    }

    #[test]
    fn error_display_is_informative() {
        let err = Contact::pairwise(NodeId::new(0), NodeId::new(1), t(10), t(5)).unwrap_err();
        assert!(err.to_string().contains("empty"));
    }
}
