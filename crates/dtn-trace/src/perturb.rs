//! Trace-level perturbation: deterministic degradation of a recorded trace.
//!
//! While `dtn_sim::faults` injects faults *during* a simulation, this adapter
//! degrades the trace *before* it — dropping whole contacts and truncating
//! contact windows — so any downstream consumer (simulation, routing
//! analysis, statistics) sees the perturbed mobility. Every decision is a
//! pure function of the perturbation seed and the contact's identity
//! (participants + start time), so the output is reproducible regardless of
//! evaluation order, and zero-rate perturbations return the input trace
//! without drawing a single random number.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

use crate::contact::Contact;
use crate::time::SimTime;
use crate::trace::ContactTrace;

/// A deterministic trace perturbation: drop a fraction of contacts entirely
/// and truncate the rest by up to a fraction of their length.
///
/// # Example
///
/// ```
/// use dtn_trace::{Contact, ContactTrace, NodeId, Perturbation, SimTime};
///
/// let trace: ContactTrace = (0..10)
///     .map(|i| {
///         Contact::pairwise(
///             NodeId::new(0),
///             NodeId::new(1),
///             SimTime::from_secs(i * 100),
///             SimTime::from_secs(i * 100 + 60),
///         )
///         .unwrap()
///     })
///     .collect();
/// let degraded = Perturbation::new().drop_rate(0.5).seed(7).apply(&trace);
/// assert!(degraded.len() < trace.len());
/// // Zero rates are the identity.
/// assert_eq!(Perturbation::new().apply(&trace).len(), trace.len());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Perturbation {
    drop_rate: f64,
    truncate_rate: f64,
    seed: u64,
}

fn check_rate(what: &str, rate: f64) {
    assert!(
        (0.0..=1.0).contains(&rate),
        "{what} rate must be in [0, 1], got {rate}"
    );
}

impl Perturbation {
    /// The identity perturbation (nothing dropped, nothing truncated).
    pub fn new() -> Perturbation {
        Perturbation::default()
    }

    /// Sets the probability that a contact is removed entirely.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` ∈ [0, 1].
    pub fn drop_rate(mut self, rate: f64) -> Perturbation {
        check_rate("drop", rate);
        self.drop_rate = rate;
        self
    }

    /// Sets the maximum truncated fraction: each surviving contact keeps a
    /// length drawn uniformly from `[1 - rate, 1]` of its original length
    /// (never below one second).
    ///
    /// # Panics
    ///
    /// Panics unless `rate` ∈ [0, 1].
    pub fn truncate_rate(mut self, rate: f64) -> Perturbation {
        check_rate("truncate", rate);
        self.truncate_rate = rate;
        self
    }

    /// Sets the seed the per-contact decisions derive from.
    pub fn seed(mut self, seed: u64) -> Perturbation {
        self.seed = seed;
        self
    }

    /// True if this perturbation changes nothing.
    pub fn is_noop(&self) -> bool {
        self.drop_rate <= 0.0 && self.truncate_rate <= 0.0
    }

    /// Applies the perturbation, returning the degraded trace. The identity
    /// perturbation returns a clone of the input (and draws no randomness).
    pub fn apply(&self, trace: &ContactTrace) -> ContactTrace {
        if self.is_noop() {
            return trace.clone();
        }
        let mut builder = ContactTrace::builder();
        for contact in trace.iter() {
            let mut rng = self.contact_rng(contact);
            if self.drop_rate > 0.0 && rng.gen::<f64>() < self.drop_rate {
                continue;
            }
            if self.truncate_rate > 0.0 {
                let keep = 1.0 - rng.gen::<f64>() * self.truncate_rate;
                let kept_secs =
                    ((contact.duration().as_secs() as f64 * keep).floor() as u64).max(1);
                let end = SimTime::from_secs(contact.start().as_secs() + kept_secs);
                if end < contact.end() {
                    let truncated =
                        Contact::clique(contact.participants().to_vec(), contact.start(), end)
                            .expect("kept interval is non-empty with the original participants");
                    builder.push(truncated);
                    continue;
                }
            }
            builder.push(contact.clone());
        }
        builder.build()
    }

    /// A per-contact RNG seeded from the perturbation seed and the contact's
    /// identity — stable under reordering of the trace. The drop roll is
    /// always drawn first, so enabling truncation never changes which
    /// contacts survive.
    fn contact_rng(&self, contact: &Contact) -> StdRng {
        let mut bytes = Vec::with_capacity(8 * (contact.size() + 2));
        bytes.extend_from_slice(&self.seed.to_le_bytes());
        bytes.extend_from_slice(&contact.start().as_secs().to_le_bytes());
        for node in contact.participants() {
            bytes.extend_from_slice(&u64::from(node.raw()).to_le_bytes());
        }
        StdRng::seed_from_u64(fnv1a(&bytes))
    }
}

/// FNV-1a, the same mixing the simulator's seed derivation uses (kept local:
/// this crate sits below `dtn-sim` in the dependency graph).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    fn sample_trace() -> ContactTrace {
        let mut builder = ContactTrace::builder();
        for i in 0..40u64 {
            builder.push(
                Contact::pairwise(
                    NodeId::new((i % 5) as u32),
                    NodeId::new((i % 5) as u32 + 1),
                    SimTime::from_secs(i * 1_000),
                    SimTime::from_secs(i * 1_000 + 120),
                )
                .unwrap(),
            );
        }
        builder.build()
    }

    #[test]
    fn identity_perturbation_returns_equal_trace() {
        let trace = sample_trace();
        let out = Perturbation::new().seed(99).apply(&trace);
        assert_eq!(out.contacts(), trace.contacts());
    }

    #[test]
    fn apply_is_deterministic() {
        let trace = sample_trace();
        let p = Perturbation::new()
            .drop_rate(0.3)
            .truncate_rate(0.5)
            .seed(4);
        let a = p.apply(&trace);
        let b = p.apply(&trace);
        assert_eq!(a.contacts(), b.contacts());
    }

    #[test]
    fn drop_rate_removes_contacts() {
        let trace = sample_trace();
        let out = Perturbation::new().drop_rate(0.5).seed(1).apply(&trace);
        assert!(out.len() < trace.len(), "nothing dropped");
        assert!(!out.is_empty(), "everything dropped at rate 0.5");
        // Survivors are untouched originals.
        for c in out.iter() {
            assert!(trace.contacts().contains(c));
        }
        // Full drop removes everything.
        assert!(Perturbation::new().drop_rate(1.0).apply(&trace).is_empty());
    }

    #[test]
    fn truncation_shortens_but_preserves_contacts() {
        let trace = sample_trace();
        let out = Perturbation::new().truncate_rate(0.9).seed(2).apply(&trace);
        assert_eq!(out.len(), trace.len(), "truncation must not drop contacts");
        let mut shortened = 0;
        for (orig, cut) in trace.iter().zip(out.iter()) {
            assert_eq!(orig.participants(), cut.participants());
            assert_eq!(orig.start(), cut.start());
            assert!(cut.end() <= orig.end());
            assert!(cut.duration().as_secs() >= 1);
            if cut.end() < orig.end() {
                shortened += 1;
            }
        }
        assert!(shortened > 0, "rate 0.9 should shorten something");
    }

    #[test]
    fn drop_decisions_are_independent_of_truncation() {
        let trace = sample_trace();
        let dropped_only: Vec<SimTime> = Perturbation::new()
            .drop_rate(0.4)
            .seed(6)
            .apply(&trace)
            .iter()
            .map(|c| c.start())
            .collect();
        let dropped_and_cut: Vec<SimTime> = Perturbation::new()
            .drop_rate(0.4)
            .truncate_rate(0.8)
            .seed(6)
            .apply(&trace)
            .iter()
            .map(|c| c.start())
            .collect();
        assert_eq!(dropped_only, dropped_and_cut, "survivor set must not shift");
    }

    #[test]
    #[should_panic(expected = "drop rate must be in [0, 1]")]
    fn rejects_out_of_range_rates() {
        let _ = Perturbation::new().drop_rate(-0.1);
    }
}
