//! Space-time graph analysis.
//!
//! A DTN can be described abstractly using a *space-time graph* in which each
//! edge corresponds to a contact (paper §II-A, citing Merugu et al.). This
//! module computes store-carry-forward reachability over a
//! [`ContactTrace`]: given a message created at a source node at some time,
//! the earliest instant every other node could possibly receive it assuming
//! instantaneous transfers — a lower bound any real protocol (including MBT)
//! is measured against.

use std::collections::BTreeMap;

use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};
use crate::trace::ContactTrace;

/// Store-carry-forward reachability oracle over a contact trace.
///
/// # Example
///
/// ```
/// use dtn_trace::{Contact, ContactTrace, NodeId, SimTime, SpaceTimeGraph};
///
/// // n0 meets n1 at t=10, n1 meets n2 at t=20: a message from n0 can reach
/// // n2 at t=20 by store-carry-forward through n1.
/// let trace: ContactTrace = vec![
///     Contact::pairwise(NodeId::new(0), NodeId::new(1), SimTime::from_secs(10), SimTime::from_secs(15))?,
///     Contact::pairwise(NodeId::new(1), NodeId::new(2), SimTime::from_secs(20), SimTime::from_secs(25))?,
/// ].into_iter().collect();
///
/// let graph = SpaceTimeGraph::new(&trace);
/// let arrivals = graph.earliest_delivery(NodeId::new(0), SimTime::ZERO);
/// assert_eq!(arrivals[&NodeId::new(2)], SimTime::from_secs(20));
/// # Ok::<(), dtn_trace::ContactError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SpaceTimeGraph {
    trace: ContactTrace,
}

impl SpaceTimeGraph {
    /// Builds the graph over a trace (the trace is cloned).
    pub fn new(trace: &ContactTrace) -> Self {
        SpaceTimeGraph {
            trace: trace.clone(),
        }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &ContactTrace {
        &self.trace
    }

    /// Earliest time each node can receive a message created at `source` at
    /// instant `created`, assuming every contact relays instantly.
    ///
    /// The map always contains `source` (at `created`). Unreachable nodes are
    /// absent. Within a clique contact the message reaches all participants
    /// as soon as any carrier participates.
    pub fn earliest_delivery(&self, source: NodeId, created: SimTime) -> BTreeMap<NodeId, SimTime> {
        let mut earliest: BTreeMap<NodeId, SimTime> = BTreeMap::new();
        earliest.insert(source, created);

        // A contact relays whenever some participant holds the message before
        // the contact ends; the transfer instant is max(contact start, hold
        // time). Contacts are sorted by start but long contacts can relay
        // "backwards" in processing order, so iterate to a fixpoint.
        loop {
            let mut changed = false;
            for contact in self.trace.iter() {
                // Earliest instant any participant can inject the message
                // into this contact.
                let inject = contact
                    .participants()
                    .iter()
                    .filter_map(|p| earliest.get(p).copied())
                    .min();
                let Some(hold) = inject else { continue };
                if hold >= contact.end() {
                    continue;
                }
                let at = hold.max(contact.start());
                for &p in contact.participants() {
                    let better = earliest.get(&p).is_none_or(|&cur| at < cur);
                    if better {
                        earliest.insert(p, at);
                        changed = true;
                    }
                }
            }
            if !changed {
                return earliest;
            }
        }
    }

    /// Nodes reachable from `source` (including itself) for a message created
    /// at `created`, optionally bounded by a deadline.
    pub fn reachable(
        &self,
        source: NodeId,
        created: SimTime,
        deadline: Option<SimTime>,
    ) -> Vec<NodeId> {
        self.earliest_delivery(source, created)
            .into_iter()
            .filter(|&(_, t)| deadline.is_none_or(|d| t <= d))
            .map(|(n, _)| n)
            .collect()
    }

    /// Minimum store-carry-forward delay from `source` to `dest` for a
    /// message created at `created`, or `None` if unreachable.
    pub fn delivery_delay(
        &self,
        source: NodeId,
        dest: NodeId,
        created: SimTime,
    ) -> Option<SimDuration> {
        self.earliest_delivery(source, created)
            .get(&dest)
            .map(|&t| t.duration_since(created))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::Contact;

    fn pc(a: u32, b: u32, start: u64, end: u64) -> Contact {
        Contact::pairwise(
            NodeId::new(a),
            NodeId::new(b),
            SimTime::from_secs(start),
            SimTime::from_secs(end),
        )
        .unwrap()
    }

    #[test]
    fn direct_contact_delivers_at_start() {
        let t: ContactTrace = vec![pc(0, 1, 10, 20)].into_iter().collect();
        let g = SpaceTimeGraph::new(&t);
        let d = g.earliest_delivery(NodeId::new(0), SimTime::ZERO);
        assert_eq!(d[&NodeId::new(1)], SimTime::from_secs(10));
    }

    #[test]
    fn message_created_mid_contact_delivers_immediately() {
        let t: ContactTrace = vec![pc(0, 1, 10, 20)].into_iter().collect();
        let g = SpaceTimeGraph::new(&t);
        let d = g.earliest_delivery(NodeId::new(0), SimTime::from_secs(15));
        assert_eq!(d[&NodeId::new(1)], SimTime::from_secs(15));
    }

    #[test]
    fn expired_contact_does_not_deliver() {
        let t: ContactTrace = vec![pc(0, 1, 10, 20)].into_iter().collect();
        let g = SpaceTimeGraph::new(&t);
        let d = g.earliest_delivery(NodeId::new(0), SimTime::from_secs(25));
        assert!(!d.contains_key(&NodeId::new(1)));
    }

    #[test]
    fn two_hop_store_carry_forward() {
        let t: ContactTrace = vec![pc(0, 1, 10, 15), pc(1, 2, 50, 60)]
            .into_iter()
            .collect();
        let g = SpaceTimeGraph::new(&t);
        let d = g.earliest_delivery(NodeId::new(0), SimTime::ZERO);
        assert_eq!(d[&NodeId::new(2)], SimTime::from_secs(50));
    }

    #[test]
    fn long_contact_relays_after_late_infection() {
        // Contact B starts before A but is still open when A infects n1.
        let t: ContactTrace = vec![pc(1, 2, 5, 30), pc(0, 1, 10, 20)]
            .into_iter()
            .collect();
        let g = SpaceTimeGraph::new(&t);
        let d = g.earliest_delivery(NodeId::new(0), SimTime::ZERO);
        assert_eq!(d[&NodeId::new(2)], SimTime::from_secs(10));
    }

    #[test]
    fn clique_reaches_all_participants() {
        let clique = Contact::clique(
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3),
            ],
            SimTime::from_secs(100),
            SimTime::from_secs(200),
        )
        .unwrap();
        let t: ContactTrace = vec![clique].into_iter().collect();
        let g = SpaceTimeGraph::new(&t);
        let d = g.earliest_delivery(NodeId::new(2), SimTime::ZERO);
        assert_eq!(d.len(), 4);
        assert_eq!(d[&NodeId::new(2)], SimTime::ZERO);
        for peer in [0, 1, 3] {
            assert_eq!(d[&NodeId::new(peer)], SimTime::from_secs(100));
        }
    }

    #[test]
    fn reachable_respects_deadline() {
        let t: ContactTrace = vec![pc(0, 1, 10, 15), pc(1, 2, 50, 60)]
            .into_iter()
            .collect();
        let g = SpaceTimeGraph::new(&t);
        let within = g.reachable(NodeId::new(0), SimTime::ZERO, Some(SimTime::from_secs(20)));
        assert_eq!(within, vec![NodeId::new(0), NodeId::new(1)]);
        let all = g.reachable(NodeId::new(0), SimTime::ZERO, None);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn delivery_delay_reports_none_when_unreachable() {
        let t: ContactTrace = vec![pc(0, 1, 10, 15)].into_iter().collect();
        let g = SpaceTimeGraph::new(&t);
        assert_eq!(
            g.delivery_delay(NodeId::new(0), NodeId::new(9), SimTime::ZERO),
            None
        );
        assert_eq!(
            g.delivery_delay(NodeId::new(0), NodeId::new(1), SimTime::ZERO),
            Some(SimDuration::from_secs(10))
        );
    }

    #[test]
    fn source_always_present_at_creation_time() {
        let g = SpaceTimeGraph::new(&ContactTrace::new());
        let d = g.earliest_delivery(NodeId::new(4), SimTime::from_secs(7));
        assert_eq!(d.len(), 1);
        assert_eq!(d[&NodeId::new(4)], SimTime::from_secs(7));
    }
}
