//! On-disk sharded traces: time-windowed segments with a manifest.
//!
//! A sharded trace is a directory:
//!
//! ```text
//! trace-dir/
//!   manifest.txt      # dtn-shard v1 header + summary facts + shard index
//!   shard-00000.txt   # dtn-trace v1 text, contacts starting in window 0
//!   shard-00003.txt   # windows with no contacts have no file
//!   ...
//! ```
//!
//! Contacts are partitioned by **start time** into fixed-width windows and
//! each shard file is sorted in the canonical event order (start, end,
//! participants). Because a given start time lands in exactly one window,
//! concatenating shards in window order reproduces the exact global sort an
//! in-memory [`ContactTrace`](crate::ContactTrace) would produce — sharded replay is
//! byte-identical to in-memory replay by construction.
//!
//! The manifest carries everything a run needs without touching shard
//! files: contact count, id space, node set, span, and per-shard contact
//! counts. [`ShardedTrace::stream`] then faults shards in one at a time, so
//! peak memory is bounded by the largest single shard;
//! [`TraceSource::stream_prefetch`] decodes the next shard on a background
//! worker while the previous one is being consumed.
//!
//! Alongside each shard the writer emits a `pairs-NNNNN.txt` sidecar listing
//! the shard's distinct participant pairs, and the manifest `shard` lines
//! carry the pair count as an optional fourth token. Those aggregates let
//! [`TraceSource::frequent_map`] derive the frequent-contact map straight
//! from the manifest — no second streaming pass over the shards. Manifests
//! without the fourth token (written before the sidecars existed) still
//! open; the derivation just reports "unavailable" and callers fall back to
//! a streaming statistics pass.
//!
//! ```text
//! # dtn-shard v1
//! window-secs 86400
//! contacts 1234
//! id-space 16
//! span-start 0
//! span-end 518400
//! nodes 0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15
//! shard shard-00000.txt 0 210 64
//! shard shard-00001.txt 1 195 58
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::thread;

use crate::contact::Contact;
use crate::node::NodeId;
use crate::parser::{ContactReader, ParseTraceError};
use crate::source::{ContactStream, StreamStats, TraceSource};
use crate::time::{SimDuration, SimTime};
use crate::trace::{sort_contacts, ContactSink};

/// Name of the manifest file inside a shard directory.
pub const MANIFEST_FILE: &str = "manifest.txt";

/// Format tag on the manifest's first line.
const MANIFEST_HEADER: &str = "# dtn-shard v1";

/// Format tag on the first line of a pair-aggregate sidecar file.
const PAIRS_HEADER: &str = "# dtn-pairs v1";

/// Node ids per `nodes` manifest line (keeps lines diff-friendly).
const NODES_PER_LINE: usize = 16;

/// Error produced while writing or reading a sharded trace.
#[derive(Debug)]
pub enum ShardError {
    /// Underlying I/O failure, with the path involved.
    Io {
        /// What was being done.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A shard file could not be parsed.
    Trace(ParseTraceError),
    /// The manifest is malformed.
    Manifest {
        /// 1-based line number within the manifest.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The writer was configured with a zero-width window.
    ZeroWindow,
    /// A shard file's contents disagree with the manifest index
    /// (found by [`ShardedTrace::verify`]).
    Corrupt {
        /// Shard file name relative to the trace directory.
        file: String,
        /// Description of the disagreement.
        message: String,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io { context, source } => write!(f, "i/o error {context}: {source}"),
            ShardError::Trace(e) => write!(f, "shard file error: {e}"),
            ShardError::Manifest { line, message } => {
                write!(f, "manifest error on line {line}: {message}")
            }
            ShardError::ZeroWindow => write!(f, "shard window must be non-zero"),
            ShardError::Corrupt { file, message } => {
                write!(f, "shard `{file}` disagrees with manifest: {message}")
            }
        }
    }
}

impl Error for ShardError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ShardError::Io { source, .. } => Some(source),
            ShardError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseTraceError> for ShardError {
    fn from(e: ParseTraceError) -> Self {
        ShardError::Trace(e)
    }
}

fn io_err(context: impl Into<String>) -> impl FnOnce(io::Error) -> ShardError {
    let context = context.into();
    move |source| ShardError::Io { context, source }
}

/// One shard in the manifest index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    /// File name relative to the shard directory.
    pub file: String,
    /// Zero-based window index (`start_secs / window_secs`).
    pub window_index: u64,
    /// Number of contacts in the shard.
    pub contacts: u64,
    /// Number of distinct participant pairs in the shard, listed in the
    /// `pairs-NNNNN.txt` sidecar. `None` for manifests written before the
    /// sidecars existed.
    pub pairs: Option<u64>,
}

/// Streams contacts into time-windowed shard files, never holding the whole
/// trace in memory.
///
/// Accepts contacts in **any order** through [`ContactSink`] — each one is
/// appended to its window's file as it arrives. [`ShardWriter::finish`]
/// then sorts each shard (one shard resident at a time), writes the
/// manifest, and opens the result for reading.
///
/// `push_contact` is infallible per the [`ContactSink`] contract, so I/O
/// errors are buffered: after the first failure further pushes are dropped
/// and `finish` reports the original error.
#[derive(Debug)]
pub struct ShardWriter {
    dir: PathBuf,
    window_secs: u64,
    shards: BTreeMap<u64, (BufWriter<File>, u64)>,
    nodes: BTreeSet<NodeId>,
    id_space: usize,
    contacts: u64,
    min_start: Option<SimTime>,
    max_end: Option<SimTime>,
    error: Option<ShardError>,
    jobs: usize,
}

/// File name of the shard for `window_index`.
fn shard_file_name(window_index: u64) -> String {
    format!("shard-{window_index:05}.txt")
}

/// File name of the pair-aggregate sidecar for `window_index`.
fn pairs_file_name(window_index: u64) -> String {
    format!("pairs-{window_index:05}.txt")
}

fn write_contact_line<W: Write>(writer: &mut W, contact: &Contact) -> io::Result<()> {
    write!(
        writer,
        "contact {} {}",
        contact.start().as_secs(),
        contact.end().as_secs()
    )?;
    for node in contact.participants() {
        write!(writer, " {}", node.raw())?;
    }
    writeln!(writer)
}

impl ShardWriter {
    /// Creates `dir` (and parents) and prepares to write shards of `window`
    /// width, partitioned by contact start time.
    ///
    /// # Errors
    ///
    /// [`ShardError::ZeroWindow`] for a zero-width window, or an I/O error
    /// if the directory cannot be created.
    pub fn create(dir: impl Into<PathBuf>, window: SimDuration) -> Result<ShardWriter, ShardError> {
        let dir = dir.into();
        if window.as_secs() == 0 {
            return Err(ShardError::ZeroWindow);
        }
        fs::create_dir_all(&dir).map_err(io_err(format!("creating `{}`", dir.display())))?;
        Ok(ShardWriter {
            dir,
            window_secs: window.as_secs(),
            shards: BTreeMap::new(),
            nodes: BTreeSet::new(),
            id_space: 0,
            contacts: 0,
            min_start: None,
            max_end: None,
            error: None,
            jobs: 0,
        })
    }

    /// Sets how many worker threads [`ShardWriter::finish`] uses to sort
    /// and rewrite shard files; `0` (the default) means one per available
    /// core. Shards are independent and the manifest collects them in
    /// window order, so the finished trace is byte-identical for any job
    /// count.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Number of contacts accepted so far.
    pub fn len(&self) -> u64 {
        self.contacts
    }

    /// True if no contacts have been accepted.
    pub fn is_empty(&self) -> bool {
        self.contacts == 0
    }

    fn append(&mut self, contact: &Contact) -> Result<(), ShardError> {
        let window_index = contact.start().as_secs() / self.window_secs;
        let (writer, count) = match self.shards.entry(window_index) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(e) => {
                let path = self.dir.join(shard_file_name(window_index));
                let file = File::create(&path)
                    .map_err(io_err(format!("creating `{}`", path.display())))?;
                let mut writer = BufWriter::new(file);
                writeln!(writer, "# dtn-trace v1")
                    .map_err(io_err(format!("writing `{}`", path.display())))?;
                e.insert((writer, 0))
            }
        };
        write_contact_line(writer, contact).map_err(io_err("writing shard"))?;
        *count += 1;
        self.contacts += 1;
        for node in contact.participants() {
            self.nodes.insert(*node);
            self.id_space = self.id_space.max(node.index() + 1);
        }
        self.min_start = Some(
            self.min_start
                .map_or(contact.start(), |t| t.min(contact.start())),
        );
        self.max_end = Some(self.max_end.map_or(contact.end(), |t| t.max(contact.end())));
        Ok(())
    }

    /// Sorts every shard into event order (one shard in memory at a time),
    /// writes the manifest, and opens the finished trace.
    ///
    /// # Errors
    ///
    /// The first error buffered during writing, or any I/O / parse error
    /// during the sort and manifest pass.
    pub fn finish(mut self) -> Result<ShardedTrace, ShardError> {
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        let mut windows = Vec::with_capacity(self.shards.len());
        for (window_index, (writer, count)) in std::mem::take(&mut self.shards) {
            writer
                .into_inner()
                .map_err(|e| ShardError::Io {
                    context: "flushing shard".to_string(),
                    source: e.into_error(),
                })?
                .sync_data()
                .ok();
            windows.push((window_index, count));
        }
        // Sort and rewrite every shard, fanned out over the configured
        // jobs. Each worker touches only its own shard file and results
        // collect in window order, so the finished trace is byte-identical
        // for any job count; memory stays bounded by `jobs` concurrent
        // shards (one shard per worker — the invariant the reader relies
        // on, scaled by the explicit thread count).
        let dir = self.dir.clone();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.jobs)
            .build()
            .expect("thread pool construction is infallible");
        let metas: Vec<ShardMeta> = pool
            .install(|| {
                use rayon::prelude::*;
                windows
                    .par_iter()
                    .map(|&(window_index, count)| sort_one_shard(&dir, window_index, count))
                    .collect::<Vec<Result<ShardMeta, ShardError>>>()
            })
            .into_iter()
            .collect::<Result<_, _>>()?;
        let manifest = Manifest {
            window_secs: self.window_secs,
            contacts: self.contacts,
            id_space: self.id_space,
            nodes: self.nodes.iter().copied().collect(),
            span_start: self.min_start,
            span_end: self.max_end,
            shards: metas,
        };
        let path = self.dir.join(MANIFEST_FILE);
        let file = File::create(&path).map_err(io_err(format!("creating `{}`", path.display())))?;
        let mut writer = BufWriter::new(file);
        manifest
            .write(&mut writer)
            .map_err(io_err("writing manifest"))?;
        writer.flush().map_err(io_err("flushing manifest"))?;
        Ok(ShardedTrace {
            dir: self.dir,
            manifest,
        })
    }
}

/// Re-reads one appended shard, sorts it into canonical event order, and
/// rewrites it in place alongside its pair-aggregate sidecar, returning the
/// shard's manifest entry.
fn sort_one_shard(dir: &Path, window_index: u64, count: u64) -> Result<ShardMeta, ShardError> {
    let file = shard_file_name(window_index);
    let path = dir.join(&file);
    let handle = File::open(&path).map_err(io_err(format!("reopening `{}`", path.display())))?;
    let mut contacts: Vec<Contact> = ContactReader::new(handle).collect::<Result<_, _>>()?;
    sort_contacts(&mut contacts);
    let out = File::create(&path).map_err(io_err(format!("rewriting `{}`", path.display())))?;
    let mut out = BufWriter::new(out);
    writeln!(out, "# dtn-trace v1").map_err(io_err("writing shard header"))?;
    for contact in &contacts {
        write_contact_line(&mut out, contact).map_err(io_err("writing shard"))?;
    }
    out.flush().map_err(io_err("flushing shard"))?;
    // The shard is already resident, so collecting its distinct pairs here
    // is free of extra I/O; the sidecar is what lets `frequent_map` skip
    // the pre-simulation statistics pass entirely.
    let mut pairs: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    for contact in &contacts {
        pairs.extend(contact.pairs());
    }
    let pairs_path = dir.join(pairs_file_name(window_index));
    let sidecar = File::create(&pairs_path)
        .map_err(io_err(format!("creating `{}`", pairs_path.display())))?;
    let mut sidecar = BufWriter::new(sidecar);
    writeln!(sidecar, "{PAIRS_HEADER}").map_err(io_err("writing pairs header"))?;
    for (a, b) in &pairs {
        writeln!(sidecar, "{} {}", a.raw(), b.raw()).map_err(io_err("writing pairs"))?;
    }
    sidecar.flush().map_err(io_err("flushing pairs"))?;
    Ok(ShardMeta {
        file,
        window_index,
        contacts: count,
        pairs: Some(pairs.len() as u64),
    })
}

impl ContactSink for ShardWriter {
    fn push_contact(&mut self, contact: Contact) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.append(&contact) {
            self.error = Some(e);
        }
    }
}

/// Parsed manifest contents.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Manifest {
    window_secs: u64,
    contacts: u64,
    id_space: usize,
    nodes: Vec<NodeId>,
    span_start: Option<SimTime>,
    span_end: Option<SimTime>,
    shards: Vec<ShardMeta>,
}

impl Manifest {
    fn write<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        writeln!(writer, "{MANIFEST_HEADER}")?;
        writeln!(writer, "window-secs {}", self.window_secs)?;
        writeln!(writer, "contacts {}", self.contacts)?;
        writeln!(writer, "id-space {}", self.id_space)?;
        if let (Some(start), Some(end)) = (self.span_start, self.span_end) {
            writeln!(writer, "span-start {}", start.as_secs())?;
            writeln!(writer, "span-end {}", end.as_secs())?;
        }
        for chunk in self.nodes.chunks(NODES_PER_LINE) {
            write!(writer, "nodes")?;
            for node in chunk {
                write!(writer, " {}", node.raw())?;
            }
            writeln!(writer)?;
        }
        for shard in &self.shards {
            match shard.pairs {
                Some(pairs) => writeln!(
                    writer,
                    "shard {} {} {} {}",
                    shard.file, shard.window_index, shard.contacts, pairs
                )?,
                None => writeln!(
                    writer,
                    "shard {} {} {}",
                    shard.file, shard.window_index, shard.contacts
                )?,
            }
        }
        Ok(())
    }

    fn parse(text: &str) -> Result<Manifest, ShardError> {
        let bad = |line: usize, message: String| ShardError::Manifest { line, message };
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, header)) if header.trim() == MANIFEST_HEADER => {}
            Some((_, header)) => {
                return Err(bad(
                    1,
                    format!("expected `{MANIFEST_HEADER}`, found `{header}`"),
                ))
            }
            None => return Err(bad(1, "empty manifest".to_string())),
        }
        let mut manifest = Manifest {
            window_secs: 0,
            contacts: 0,
            id_space: 0,
            nodes: Vec::new(),
            span_start: None,
            span_end: None,
            shards: Vec::new(),
        };
        for (idx, line) in lines {
            let line_no = idx + 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut fields = trimmed.split_ascii_whitespace();
            let keyword = fields.next().expect("non-empty line has a first token");
            fn next_num<'a>(
                fields: &mut impl Iterator<Item = &'a str>,
                line_no: usize,
                what: &str,
            ) -> Result<u64, ShardError> {
                let tok = fields.next().ok_or_else(|| ShardError::Manifest {
                    line: line_no,
                    message: format!("missing {what}"),
                })?;
                tok.parse::<u64>().map_err(|_| ShardError::Manifest {
                    line: line_no,
                    message: format!("invalid {what} `{tok}`"),
                })
            }
            match keyword {
                "window-secs" => {
                    manifest.window_secs = next_num(&mut fields, line_no, "window width")?
                }
                "contacts" => manifest.contacts = next_num(&mut fields, line_no, "contact count")?,
                "id-space" => {
                    manifest.id_space = next_num(&mut fields, line_no, "id space")? as usize
                }
                "span-start" => {
                    manifest.span_start = Some(SimTime::from_secs(next_num(
                        &mut fields,
                        line_no,
                        "span start",
                    )?))
                }
                "span-end" => {
                    manifest.span_end = Some(SimTime::from_secs(next_num(
                        &mut fields,
                        line_no,
                        "span end",
                    )?))
                }
                "nodes" => {
                    for tok in fields {
                        let id = tok
                            .parse::<u32>()
                            .map_err(|_| bad(line_no, format!("invalid node id `{tok}`")))?;
                        manifest.nodes.push(NodeId::new(id));
                    }
                }
                "shard" => {
                    let file = fields
                        .next()
                        .ok_or_else(|| bad(line_no, "missing shard file".to_string()))?
                        .to_string();
                    let window_index = next_num(&mut fields, line_no, "window index")?;
                    let contacts = next_num(&mut fields, line_no, "shard contact count")?;
                    // Fourth token (distinct pair count) is optional:
                    // manifests written before the pair sidecars existed
                    // omit it and still open.
                    let pairs = match fields.next() {
                        Some(tok) => Some(tok.parse::<u64>().map_err(|_| {
                            bad(line_no, format!("invalid shard pair count `{tok}`"))
                        })?),
                        None => None,
                    };
                    manifest.shards.push(ShardMeta {
                        file,
                        window_index,
                        contacts,
                        pairs,
                    });
                }
                other => return Err(bad(line_no, format!("unknown keyword `{other}`"))),
            }
        }
        if manifest.window_secs == 0 {
            return Err(ShardError::ZeroWindow);
        }
        let shard_total: u64 = manifest.shards.iter().map(|s| s.contacts).sum();
        if shard_total != manifest.contacts {
            return Err(bad(
                1,
                format!(
                    "shard counts sum to {shard_total} but manifest declares {} contacts",
                    manifest.contacts
                ),
            ));
        }
        Ok(manifest)
    }
}

/// A sharded trace on disk, opened through its manifest.
///
/// Summary facts (length, node set, span) come straight from the manifest;
/// [`ShardedTrace::stream`] replays contacts in event order with at most
/// one shard resident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedTrace {
    dir: PathBuf,
    manifest: Manifest,
}

impl ShardedTrace {
    /// Opens the sharded trace stored in `dir` by reading its manifest.
    ///
    /// Shard files are opened lazily, one at a time, when streaming.
    ///
    /// # Errors
    ///
    /// I/O failure reading the manifest or a malformed manifest.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ShardedTrace, ShardError> {
        let dir = dir.into();
        let path = dir.join(MANIFEST_FILE);
        let text =
            fs::read_to_string(&path).map_err(io_err(format!("reading `{}`", path.display())))?;
        let manifest = Manifest::parse(&text)?;
        Ok(ShardedTrace { dir, manifest })
    }

    /// The directory holding the manifest and shard files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Width of each time window.
    pub fn window(&self) -> SimDuration {
        SimDuration::from_secs(self.manifest.window_secs)
    }

    /// Number of shard files.
    pub fn shard_count(&self) -> usize {
        self.manifest.shards.len()
    }

    /// The shard index, in window order.
    pub fn shards(&self) -> &[ShardMeta] {
        &self.manifest.shards
    }

    /// Contact count of the fullest shard — the streaming memory bound.
    pub fn largest_shard_contacts(&self) -> u64 {
        self.manifest
            .shards
            .iter()
            .map(|s| s.contacts)
            .max()
            .unwrap_or(0)
    }

    /// Re-reads every shard file and checks its contents against the
    /// manifest index: contact counts always, and distinct-pair counts
    /// (recomputed from the contacts and cross-checked against the sidecar
    /// file) whenever the manifest carries them.
    ///
    /// The streaming replay path deliberately trusts shards once the
    /// manifest opened cleanly and panics on a mid-stream failure; this is
    /// the up-front alternative for tooling (`mbt shard-info --verify`)
    /// that wants a structured error instead.
    ///
    /// # Errors
    ///
    /// [`ShardError::Io`]/[`ShardError::Trace`] if a shard or sidecar cannot
    /// be read, [`ShardError::Corrupt`] if contents disagree with the
    /// manifest.
    pub fn verify(&self) -> Result<(), ShardError> {
        for meta in &self.manifest.shards {
            let path = self.dir.join(&meta.file);
            let file =
                File::open(&path).map_err(io_err(format!("opening `{}`", path.display())))?;
            let contacts: Vec<Contact> = ContactReader::new(file).collect::<Result<_, _>>()?;
            if contacts.len() as u64 != meta.contacts {
                return Err(ShardError::Corrupt {
                    file: meta.file.clone(),
                    message: format!(
                        "holds {} contacts but manifest declares {}",
                        contacts.len(),
                        meta.contacts
                    ),
                });
            }
            let Some(declared_pairs) = meta.pairs else {
                continue;
            };
            let mut pairs: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
            for contact in &contacts {
                pairs.extend(contact.pairs());
            }
            if pairs.len() as u64 != declared_pairs {
                return Err(ShardError::Corrupt {
                    file: meta.file.clone(),
                    message: format!(
                        "holds {} distinct pairs but manifest declares {declared_pairs}",
                        pairs.len()
                    ),
                });
            }
            let sidecar = pairs_file_name(meta.window_index);
            match self.read_pairs_sidecar(meta) {
                Some(listed) if listed == pairs => {}
                Some(_) => {
                    return Err(ShardError::Corrupt {
                        file: sidecar,
                        message: "sidecar pair set disagrees with shard contacts".to_string(),
                    })
                }
                None => {
                    return Err(ShardError::Corrupt {
                        file: sidecar,
                        message: "pair sidecar missing or unreadable".to_string(),
                    })
                }
            }
        }
        Ok(())
    }

    /// Reads one shard's pair sidecar, returning `None` when the manifest
    /// carries no pair count for it or the sidecar is missing, malformed,
    /// or disagrees with the declared count. `frequent_map` treats `None`
    /// as "derivation unavailable" and callers fall back to a streaming
    /// statistics pass, which is always correct.
    fn read_pairs_sidecar(&self, meta: &ShardMeta) -> Option<BTreeSet<(NodeId, NodeId)>> {
        let declared = meta.pairs?;
        let path = self.dir.join(pairs_file_name(meta.window_index));
        let text = fs::read_to_string(&path).ok()?;
        let mut lines = text.lines();
        if lines.next()?.trim() != PAIRS_HEADER {
            return None;
        }
        let mut pairs = BTreeSet::new();
        for line in lines {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut fields = trimmed.split_ascii_whitespace();
            let a: u32 = fields.next()?.parse().ok()?;
            let b: u32 = fields.next()?.parse().ok()?;
            pairs.insert((NodeId::new(a), NodeId::new(b)));
        }
        (pairs.len() as u64 == declared).then_some(pairs)
    }
}

impl TraceSource for ShardedTrace {
    fn len(&self) -> usize {
        self.manifest.contacts as usize
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.manifest.nodes.clone()
    }

    fn id_space(&self) -> usize {
        self.manifest.id_space
    }

    fn start_time(&self) -> Option<SimTime> {
        self.manifest.span_start
    }

    fn end_time(&self) -> Option<SimTime> {
        self.manifest.span_end
    }

    fn stream(&self) -> Box<dyn ContactStream + '_> {
        Box::new(ShardStream {
            trace: self,
            next_shard: 0,
            current: Vec::new().into_iter(),
            stats: StreamStats::default(),
        })
    }

    fn stream_prefetch(&self, depth: usize) -> Box<dyn ContactStream + '_> {
        if depth == 0 || self.manifest.shards.is_empty() {
            return self.stream();
        }
        Box::new(PrefetchStream::spawn(self, depth))
    }

    fn frequent_map(&self, every: SimDuration) -> Option<BTreeMap<NodeId, Vec<NodeId>>> {
        let every_secs = every.as_secs();
        let span_secs = TraceSource::span(self).as_secs();
        let empty_map = || {
            Some(
                self.manifest
                    .nodes
                    .iter()
                    .map(|&n| (n, Vec::new()))
                    .collect(),
            )
        };
        // A zero-length rule window or a zero-length trace yields the
        // all-empty map, exactly as `FrequentScan::finish` does.
        if every_secs == 0 || span_secs == 0 {
            return empty_map();
        }
        // The derivation needs shard windows to nest inside rule windows:
        // floor(floor(t/w)/r) == floor(t/every) exactly when every = r*w.
        if !every_secs.is_multiple_of(self.manifest.window_secs) {
            return None;
        }
        let ratio = every_secs / self.manifest.window_secs;
        let mut per_window: BTreeMap<u64, BTreeSet<(NodeId, NodeId)>> = BTreeMap::new();
        let mut union: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        for meta in &self.manifest.shards {
            let pairs = self.read_pairs_sidecar(meta)?;
            union.extend(pairs.iter().copied());
            per_window
                .entry(meta.window_index / ratio)
                .or_default()
                .extend(pairs);
        }
        // The rule enumerates windows whose start lies inside the span and
        // exempts idle ones (no shard => no contacts => never enumerated);
        // the frequent set is the intersection over the enumerated windows,
        // or — when none qualifies — vacuously every pair seen.
        let mut frequent: Option<BTreeSet<(NodeId, NodeId)>> = None;
        for (window, pairs) in per_window {
            let valid = window
                .checked_mul(every_secs)
                .is_some_and(|start| start < span_secs);
            if !valid {
                continue;
            }
            frequent = Some(match frequent {
                None => pairs,
                Some(mut prev) => {
                    prev.retain(|pair| pairs.contains(pair));
                    prev
                }
            });
        }
        let frequent = frequent.unwrap_or(union);
        let mut map: BTreeMap<NodeId, Vec<NodeId>> = self
            .manifest
            .nodes
            .iter()
            .map(|&n| (n, Vec::new()))
            .collect();
        for (a, b) in frequent {
            // Pairs iterate sorted with a < b, so peer lists come out
            // sorted, matching `FrequentScan::finish`.
            map.get_mut(&a)?.push(b);
            map.get_mut(&b)?.push(a);
        }
        Some(map)
    }
}

/// Streaming iterator over a [`ShardedTrace`]: loads one shard at a time.
///
/// Shard files are trusted once the manifest opened cleanly; a shard that
/// fails to read mid-stream panics rather than silently truncating the
/// replay (a short trace would corrupt results downstream).
#[derive(Debug)]
struct ShardStream<'a> {
    trace: &'a ShardedTrace,
    next_shard: usize,
    current: std::vec::IntoIter<Contact>,
    stats: StreamStats,
}

impl ShardStream<'_> {
    fn load_next_shard(&mut self) -> bool {
        let Some(meta) = self.trace.manifest.shards.get(self.next_shard) else {
            return false;
        };
        self.next_shard += 1;
        let path = self.trace.dir.join(&meta.file);
        let file = File::open(&path)
            .unwrap_or_else(|e| panic!("cannot open shard `{}`: {e}", path.display()));
        let contacts: Vec<Contact> = ContactReader::new(file)
            .collect::<Result<_, _>>()
            .unwrap_or_else(|e| panic!("cannot parse shard `{}`: {e}", path.display()));
        self.stats.shards_loaded += 1;
        self.stats.peak_resident_contacts =
            self.stats.peak_resident_contacts.max(contacts.len() as u64);
        self.current = contacts.into_iter();
        true
    }
}

impl Iterator for ShardStream<'_> {
    type Item = Contact;

    fn next(&mut self) -> Option<Contact> {
        loop {
            if let Some(contact) = self.current.next() {
                return Some(contact);
            }
            if !self.load_next_shard() {
                return None;
            }
        }
    }
}

impl ContactStream for ShardStream<'_> {
    fn stream_stats(&self) -> StreamStats {
        self.stats
    }
}

/// Pipelined streaming iterator over a [`ShardedTrace`]: a background
/// worker decodes up to `depth` shards ahead of the one being consumed.
///
/// The worker walks the manifest index in window order and ships each
/// decoded shard over a bounded channel, so the contact sequence is exactly
/// the serial [`ShardStream`] sequence — prefetching changes *when* shards
/// decode, never what is yielded. Decode failures travel over the channel
/// and panic at the consumption point, preserving the replay path's
/// fail-loud contract (a silently short trace would corrupt results).
///
/// Stats are modeled deterministically from the manifest rather than
/// measured from thread timing, so they are reproducible bit-for-bit:
/// after the k-th shard is taken, `shards_prefetched` is the number of
/// shards whose decode the worker is allowed to have started
/// (`min(k + depth, total)`), and `peak_resident_contacts` charges the
/// consumed shard plus every decode-ahead slot
/// (`contacts[k] + contacts[k+1..=k+depth]`) — the worst-case concurrent
/// residency the pipeline permits.
struct PrefetchStream {
    /// Per-shard contact counts from the manifest, for the residency model.
    counts: Vec<u64>,
    depth: usize,
    next_shard: usize,
    current: std::vec::IntoIter<Contact>,
    stats: StreamStats,
    rx: Option<mpsc::Receiver<Result<Vec<Contact>, String>>>,
    worker: Option<thread::JoinHandle<()>>,
}

impl fmt::Debug for PrefetchStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PrefetchStream")
            .field("depth", &self.depth)
            .field("next_shard", &self.next_shard)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl PrefetchStream {
    fn spawn(trace: &ShardedTrace, depth: usize) -> PrefetchStream {
        debug_assert!(depth > 0, "depth 0 is the serial stream");
        // Channel capacity depth-1 plus the send the worker blocks in keeps
        // at most `depth` decoded-but-unconsumed shards alive.
        let (tx, rx) = mpsc::sync_channel(depth.saturating_sub(1));
        let dir = trace.dir.clone();
        let metas = trace.manifest.shards.clone();
        let worker = thread::spawn(move || {
            for meta in &metas {
                let path = dir.join(&meta.file);
                let result = File::open(&path)
                    .map_err(|e| format!("cannot open shard `{}`: {e}", path.display()))
                    .and_then(|file| {
                        ContactReader::new(file)
                            .collect::<Result<Vec<Contact>, _>>()
                            .map_err(|e| format!("cannot parse shard `{}`: {e}", path.display()))
                    });
                let failed = result.is_err();
                if tx.send(result).is_err() {
                    return; // Receiver dropped: stream abandoned mid-replay.
                }
                if failed {
                    return;
                }
            }
        });
        PrefetchStream {
            counts: trace.manifest.shards.iter().map(|s| s.contacts).collect(),
            depth,
            next_shard: 0,
            current: Vec::new().into_iter(),
            stats: StreamStats::default(),
            rx: Some(rx),
            worker: Some(worker),
        }
    }

    fn load_next_shard(&mut self) -> bool {
        let total = self.counts.len();
        if self.next_shard >= total {
            return false;
        }
        let rx = self
            .rx
            .as_ref()
            .expect("receiver lives until the index is drained");
        let contacts = match rx.recv() {
            Ok(Ok(contacts)) => contacts,
            Ok(Err(message)) => panic!("{message}"),
            Err(_) => panic!("prefetch worker exited before draining the shard index"),
        };
        let k = self.next_shard;
        self.next_shard += 1;
        self.stats.shards_loaded += 1;
        self.stats.shards_prefetched = (k + 1 + self.depth).min(total) as u64;
        let decoded_ahead: u64 = self.counts[k + 1..(k + 1 + self.depth).min(total)]
            .iter()
            .sum();
        self.stats.peak_resident_contacts = self
            .stats
            .peak_resident_contacts
            .max(self.counts[k] + decoded_ahead);
        self.current = contacts.into_iter();
        true
    }
}

impl Iterator for PrefetchStream {
    type Item = Contact;

    fn next(&mut self) -> Option<Contact> {
        loop {
            if let Some(contact) = self.current.next() {
                return Some(contact);
            }
            if !self.load_next_shard() {
                return None;
            }
        }
    }
}

impl ContactStream for PrefetchStream {
    fn stream_stats(&self) -> StreamStats {
        self.stats
    }
}

impl Drop for PrefetchStream {
    fn drop(&mut self) {
        // Closing the channel makes the worker's next send fail, which is
        // its exit signal; joining then bounds the worker's lifetime by the
        // stream's.
        drop(self.rx.take());
        if let Some(worker) = self.worker.take() {
            worker.join().ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ContactTrace;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "dtn-shard-test-{}-{}-{}",
            tag,
            std::process::id(),
            seq
        ))
    }

    fn pc(a: u32, b: u32, start: u64, end: u64) -> Contact {
        Contact::pairwise(
            NodeId::new(a),
            NodeId::new(b),
            SimTime::from_secs(start),
            SimTime::from_secs(end),
        )
        .unwrap()
    }

    fn sample_contacts() -> Vec<Contact> {
        vec![
            pc(0, 1, 250, 400), // window 2
            pc(1, 2, 10, 20),   // window 0
            pc(2, 3, 120, 130), // window 1
            pc(0, 3, 115, 300), // window 1, crosses boundary (start decides)
            pc(4, 5, 10, 15),   // window 0, start tie with different end
        ]
    }

    fn write_sample(dir: &Path) -> ShardedTrace {
        let mut writer = ShardWriter::create(dir, SimDuration::from_secs(100)).unwrap();
        for contact in sample_contacts() {
            writer.push_contact(contact);
        }
        writer.finish().unwrap()
    }

    #[test]
    fn round_trip_matches_in_memory_sort() {
        let dir = temp_dir("round-trip");
        let sharded = write_sample(&dir);
        let in_memory: ContactTrace = sample_contacts().into_iter().collect();
        let streamed: Vec<Contact> = TraceSource::stream(&sharded).collect();
        assert_eq!(streamed, in_memory.contacts());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_facts_match_in_memory_facts() {
        let dir = temp_dir("facts");
        let sharded = write_sample(&dir);
        let in_memory: ContactTrace = sample_contacts().into_iter().collect();
        assert_eq!(TraceSource::len(&sharded), in_memory.len());
        assert_eq!(TraceSource::nodes(&sharded), in_memory.nodes());
        assert_eq!(TraceSource::id_space(&sharded), in_memory.id_space());
        assert_eq!(TraceSource::start_time(&sharded), in_memory.start_time());
        assert_eq!(TraceSource::end_time(&sharded), in_memory.end_time());
        assert_eq!(TraceSource::span(&sharded), in_memory.span());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_equals_writer_result() {
        let dir = temp_dir("reopen");
        let written = write_sample(&dir);
        let reopened = ShardedTrace::open(&dir).unwrap();
        assert_eq!(written, reopened);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_stats_bound_by_largest_shard() {
        let dir = temp_dir("stats");
        let sharded = write_sample(&dir);
        let mut stream = TraceSource::stream(&sharded);
        while stream.next().is_some() {}
        let stats = stream.stream_stats();
        assert_eq!(stats.shards_loaded, sharded.shard_count() as u64);
        assert_eq!(
            stats.peak_resident_contacts,
            sharded.largest_shard_contacts()
        );
        // 5 contacts over 3 windows: the bound is strictly below the total.
        assert!(stats.peak_resident_contacts < TraceSource::len(&sharded) as u64);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finish_is_byte_identical_for_any_job_count() {
        let mut outputs: Vec<Vec<(String, String)>> = Vec::new();
        for jobs in [1usize, 2, 7] {
            let dir = temp_dir(&format!("jobs-{jobs}"));
            let mut writer = ShardWriter::create(&dir, SimDuration::from_secs(100))
                .unwrap()
                .jobs(jobs);
            for contact in sample_contacts() {
                writer.push_contact(contact);
            }
            writer.finish().unwrap();
            let mut files: Vec<(String, String)> = fs::read_dir(&dir)
                .unwrap()
                .map(|e| {
                    let path = e.unwrap().path();
                    let name = path.file_name().unwrap().to_string_lossy().into_owned();
                    (name, fs::read_to_string(&path).unwrap())
                })
                .collect();
            files.sort();
            outputs.push(files);
            fs::remove_dir_all(&dir).ok();
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
    }

    #[test]
    fn partially_consumed_stream_reports_only_loaded_shards() {
        // A stream abandoned mid-replay (a simulation horizon cutting the
        // run short) must report the shards it actually faulted in, not the
        // whole index: the load counter increments per load, never ahead.
        let dir = temp_dir("partial");
        let sharded = write_sample(&dir); // 5 contacts over 3 shards
        let mut stream = TraceSource::stream(&sharded);
        assert!(stream.next().is_some(), "first contact comes from shard 0");
        let stats = stream.stream_stats();
        assert_eq!(stats.shards_loaded, 1, "only one shard was faulted in");
        assert_eq!(
            stats.shards_prefetched, 0,
            "the serial stream never decodes ahead"
        );
        assert!(stats.peak_resident_contacts >= 1);
        assert!((stats.shards_loaded as usize) < sharded.shard_count());
        // Draining the rest brings the count up to the full index.
        while stream.next().is_some() {}
        assert_eq!(
            stream.stream_stats().shards_loaded,
            sharded.shard_count() as u64
        );

        // Prefetch mode: same one-load partial accounting, plus the
        // decode-ahead model — depth 1 means shard 1 is charged as resident
        // alongside shard 0 and counted as prefetched.
        let mut stream = sharded.stream_prefetch(1);
        assert!(stream.next().is_some());
        let stats = stream.stream_stats();
        assert_eq!(stats.shards_loaded, 1);
        assert_eq!(
            stats.shards_prefetched, 2,
            "shard 0 taken + shard 1 decoding ahead"
        );
        let counts: Vec<u64> = sharded.shards().iter().map(|s| s.contacts).collect();
        assert_eq!(
            stats.peak_resident_contacts,
            counts[0] + counts[1],
            "both resident shards are charged"
        );
        while stream.next().is_some() {}
        let stats = stream.stream_stats();
        assert_eq!(stats.shards_loaded, sharded.shard_count() as u64);
        assert_eq!(
            stats.shards_prefetched,
            sharded.shard_count() as u64,
            "a drained pipeline prefetched exactly the whole index"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prefetch_yields_the_exact_serial_sequence_at_any_depth() {
        let dir = temp_dir("prefetch-eq");
        let sharded = write_sample(&dir);
        let serial: Vec<Contact> = TraceSource::stream(&sharded).collect();
        for depth in [0usize, 1, 2, 10] {
            let prefetched: Vec<Contact> = sharded.stream_prefetch(depth).collect();
            assert_eq!(prefetched, serial, "depth {depth} changed the sequence");
        }
        // Depth beyond the index caps the model at the index size.
        let mut stream = sharded.stream_prefetch(10);
        assert!(stream.next().is_some());
        assert_eq!(
            stream.stream_stats().shards_prefetched,
            sharded.shard_count() as u64
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dropping_a_partially_consumed_prefetch_stream_joins_the_worker() {
        let dir = temp_dir("prefetch-drop");
        let sharded = write_sample(&dir);
        let mut stream = sharded.stream_prefetch(2);
        assert!(stream.next().is_some());
        drop(stream); // Must not hang or leak the worker thread.
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writer_emits_pair_sidecars_and_counts() {
        let dir = temp_dir("pairs");
        let sharded = write_sample(&dir);
        for meta in sharded.shards() {
            let pairs = meta.pairs.expect("writer records pair counts");
            let text = fs::read_to_string(dir.join(pairs_file_name(meta.window_index))).unwrap();
            let mut lines = text.lines();
            assert_eq!(lines.next().unwrap(), PAIRS_HEADER);
            assert_eq!(lines.count() as u64, pairs);
        }
        assert!(sharded.verify().is_ok());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_reports_corrupt_shards_structurally() {
        let dir = temp_dir("verify");
        let sharded = write_sample(&dir);
        // Truncate shard 0 behind the manifest's back.
        let victim = dir.join(&sharded.shards()[0].file);
        fs::write(&victim, "# dtn-trace v1\n").unwrap();
        let err = sharded.verify().unwrap_err();
        assert!(
            matches!(err, ShardError::Corrupt { .. }),
            "expected Corrupt, got {err}"
        );
        assert!(err.to_string().contains("manifest declares"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_frequent_map_matches_streaming_scan() {
        let dir = temp_dir("freq-map");
        let sharded = write_sample(&dir); // 100 s windows, span 390 s
        for every_secs in [0u64, 100, 200, 300, 500, 86_400] {
            let every = SimDuration::from_secs(every_secs);
            let mut scan = crate::stats::FrequentScan::new(every);
            for contact in TraceSource::stream(&sharded) {
                scan.observe(&contact);
            }
            assert_eq!(
                TraceSource::frequent_map(&sharded, every),
                Some(scan.finish()),
                "derived map diverged at every={every_secs}s"
            );
        }
        // Rule windows that do not align with the shard window cannot be
        // derived; callers fall back to the streaming pass.
        assert_eq!(
            TraceSource::frequent_map(&sharded, SimDuration::from_secs(150)),
            None
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifests_without_pair_counts_still_open_but_skip_derivation() {
        let dir = temp_dir("legacy-manifest");
        let sharded = write_sample(&dir);
        // Rewrite the manifest the way the pre-sidecar writer did: drop the
        // fourth shard-line token.
        let manifest_path = dir.join(MANIFEST_FILE);
        let stripped: String = fs::read_to_string(&manifest_path)
            .unwrap()
            .lines()
            .map(|line| {
                if line.starts_with("shard ") {
                    let fields: Vec<&str> = line.split_ascii_whitespace().collect();
                    format!("{} {} {} {}\n", fields[0], fields[1], fields[2], fields[3])
                } else {
                    format!("{line}\n")
                }
            })
            .collect();
        fs::write(&manifest_path, stripped).unwrap();
        let legacy = ShardedTrace::open(&dir).unwrap();
        assert!(legacy.shards().iter().all(|s| s.pairs.is_none()));
        assert_eq!(
            TraceSource::frequent_map(&legacy, SimDuration::from_secs(100)),
            None
        );
        // Verification still checks what the manifest does declare.
        assert!(legacy.verify().is_ok());
        // And the degenerate rule needs no aggregates at all.
        let empty = TraceSource::frequent_map(&legacy, SimDuration::ZERO).unwrap();
        assert!(empty.values().all(|peers| peers.is_empty()));
        assert_eq!(empty.len(), TraceSource::nodes(&sharded).len());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_writer_produces_empty_trace() {
        let dir = temp_dir("empty");
        let writer = ShardWriter::create(&dir, SimDuration::from_secs(60)).unwrap();
        assert!(writer.is_empty());
        let sharded = writer.finish().unwrap();
        assert!(TraceSource::is_empty(&sharded));
        assert_eq!(TraceSource::start_time(&sharded), None);
        assert_eq!(TraceSource::span(&sharded), SimDuration::ZERO);
        assert_eq!(TraceSource::stream(&sharded).count(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_window_is_rejected() {
        let dir = temp_dir("zero-window");
        assert!(matches!(
            ShardWriter::create(&dir, SimDuration::ZERO),
            Err(ShardError::ZeroWindow)
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_missing_dir_fails() {
        let dir = temp_dir("missing");
        assert!(matches!(
            ShardedTrace::open(&dir),
            Err(ShardError::Io { .. })
        ));
    }

    #[test]
    fn manifest_rejects_bad_header_and_count_mismatch() {
        let err = Manifest::parse("# not-a-shard\n").unwrap_err();
        assert!(matches!(err, ShardError::Manifest { line: 1, .. }));

        let text = "# dtn-shard v1\nwindow-secs 60\ncontacts 5\n\
                    shard shard-00000.txt 0 2\n";
        let err = Manifest::parse(text).unwrap_err();
        assert!(err.to_string().contains("sum to 2"));
    }

    #[test]
    fn manifest_rejects_unknown_keyword() {
        let text = "# dtn-shard v1\nwindow-secs 60\nwarp 9\n";
        let err = Manifest::parse(text).unwrap_err();
        assert!(matches!(err, ShardError::Manifest { line: 3, .. }));
    }

    #[test]
    fn shard_files_are_valid_standalone_traces() {
        let dir = temp_dir("standalone");
        let sharded = write_sample(&dir);
        let first = &sharded.shards()[0];
        let file = File::open(dir.join(&first.file)).unwrap();
        let trace = crate::parser::read_trace(file).unwrap();
        assert_eq!(trace.len() as u64, first.contacts);
        fs::remove_dir_all(&dir).ok();
    }
}
