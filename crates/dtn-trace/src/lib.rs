//! Contact-trace model and trace generators for delay tolerant networks (DTNs).
//!
//! A DTN is an occasionally-connected network that suffers from frequent
//! partition; communication happens over *contacts* — periods of time during
//! which two (or more) nodes can exchange messages. This crate provides:
//!
//! - the basic vocabulary types ([`NodeId`], [`SimTime`], [`SimDuration`],
//!   [`Contact`]),
//! - a time-sorted contact container ([`ContactTrace`]) with statistics
//!   ([`stats`]) including the *frequent contacting node* detection used by
//!   the MBT paper,
//! - synthetic trace generators ([`generators`]) reproducing the shapes of the
//!   UMassDieselNet bus trace (pair-wise contacts) and the NUS student contact
//!   trace (classroom cliques),
//! - a space-time graph ([`space_time`]) for reachability and
//!   earliest-delivery analysis,
//! - a plain-text serialization format ([`parser`]), and
//! - a streaming abstraction ([`TraceSource`]) with an on-disk sharded
//!   backend ([`shard`]) that replays arbitrarily large traces with at most
//!   one time-window shard resident in memory.
//!
//! # Example
//!
//! ```
//! use dtn_trace::{Contact, ContactTrace, NodeId, SimTime};
//!
//! let mut builder = ContactTrace::builder();
//! builder.push(Contact::pairwise(
//!     NodeId::new(0),
//!     NodeId::new(1),
//!     SimTime::from_secs(10),
//!     SimTime::from_secs(40),
//! )?);
//! let trace = builder.build();
//! assert_eq!(trace.len(), 1);
//! assert_eq!(trace.node_count(), 2);
//! # Ok::<(), dtn_trace::ContactError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aggregate;
pub mod contact;
pub mod generators;
pub mod node;
pub mod parser;
pub mod perturb;
pub mod shard;
pub mod source;
pub mod space_time;
pub mod stats;
pub mod time;
pub mod trace;

pub use aggregate::AggregateGraph;
pub use contact::{Contact, ContactError, ContactKind};
pub use node::NodeId;
pub use parser::{read_trace, write_trace, ContactReader, ParseTraceError};
pub use perturb::Perturbation;
pub use shard::{ShardError, ShardWriter, ShardedTrace};
pub use source::{ContactStream, StreamStats, TraceSource};
pub use space_time::SpaceTimeGraph;
pub use stats::{FrequentScan, TraceStats};
pub use time::{SimDuration, SimTime, SECONDS_PER_DAY};
pub use trace::{ContactSink, ContactTrace, TraceBuilder};
