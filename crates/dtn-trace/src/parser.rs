//! Plain-text trace serialization.
//!
//! Traces are stored one contact per line:
//!
//! ```text
//! # dtn-trace v1
//! contact <start-secs> <end-secs> <node> <node> [<node> ...]
//! ```
//!
//! Blank lines and lines starting with `#` are ignored. The format is stable
//! across versions of this crate, diff-friendly, and easy to produce from
//! external trace-conversion scripts.

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

use crate::contact::{Contact, ContactError};
use crate::node::NodeId;
use crate::time::SimTime;
use crate::trace::ContactTrace;

/// Error produced when reading a trace from text.
#[derive(Debug)]
pub enum ParseTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A line parsed but described an invalid contact.
    InvalidContact {
        /// 1-based line number.
        line: usize,
        /// The underlying validation error.
        source: ContactError,
    },
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ParseTraceError::Syntax { line, message } => {
                write!(f, "syntax error on line {line}: {message}")
            }
            ParseTraceError::InvalidContact { line, source } => {
                write!(f, "invalid contact on line {line}: {source}")
            }
        }
    }
}

impl Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseTraceError::Io(e) => Some(e),
            ParseTraceError::InvalidContact { source, .. } => Some(source),
            ParseTraceError::Syntax { .. } => None,
        }
    }
}

impl From<io::Error> for ParseTraceError {
    fn from(e: io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

/// Writes `trace` in the text format.
///
/// A `&mut` reference to a writer also works, per the standard blanket impls.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
///
/// # Example
///
/// ```
/// use dtn_trace::{Contact, ContactTrace, NodeId, SimTime, write_trace, read_trace};
///
/// let trace: ContactTrace = vec![
///     Contact::pairwise(NodeId::new(0), NodeId::new(1), SimTime::from_secs(5), SimTime::from_secs(9))?,
/// ].into_iter().collect();
///
/// let mut buf = Vec::new();
/// write_trace(&mut buf, &trace)?;
/// let round_tripped = read_trace(buf.as_slice())?;
/// assert_eq!(round_tripped, trace);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_trace<W: Write>(mut writer: W, trace: &ContactTrace) -> io::Result<()> {
    writeln!(writer, "# dtn-trace v1")?;
    for contact in trace.iter() {
        write!(
            writer,
            "contact {} {}",
            contact.start().as_secs(),
            contact.end().as_secs()
        )?;
        for node in contact.participants() {
            write!(writer, " {}", node.raw())?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Reads a trace in the text format.
///
/// A `&mut` reference to a reader also works, per the standard blanket impls.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on I/O failure, malformed lines, or lines
/// describing invalid contacts (empty interval, duplicate node, singleton).
pub fn read_trace<R: Read>(reader: R) -> Result<ContactTrace, ParseTraceError> {
    let mut builder = ContactTrace::builder();
    for contact in ContactReader::new(reader) {
        builder.push(contact?);
    }
    Ok(builder.build())
}

/// Streaming reader over the text format: yields one [`Contact`] at a time
/// without buffering the whole trace. Comments and blank lines are skipped;
/// errors carry 1-based line numbers. After the first error the iterator
/// is exhausted.
#[derive(Debug)]
pub struct ContactReader<R> {
    lines: std::io::Lines<BufReader<R>>,
    line_no: usize,
    failed: bool,
}

impl<R: Read> ContactReader<R> {
    /// Wraps `reader` for streaming parsing.
    pub fn new(reader: R) -> Self {
        ContactReader {
            lines: BufReader::new(reader).lines(),
            line_no: 0,
            failed: false,
        }
    }

    fn parse_line(&self, trimmed: &str) -> Result<Contact, ParseTraceError> {
        let line_no = self.line_no;
        let mut fields = trimmed.split_ascii_whitespace();
        let keyword = fields.next().expect("non-empty line has a first token");
        if keyword != "contact" {
            return Err(ParseTraceError::Syntax {
                line: line_no,
                message: format!("expected `contact`, found `{keyword}`"),
            });
        }
        let start = parse_u64(fields.next(), line_no, "start time")?;
        let end = parse_u64(fields.next(), line_no, "end time")?;
        let nodes: Vec<NodeId> = fields
            .map(|tok| {
                tok.parse::<u32>()
                    .map(NodeId::new)
                    .map_err(|_| ParseTraceError::Syntax {
                        line: line_no,
                        message: format!("invalid node id `{tok}`"),
                    })
            })
            .collect::<Result<_, _>>()?;
        Contact::clique(nodes, SimTime::from_secs(start), SimTime::from_secs(end)).map_err(
            |source| ParseTraceError::InvalidContact {
                line: line_no,
                source,
            },
        )
    }
}

impl<R: Read> Iterator for ContactReader<R> {
    type Item = Result<Contact, ParseTraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            let line = match self.lines.next()? {
                Ok(line) => line,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e.into()));
                }
            };
            self.line_no += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let result = self.parse_line(trimmed);
            if result.is_err() {
                self.failed = true;
            }
            return Some(result);
        }
    }
}

fn parse_u64(tok: Option<&str>, line: usize, what: &str) -> Result<u64, ParseTraceError> {
    let tok = tok.ok_or_else(|| ParseTraceError::Syntax {
        line,
        message: format!("missing {what}"),
    })?;
    tok.parse::<u64>().map_err(|_| ParseTraceError::Syntax {
        line,
        message: format!("invalid {what} `{tok}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> ContactTrace {
        vec![
            Contact::pairwise(
                NodeId::new(0),
                NodeId::new(1),
                SimTime::from_secs(5),
                SimTime::from_secs(9),
            )
            .unwrap(),
            Contact::clique(
                vec![NodeId::new(2), NodeId::new(3), NodeId::new(4)],
                SimTime::from_secs(10),
                SimTime::from_secs(40),
            )
            .unwrap(),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn round_trip() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let parsed = read_trace(buf.as_slice()).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn ignores_comments_and_blanks() {
        let text = "# header\n\n  \ncontact 0 10 1 2\n# trailing\n";
        let trace = read_trace(text.as_bytes()).unwrap();
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn rejects_unknown_keyword() {
        let err = read_trace("link 0 10 1 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseTraceError::Syntax { line: 1, .. }));
        assert!(err.to_string().contains("link"));
    }

    #[test]
    fn rejects_missing_fields() {
        let err = read_trace("contact 0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("end time"));
    }

    #[test]
    fn rejects_bad_node_id() {
        let err = read_trace("contact 0 10 1 x\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("node id"));
    }

    #[test]
    fn rejects_invalid_contact_with_line_number() {
        let err = read_trace("contact 0 10 1 2\ncontact 10 5 1 2\n".as_bytes()).unwrap_err();
        match err {
            ParseTraceError::InvalidContact { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn error_source_is_chained() {
        use std::error::Error as _;
        let err = read_trace("contact 10 5 1 2\n".as_bytes()).unwrap_err();
        assert!(err.source().is_some());
    }

    #[test]
    fn empty_input_is_empty_trace() {
        let trace = read_trace("".as_bytes()).unwrap();
        assert!(trace.is_empty());
    }

    #[test]
    fn streaming_reader_yields_contacts_in_file_order() {
        let text = "# header\ncontact 10 20 1 2\n\ncontact 0 5 3 4\n";
        let contacts: Vec<Contact> = ContactReader::new(text.as_bytes())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(contacts.len(), 2);
        // File order, not sorted order — sorting is the caller's job.
        assert_eq!(contacts[0].start().as_secs(), 10);
        assert_eq!(contacts[1].start().as_secs(), 0);
    }

    #[test]
    fn streaming_reader_stops_after_first_error() {
        let text = "contact 0 10 1 2\nbogus line\ncontact 20 30 1 2\n";
        let mut reader = ContactReader::new(text.as_bytes());
        assert!(reader.next().unwrap().is_ok());
        let err = reader.next().unwrap().unwrap_err();
        assert!(matches!(err, ParseTraceError::Syntax { line: 2, .. }));
        assert!(reader.next().is_none());
    }
}
