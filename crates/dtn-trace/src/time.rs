//! Simulation time.
//!
//! DTN traces span days; the MBT paper's workload is organized around a daily
//! cycle (new files are generated on the Internet every day at noon, and file
//! time-to-live is measured in days). Time is therefore kept in *integer
//! seconds* — exact arithmetic keeps simulations deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Number of seconds in one simulated day.
pub const SECONDS_PER_DAY: u64 = 86_400;

/// An absolute instant on the simulation clock, in whole seconds since the
/// start of the simulation.
///
/// # Example
///
/// ```
/// use dtn_trace::{SimDuration, SimTime};
///
/// let noon_day_two = SimTime::from_days(2) + SimDuration::from_hours(12);
/// assert_eq!(noon_day_two.day(), 2);
/// assert_eq!(noon_day_two.second_of_day(), 12 * 3600);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in whole seconds.
///
/// # Example
///
/// ```
/// use dtn_trace::SimDuration;
///
/// let d = SimDuration::from_days(1) + SimDuration::from_secs(30);
/// assert_eq!(d.as_secs(), 86_430);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Creates an instant at midnight of the given day (day 0 = start).
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * SECONDS_PER_DAY)
    }

    /// Seconds since simulation start.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The day this instant falls in (day 0 = the first day).
    pub const fn day(self) -> u64 {
        self.0 / SECONDS_PER_DAY
    }

    /// Seconds elapsed since the most recent midnight.
    pub const fn second_of_day(self) -> u64 {
        self.0 % SECONDS_PER_DAY
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since called with a later instant"),
        )
    }

    /// Time elapsed since `earlier`, or `None` if `earlier` is later.
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Adds a duration, saturating at the maximum representable instant.
    pub fn saturating_add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Subtracts a duration, saturating at time zero.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// Creates a duration from minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60)
    }

    /// Creates a duration from hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600)
    }

    /// Creates a duration from days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * SECONDS_PER_DAY)
    }

    /// The duration in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The duration in fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / SECONDS_PER_DAY as f64
    }

    /// True if this is the zero-length duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day = self.day();
        let rem = self.second_of_day();
        write!(
            f,
            "d{}+{:02}:{:02}:{:02}",
            day,
            rem / 3600,
            (rem % 3600) / 60,
            rem % 60
        )
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_and_second_of_day() {
        let t = SimTime::from_days(3) + SimDuration::from_hours(5);
        assert_eq!(t.day(), 3);
        assert_eq!(t.second_of_day(), 5 * 3600);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
    }

    #[test]
    fn duration_since_works() {
        let a = SimTime::from_secs(100);
        let b = SimTime::from_secs(250);
        assert_eq!(b.duration_since(a), SimDuration::from_secs(150));
        assert_eq!(a.checked_duration_since(b), None);
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn duration_since_panics_when_reversed() {
        let a = SimTime::from_secs(100);
        let b = SimTime::from_secs(250);
        let _ = a.duration_since(b);
    }

    #[test]
    fn saturating_ops() {
        let t = SimTime::from_secs(10);
        assert_eq!(t.saturating_sub(SimDuration::from_secs(20)), SimTime::ZERO);
        assert_eq!(
            SimTime::from_secs(u64::MAX).saturating_add(SimDuration::from_secs(1)),
            SimTime::from_secs(u64::MAX)
        );
    }

    #[test]
    fn arithmetic_round_trip() {
        let t = SimTime::from_secs(500);
        let d = SimDuration::from_secs(123);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_days(1) + SimDuration::from_secs(3 * 3600 + 4 * 60 + 5);
        assert_eq!(t.to_string(), "d1+03:04:05");
        assert_eq!(SimDuration::from_secs(9).to_string(), "9s");
    }

    #[test]
    fn as_days_f64_is_fractional() {
        let d = SimDuration::from_hours(12);
        assert!((d.as_days_f64() - 0.5).abs() < 1e-12);
    }
}
