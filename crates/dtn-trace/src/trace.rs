//! Time-sorted contact containers.

use std::collections::BTreeSet;
use std::fmt;

use crate::contact::Contact;
use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};

/// An immutable, time-sorted sequence of [`Contact`]s — a DTN trace.
///
/// Contacts are sorted by start time (ties broken by end time, then by
/// participants), which is the order a discrete-event simulator consumes them
/// in. Build one with [`ContactTrace::builder`] or collect from an iterator.
///
/// # Example
///
/// ```
/// use dtn_trace::{Contact, ContactTrace, NodeId, SimTime};
///
/// let trace: ContactTrace = vec![
///     Contact::pairwise(NodeId::new(0), NodeId::new(1), SimTime::from_secs(50), SimTime::from_secs(60))?,
///     Contact::pairwise(NodeId::new(1), NodeId::new(2), SimTime::from_secs(10), SimTime::from_secs(20))?,
/// ]
/// .into_iter()
/// .collect();
///
/// assert_eq!(trace.len(), 2);
/// // Sorted by start time:
/// assert_eq!(trace.contacts()[0].start(), SimTime::from_secs(10));
/// # Ok::<(), dtn_trace::ContactError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ContactTrace {
    contacts: Vec<Contact>,
}

/// Incremental builder for [`ContactTrace`].
///
/// Accepts contacts in any order; [`TraceBuilder::build`] sorts them.
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    contacts: Vec<Contact>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Adds one contact.
    pub fn push(&mut self, contact: Contact) -> &mut Self {
        self.contacts.push(contact);
        self
    }

    /// Adds many contacts.
    pub fn extend<I: IntoIterator<Item = Contact>>(&mut self, contacts: I) -> &mut Self {
        self.contacts.extend(contacts);
        self
    }

    /// Number of contacts added so far.
    pub fn len(&self) -> usize {
        self.contacts.len()
    }

    /// True if no contacts have been added.
    pub fn is_empty(&self) -> bool {
        self.contacts.is_empty()
    }

    /// Finishes the trace, sorting contacts into event order.
    ///
    /// Consumes the builder so the contact buffer moves into the trace
    /// without a copy. Use [`TraceBuilder::build_cloned`] to keep the
    /// builder alive for further pushes.
    pub fn build(mut self) -> ContactTrace {
        sort_contacts(&mut self.contacts);
        ContactTrace {
            contacts: self.contacts,
        }
    }

    /// Like [`TraceBuilder::build`] but leaves the builder intact, at the
    /// cost of cloning the contact buffer.
    pub fn build_cloned(&self) -> ContactTrace {
        let mut contacts = self.contacts.clone();
        sort_contacts(&mut contacts);
        ContactTrace { contacts }
    }
}

/// A destination for generated contacts.
///
/// Generators emit through this trait so the same generation code can fill
/// an in-memory [`TraceBuilder`] or stream straight to on-disk shards
/// (`ShardWriter`) without ever materializing the full trace.
pub trait ContactSink {
    /// Accepts one contact, in any order.
    fn push_contact(&mut self, contact: Contact);
}

impl ContactSink for TraceBuilder {
    fn push_contact(&mut self, contact: Contact) {
        self.push(contact);
    }
}

/// Sorts contacts into event order: start time, then end time, then
/// participants. This is the one canonical order — shard files use it too,
/// so concatenating time-windowed shards reproduces the in-memory order.
pub(crate) fn sort_contacts(contacts: &mut [Contact]) {
    contacts.sort_by(|a, b| {
        a.start()
            .cmp(&b.start())
            .then(a.end().cmp(&b.end()))
            .then_with(|| a.participants().cmp(b.participants()))
    });
}

impl ContactTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        ContactTrace::default()
    }

    /// Returns a builder.
    pub fn builder() -> TraceBuilder {
        TraceBuilder::new()
    }

    /// The contacts, sorted by start time.
    pub fn contacts(&self) -> &[Contact] {
        &self.contacts
    }

    /// Iterates over contacts in event order.
    pub fn iter(&self) -> std::slice::Iter<'_, Contact> {
        self.contacts.iter()
    }

    /// Number of contacts.
    pub fn len(&self) -> usize {
        self.contacts.len()
    }

    /// True if the trace has no contacts.
    pub fn is_empty(&self) -> bool {
        self.contacts.is_empty()
    }

    /// The set of all node ids appearing in any contact, sorted.
    pub fn nodes(&self) -> Vec<NodeId> {
        let set: BTreeSet<NodeId> = self
            .contacts
            .iter()
            .flat_map(|c| c.participants().iter().copied())
            .collect();
        set.into_iter().collect()
    }

    /// Number of distinct nodes in the trace.
    pub fn node_count(&self) -> usize {
        self.nodes().len()
    }

    /// Largest node id plus one, or zero if the trace is empty.
    ///
    /// Useful for sizing dense per-node vectors.
    pub fn id_space(&self) -> usize {
        self.contacts
            .iter()
            .flat_map(|c| c.participants().iter())
            .map(|n| n.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// First contact start time, if any.
    pub fn start_time(&self) -> Option<SimTime> {
        self.contacts.first().map(|c| c.start())
    }

    /// Latest contact end time, if any.
    pub fn end_time(&self) -> Option<SimTime> {
        self.contacts.iter().map(|c| c.end()).max()
    }

    /// Total time covered from first start to last end.
    pub fn span(&self) -> SimDuration {
        match (self.start_time(), self.end_time()) {
            (Some(s), Some(e)) => e.duration_since(s),
            _ => SimDuration::ZERO,
        }
    }

    /// Contacts whose start lies in `[from, to)`, preserving order.
    pub fn window(&self, from: SimTime, to: SimTime) -> ContactTrace {
        let contacts = self
            .contacts
            .iter()
            .filter(|c| from <= c.start() && c.start() < to)
            .cloned()
            .collect();
        ContactTrace { contacts }
    }

    /// Contacts involving `node`, preserving order.
    pub fn involving(&self, node: NodeId) -> ContactTrace {
        let contacts = self
            .contacts
            .iter()
            .filter(|c| c.involves(node))
            .cloned()
            .collect();
        ContactTrace { contacts }
    }

    /// Merges two traces into one sorted trace.
    pub fn merge(&self, other: &ContactTrace) -> ContactTrace {
        let mut contacts: Vec<Contact> = self
            .contacts
            .iter()
            .chain(other.contacts.iter())
            .cloned()
            .collect();
        sort_contacts(&mut contacts);
        ContactTrace { contacts }
    }
}

impl FromIterator<Contact> for ContactTrace {
    fn from_iter<I: IntoIterator<Item = Contact>>(iter: I) -> Self {
        let mut contacts: Vec<Contact> = iter.into_iter().collect();
        sort_contacts(&mut contacts);
        ContactTrace { contacts }
    }
}

impl Extend<Contact> for ContactTrace {
    fn extend<I: IntoIterator<Item = Contact>>(&mut self, iter: I) {
        self.contacts.extend(iter);
        sort_contacts(&mut self.contacts);
    }
}

impl<'a> IntoIterator for &'a ContactTrace {
    type Item = &'a Contact;
    type IntoIter = std::slice::Iter<'a, Contact>;

    fn into_iter(self) -> Self::IntoIter {
        self.contacts.iter()
    }
}

impl IntoIterator for ContactTrace {
    type Item = Contact;
    type IntoIter = std::vec::IntoIter<Contact>;

    fn into_iter(self) -> Self::IntoIter {
        self.contacts.into_iter()
    }
}

impl fmt::Display for ContactTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace[{} contacts, {} nodes, span {}]",
            self.len(),
            self.node_count(),
            self.span()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pc(a: u32, b: u32, start: u64, end: u64) -> Contact {
        Contact::pairwise(
            NodeId::new(a),
            NodeId::new(b),
            SimTime::from_secs(start),
            SimTime::from_secs(end),
        )
        .unwrap()
    }

    #[test]
    fn builder_sorts_by_start() {
        let mut b = ContactTrace::builder();
        b.push(pc(0, 1, 100, 110));
        b.push(pc(1, 2, 5, 10));
        b.push(pc(2, 3, 50, 60));
        let t = b.build();
        let starts: Vec<u64> = t.iter().map(|c| c.start().as_secs()).collect();
        assert_eq!(starts, vec![5, 50, 100]);
    }

    #[test]
    fn build_cloned_keeps_builder_usable() {
        let mut b = ContactTrace::builder();
        b.push(pc(0, 1, 9, 10));
        let first = b.build_cloned();
        assert_eq!(first.len(), 1);
        b.push(pc(1, 2, 1, 2));
        let second = b.build();
        assert_eq!(second.len(), 2);
        assert_eq!(second.contacts()[0].start().as_secs(), 1);
    }

    #[test]
    fn contact_sink_feeds_builder() {
        let mut b = ContactTrace::builder();
        ContactSink::push_contact(&mut b, pc(0, 1, 5, 6));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn collect_sorts_too() {
        let t: ContactTrace = vec![pc(0, 1, 9, 10), pc(0, 1, 1, 2)].into_iter().collect();
        assert_eq!(t.contacts()[0].start().as_secs(), 1);
    }

    #[test]
    fn ties_broken_deterministically() {
        let a = pc(0, 1, 10, 20);
        let b = pc(2, 3, 10, 20);
        let t1: ContactTrace = vec![a.clone(), b.clone()].into_iter().collect();
        let t2: ContactTrace = vec![b, a].into_iter().collect();
        assert_eq!(t1, t2);
    }

    #[test]
    fn nodes_and_counts() {
        let t: ContactTrace = vec![pc(0, 5, 0, 1), pc(5, 9, 2, 3)].into_iter().collect();
        assert_eq!(
            t.nodes(),
            vec![NodeId::new(0), NodeId::new(5), NodeId::new(9)]
        );
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.id_space(), 10);
    }

    #[test]
    fn empty_trace_properties() {
        let t = ContactTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.node_count(), 0);
        assert_eq!(t.id_space(), 0);
        assert_eq!(t.start_time(), None);
        assert_eq!(t.span(), SimDuration::ZERO);
    }

    #[test]
    fn span_covers_first_to_last() {
        let t: ContactTrace = vec![pc(0, 1, 10, 100), pc(1, 2, 20, 30)]
            .into_iter()
            .collect();
        assert_eq!(t.span(), SimDuration::from_secs(90));
        assert_eq!(t.end_time(), Some(SimTime::from_secs(100)));
    }

    #[test]
    fn window_filters_by_start() {
        let t: ContactTrace = vec![pc(0, 1, 5, 50), pc(1, 2, 20, 30), pc(2, 3, 40, 45)]
            .into_iter()
            .collect();
        let w = t.window(SimTime::from_secs(10), SimTime::from_secs(40));
        assert_eq!(w.len(), 1);
        assert_eq!(w.contacts()[0].start().as_secs(), 20);
    }

    #[test]
    fn involving_filters_by_node() {
        let t: ContactTrace = vec![pc(0, 1, 0, 1), pc(1, 2, 2, 3), pc(2, 3, 4, 5)]
            .into_iter()
            .collect();
        let sub = t.involving(NodeId::new(1));
        assert_eq!(sub.len(), 2);
    }

    #[test]
    fn merge_is_sorted() {
        let a: ContactTrace = vec![pc(0, 1, 10, 20)].into_iter().collect();
        let b: ContactTrace = vec![pc(1, 2, 5, 6)].into_iter().collect();
        let m = a.merge(&b);
        assert_eq!(m.len(), 2);
        assert_eq!(m.contacts()[0].start().as_secs(), 5);
    }

    #[test]
    fn extend_keeps_sorted() {
        let mut t: ContactTrace = vec![pc(0, 1, 10, 20)].into_iter().collect();
        t.extend(vec![pc(1, 2, 1, 2)]);
        assert_eq!(t.contacts()[0].start().as_secs(), 1);
    }

    #[test]
    fn display_summarizes() {
        let t: ContactTrace = vec![pc(0, 1, 0, 10)].into_iter().collect();
        assert!(t.to_string().contains("1 contacts"));
    }
}
