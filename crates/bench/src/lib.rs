//! Criterion benchmarks for the MBT reproduction live in `benches/`:
//!
//! - `substrate` — clique detection, event queue, trace generation,
//!   space-time reachability;
//! - `discovery` — keyword search, metadata send-ordering (cooperative and
//!   tit-for-tat), server search;
//! - `download` — broadcast scheduling, piece splitting/assembly, SHA-1;
//! - `figures` — one benchmark group per reproduced figure (quick scale) plus
//!   the capacity analysis.
//!
//! Run with `cargo bench --workspace`.
