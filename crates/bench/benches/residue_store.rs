//! Cold-node residue: `BTreeMap<NodeId, ColdNodeState>` (the representation
//! the node arena used before the compact store) vs `ResidueStore`.
//!
//! City traces buffer the same few thousand query strings from up to a
//! million dormant nodes, so the map's un-interned per-node `Vec`s were the
//! dominant allocation at scale. The bench drives both representations
//! through the arena's four residue operations — insert (query buffering),
//! evict (absorb a cooled node's state), restore (take it back on
//! materialization), and the day-boundary prune — at 10⁴ to 10⁶ cold nodes
//! with a shared 1 k-query vocabulary.

use std::collections::BTreeMap;
use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtn_trace::{NodeId, SimTime};
use mbt_core::{ColdNodeState, Query};
use mbt_experiments::ResidueStore;

/// Distinct query strings shared across all nodes — the interning payoff.
const VOCAB: usize = 1_024;

fn vocabulary() -> Vec<Query> {
    (0..VOCAB)
        .map(|i| Query::new(format!("shared city query number {i}")).unwrap())
        .collect()
}

/// Expiry far in the future: prune compacts but drops nothing, so the
/// prune benches measure rebuild cost at constant occupancy.
fn expiry(i: usize) -> Option<SimTime> {
    Some(SimTime::from_secs(1_000_000 + i as u64))
}

/// The pre-ResidueStore representation, with the arena's exact semantics:
/// queries dedup by content keeping the first, credits replace wholesale.
#[derive(Default)]
struct MapStore {
    pending: BTreeMap<NodeId, ColdNodeState>,
}

impl MapStore {
    fn add_query(&mut self, id: NodeId, query: Query, expires: Option<SimTime>) {
        let state = self.pending.entry(id).or_default();
        if !state.queries.iter().any(|(q, _)| q == &query) {
            state.queries.push((query, expires));
        }
    }

    fn absorb(&mut self, id: NodeId, residue: ColdNodeState) {
        let state = self.pending.entry(id).or_default();
        state.queries.extend(residue.queries.into_iter().filter({
            let existing: Vec<Query> = state.queries.iter().map(|(q, _)| q.clone()).collect();
            move |(q, _)| !existing.contains(q)
        }));
        state.credits = residue.credits;
    }

    fn take(&mut self, id: NodeId) -> Option<ColdNodeState> {
        self.pending.remove(&id)
    }

    fn prune(&mut self, now: SimTime) {
        self.pending.retain(|_, state| {
            state
                .queries
                .retain(|(_, expires)| expires.is_none_or(|e| e > now));
            !state.queries.is_empty() || !state.credits.is_empty()
        });
    }
}

/// Buffers two vocabulary queries and one credit line per node.
fn fill_map(n: usize, vocab: &[Query]) -> MapStore {
    let mut store = MapStore::default();
    for i in 0..n {
        let id = NodeId::new(i as u32);
        store.add_query(id, vocab[i % VOCAB].clone(), expiry(i));
        store.add_query(id, vocab[(i * 7) % VOCAB].clone(), expiry(i + 1));
        store.absorb(
            id,
            ColdNodeState {
                queries: Vec::new(),
                credits: vec![(NodeId::new(((i + 1) % n) as u32), 1.5)],
            },
        );
    }
    store
}

fn fill_residue(n: usize, vocab: &[Query]) -> ResidueStore {
    let mut store = ResidueStore::new(n);
    for i in 0..n {
        let id = NodeId::new(i as u32);
        store.add_query(id, vocab[i % VOCAB].clone(), expiry(i));
        store.add_query(id, vocab[(i * 7) % VOCAB].clone(), expiry(i + 1));
        store.absorb(
            id,
            ColdNodeState {
                queries: Vec::new(),
                credits: vec![(NodeId::new(((i + 1) % n) as u32), 1.5)],
            },
        );
    }
    store
}

fn bench_residue_store(c: &mut Criterion) {
    let vocab = vocabulary();
    let mut group = c.benchmark_group("residue_store");
    group.sample_size(10);

    for n in [10_000usize, 100_000, 1_000_000] {
        group.bench_with_input(BenchmarkId::new("insert_btreemap", n), &n, |b, &n| {
            b.iter(|| black_box(fill_map(n, &vocab).pending.len()))
        });
        group.bench_with_input(BenchmarkId::new("insert_residue", n), &n, |b, &n| {
            b.iter(|| black_box(fill_residue(n, &vocab).len()))
        });

        // Evict/restore churn: take 1 k nodes' residue and absorb it back,
        // the materialize/cool cycle the arena runs per contact window.
        let cycle = 1_000.min(n);
        let mut map = fill_map(n, &vocab);
        group.bench_with_input(
            BenchmarkId::new("evict_restore_btreemap", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    for i in 0..cycle {
                        let id = NodeId::new(((i * 97) % n) as u32);
                        if let Some(state) = map.take(id) {
                            map.absorb(id, state);
                        }
                    }
                })
            },
        );
        let mut residue = fill_residue(n, &vocab);
        group.bench_with_input(BenchmarkId::new("evict_restore_residue", n), &n, |b, &n| {
            b.iter(|| {
                for i in 0..cycle {
                    let id = NodeId::new(((i * 97) % n) as u32);
                    if let Some(state) = residue.take(id) {
                        residue.absorb(id, state);
                    }
                }
            })
        });

        // Day-boundary prune at constant occupancy (nothing expires): the
        // map pays retain-in-place, the store a full compacting rebuild.
        let now = SimTime::from_secs(0);
        group.bench_with_input(BenchmarkId::new("prune_btreemap", n), &n, |b, _| {
            b.iter(|| map.prune(black_box(now)))
        });
        group.bench_with_input(BenchmarkId::new("prune_residue", n), &n, |b, _| {
            b.iter(|| residue.prune(black_box(now)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_residue_store);
criterion_main!(benches);
