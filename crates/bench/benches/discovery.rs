//! Discovery benchmarks: keyword search, metadata send-ordering
//! (cooperative and tit-for-tat), server search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtn_trace::NodeId;
use mbt_core::discovery::{cooperative, tft, MetadataOffer};
use mbt_core::keyword::{tokenize, InvertedIndex};
use mbt_core::{CreditLedger, Metadata, MetadataServer, Popularity, Query, Uri};
use std::hint::black_box;

fn corpus(n: usize) -> Vec<Metadata> {
    (0..n)
        .map(|i| {
            Metadata::builder(
                format!("show{i} episode {} season {}", i % 20, i % 5),
                ["FOX", "ABC", "CBS"][i % 3],
                Uri::new(format!("mbt://pub/{i}")).unwrap(),
            )
            .description(format!("daily release number {i} with extras"))
            .build()
        })
        .collect()
}

fn bench_tokenize(c: &mut Criterion) {
    let text = "The Late-Night Show, season 4 episode 12: a very special guest appears";
    c.bench_function("tokenize_sentence", |b| {
        b.iter(|| black_box(tokenize(black_box(text))));
    });
}

fn bench_inverted_index(c: &mut Criterion) {
    let metas = corpus(1_000);
    let mut index = InvertedIndex::new();
    for m in &metas {
        index.insert(m.uri(), &m.search_text());
    }
    let tokens: Vec<String> = vec!["show42".into(), "episode".into()];
    c.bench_function("inverted_index_lookup_1k", |b| {
        b.iter(|| black_box(index.lookup_ranked(&tokens)));
    });
}

fn bench_server_search(c: &mut Criterion) {
    let metas = corpus(1_000);
    let mut server = MetadataServer::new(10);
    for (i, m) in metas.into_iter().enumerate() {
        server.publish(m, Popularity::new((i % 100) as f64 / 100.0));
    }
    let query = Query::new("episode 12").unwrap();
    c.bench_function("server_search_1k_records", |b| {
        b.iter(|| black_box(server.search(&query, 10)));
    });
}

fn bench_send_order(c: &mut Criterion) {
    let metas = corpus(500);
    let queries: Vec<(NodeId, Query)> = (0..10)
        .map(|i| {
            (
                NodeId::new(i),
                Query::new(format!("show{}", i * 37)).unwrap(),
            )
        })
        .collect();
    let mut ledger = CreditLedger::new();
    for i in 0..10 {
        for _ in 0..i {
            ledger.reward_matched(NodeId::new(i));
        }
    }
    let mut group = c.benchmark_group("metadata_send_order");
    for &budget in &[10usize, 100] {
        group.bench_with_input(
            BenchmarkId::new("cooperative", budget),
            &budget,
            |b, &budget| {
                b.iter(|| {
                    let offers: Vec<MetadataOffer<'_>> = metas
                        .iter()
                        .enumerate()
                        .map(|(i, m)| {
                            MetadataOffer::build(
                                m,
                                Popularity::new((i % 100) as f64 / 100.0),
                                &queries,
                            )
                        })
                        .collect();
                    black_box(cooperative::send_order(offers, budget))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("tit_for_tat", budget),
            &budget,
            |b, &budget| {
                b.iter(|| {
                    let offers: Vec<MetadataOffer<'_>> = metas
                        .iter()
                        .enumerate()
                        .map(|(i, m)| {
                            MetadataOffer::build(
                                m,
                                Popularity::new((i % 100) as f64 / 100.0),
                                &queries,
                            )
                        })
                        .collect();
                    black_box(tft::send_order(offers, &ledger, budget))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tokenize,
    bench_inverted_index,
    bench_server_search,
    bench_send_order
);
criterion_main!(benches);
