//! One benchmark per reproduced table/figure, at quick scale — regenerating
//! the paper's series end-to-end so `cargo bench` exercises every
//! experiment: Fig 2(a)–(e), Fig 3(a)–(f), and the §V capacity analysis.
//!
//! The full-scale series behind `EXPERIMENTS.md` come from
//! `cargo run -p mbt-experiments --bin all_experiments --release`.

use criterion::{criterion_group, criterion_main, Criterion};
use mbt_experiments::capacity::capacity_table;
use mbt_experiments::figures::{self, RunContext, Scale};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("fig2a", |b| {
        b.iter(|| black_box(figures::fig2a(&mut RunContext::new(Scale::Quick))))
    });
    group.bench_function("fig2b", |b| {
        b.iter(|| black_box(figures::fig2b(&mut RunContext::new(Scale::Quick))))
    });
    group.bench_function("fig2c", |b| {
        b.iter(|| black_box(figures::fig2c(&mut RunContext::new(Scale::Quick))))
    });
    group.bench_function("fig2d", |b| {
        b.iter(|| black_box(figures::fig2d(&mut RunContext::new(Scale::Quick))))
    });
    group.bench_function("fig2e", |b| {
        b.iter(|| black_box(figures::fig2e(&mut RunContext::new(Scale::Quick))))
    });
    group.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("fig3a", |b| {
        b.iter(|| black_box(figures::fig3a(&mut RunContext::new(Scale::Quick))))
    });
    group.bench_function("fig3b", |b| {
        b.iter(|| black_box(figures::fig3b(&mut RunContext::new(Scale::Quick))))
    });
    group.bench_function("fig3c", |b| {
        b.iter(|| black_box(figures::fig3c(&mut RunContext::new(Scale::Quick))))
    });
    group.bench_function("fig3d", |b| {
        b.iter(|| black_box(figures::fig3d(&mut RunContext::new(Scale::Quick))))
    });
    group.bench_function("fig3e", |b| {
        b.iter(|| black_box(figures::fig3e(&mut RunContext::new(Scale::Quick))))
    });
    group.bench_function("fig3f", |b| {
        b.iter(|| black_box(figures::fig3f(&mut RunContext::new(Scale::Quick))))
    });
    group.finish();
}

fn bench_capacity(c: &mut Criterion) {
    c.bench_function("capacity_table_n20", |b| {
        b.iter(|| black_box(capacity_table(20, 10_000)));
    });
}

criterion_group!(benches, bench_fig2, bench_fig3, bench_capacity);
criterion_main!(benches);
