//! In-memory vs sharded trace replay, end to end.
//!
//! Runs the same quick-scale simulation over (a) a fully resident
//! `ContactTrace` and (b) the same trace spilled to time-windowed shards and
//! replayed shard by shard through the `TraceSource` seam. The two runs
//! produce byte-identical results; the bench pins the streaming overhead —
//! shard reopen + line parse per window — against the in-memory baseline so
//! regressions in the shard reader show up as a widening gap. A third case
//! isolates pure replay (drain the stream, no simulation) at a larger scale
//! where the resident-memory advantage matters.

use criterion::{criterion_group, criterion_main, Criterion};
use dtn_trace::generators::DieselNetConfig;
use dtn_trace::{
    ContactSink as _, ContactTrace, ShardWriter, ShardedTrace, SimDuration, TraceSource,
};
use mbt_experiments::runner::{run_simulation, SimParams};
use std::hint::black_box;

/// One shard per simulated day, the layout `mbt shard` produces by default.
fn shard(trace: &ContactTrace, name: &str) -> ShardedTrace {
    let dir = std::env::temp_dir().join(format!("mbt-bench-sharded-replay-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    let mut writer = ShardWriter::create(&dir, SimDuration::from_days(1)).unwrap();
    for c in trace.iter() {
        writer.push_contact(c.clone());
    }
    writer.finish().unwrap()
}

fn sim_params(days: u64) -> SimParams {
    SimParams {
        days,
        files_per_day: 10,
        seed: 42,
        ..SimParams::default()
    }
}

fn bench_sharded_replay(c: &mut Criterion) {
    let trace = DieselNetConfig::new(16, 6).seed(42).generate();
    let sharded = shard(&trace, "sim");
    let params = sim_params(6);

    let mut group = c.benchmark_group("sharded_replay");
    group.sample_size(10);
    group.bench_function("simulate_in_memory", |b| {
        b.iter(|| black_box(run_simulation(&trace, &params, None)))
    });
    group.bench_function("simulate_sharded", |b| {
        b.iter(|| black_box(run_simulation(&sharded, &params, None)))
    });
    // Same sharded run with one shard of pipelined prefetch: the background
    // decode worker overlaps shard parsing with contact processing, so on a
    // multi-core box this should close most of the gap to in-memory.
    let prefetch_params = SimParams {
        prefetch: 1,
        ..sim_params(6)
    };
    group.bench_function("simulate_sharded_prefetch1", |b| {
        b.iter(|| black_box(run_simulation(&sharded, &prefetch_params, None)))
    });

    // Pure replay at 10x the simulated span: stream every contact without
    // simulating, comparing resident-vector iteration against shard-by-shard
    // reads from disk.
    let big = DieselNetConfig::new(16, 60).seed(42).generate();
    let big_sharded = shard(&big, "replay");
    group.bench_function("drain_in_memory_60d", |b| {
        b.iter(|| black_box(TraceSource::stream(&big).count()))
    });
    group.bench_function("drain_sharded_60d", |b| {
        b.iter(|| black_box(big_sharded.stream().count()))
    });
    group.bench_function("drain_sharded_prefetch1_60d", |b| {
        b.iter(|| black_box(big_sharded.stream_prefetch(1).count()))
    });
    group.finish();
}

criterion_group!(benches, bench_sharded_replay);
criterion_main!(benches);
