//! Serial vs parallel sweep throughput.
//!
//! Benchmarks the same quick-scale figure sweep three ways — the legacy
//! serial `sweep_shared_trace`, the parallel executor pinned to one worker
//! (executor overhead), and the parallel executor with one worker per core —
//! and prints the resulting speedup. On a machine with 4+ cores the
//! parallel/auto configuration should run the sweep at least ~2× faster than
//! the serial baseline; on a single-core machine all three configurations
//! converge (the executor's overhead is one `Arc` clone per cell).

use criterion::{criterion_group, criterion_main, Criterion};
use dtn_trace::generators::NusConfig;
use dtn_trace::ContactTrace;
use mbt_experiments::runner::SimParams;
use mbt_experiments::sweep::sweep_shared_trace;
use mbt_experiments::{ExecConfig, ParallelRunner};
use std::hint::black_box;

const XS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

fn bench_trace() -> ContactTrace {
    NusConfig::new(30, 6).seed(42).generate()
}

fn params_for(x: f64) -> SimParams {
    SimParams {
        internet_fraction: x,
        days: 6,
        seed: 42,
        ..SimParams::default()
    }
}

fn run_parallel(trace: &ContactTrace, jobs: usize) {
    let runner = ParallelRunner::new(ExecConfig::default().jobs(jobs));
    black_box(runner.sweep_shared_trace("bench", "bench", "x", &XS, trace, params_for, None));
}

fn bench_sweep_throughput(c: &mut Criterion) {
    let trace = bench_trace();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut group = c.benchmark_group("sweep_throughput");
    group.sample_size(10);
    group.bench_function("serial_legacy", |b| {
        b.iter(|| {
            black_box(sweep_shared_trace(
                "bench", "bench", "x", &XS, &trace, params_for,
            ))
        })
    });
    group.bench_function("parallel_jobs1", |b| b.iter(|| run_parallel(&trace, 1)));
    group.bench_function(format!("parallel_jobs{cores}_auto"), |b| {
        b.iter(|| run_parallel(&trace, 0))
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_throughput);
criterion_main!(benches);
