//! Substrate benchmarks: clique detection, event queue, trace generation,
//! space-time reachability.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtn_sim::{Event, EventQueue, NeighborGraph};
use dtn_trace::generators::{DieselNetConfig, NusConfig};
use dtn_trace::{NodeId, SimTime, SpaceTimeGraph, TraceStats};
use std::hint::black_box;

fn bench_clique_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("clique_detection");
    for &n in &[8usize, 16, 24] {
        // A dense-ish graph: ring + chords, where maximal cliques are small.
        let mut g = NeighborGraph::new();
        for i in 0..n as u32 {
            let next = (i + 1) % n as u32;
            let chord = (i + 2) % n as u32;
            g.connect(NodeId::new(i), NodeId::new(next));
            g.connect(NodeId::new(i), NodeId::new(chord));
        }
        group.bench_with_input(BenchmarkId::new("ring_with_chords", n), &g, |b, g| {
            b.iter(|| black_box(g.maximal_cliques()));
        });
        // Complete graph: single big clique (the classroom case).
        let mut k = NeighborGraph::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                k.connect(NodeId::new(i), NodeId::new(j));
            }
        }
        group.bench_with_input(BenchmarkId::new("complete", n), &k, |b, k| {
            b.iter(|| black_box(k.maximal_cliques()));
        });
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(
                    SimTime::from_secs((i * 7919) % 100_000),
                    Event::Scheduled { tag: i },
                );
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            black_box(count)
        });
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    group.bench_function("dieselnet_40_buses_15_days", |b| {
        b.iter(|| black_box(DieselNetConfig::new(40, 15).seed(1).generate()));
    });
    group.bench_function("nus_80_students_15_days", |b| {
        b.iter(|| black_box(NusConfig::new(80, 15).seed(1).generate()));
    });
    group.finish();
}

fn bench_trace_stats(c: &mut Criterion) {
    let trace = DieselNetConfig::new(30, 10).seed(2).generate();
    c.bench_function("trace_stats_with_frequent_contacts", |b| {
        b.iter(|| {
            let stats = TraceStats::compute(&trace);
            black_box(stats.frequent_contact_map(dtn_trace::stats::DIESELNET_FREQUENT_EVERY))
        });
    });
}

fn bench_space_time(c: &mut Criterion) {
    let trace = DieselNetConfig::new(20, 5).seed(3).generate();
    let graph = SpaceTimeGraph::new(&trace);
    c.bench_function("space_time_earliest_delivery", |b| {
        b.iter(|| black_box(graph.earliest_delivery(NodeId::new(0), SimTime::ZERO)));
    });
}

criterion_group!(
    benches,
    bench_clique_detection,
    bench_event_queue,
    bench_trace_generation,
    bench_trace_stats,
    bench_space_time
);
criterion_main!(benches);
