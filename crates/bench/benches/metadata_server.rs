//! The sharded metadata server, isolated.
//!
//! `sweep_throughput` and the figure benches exercise the server only as a
//! side effect of simulated internet sessions; this bench drives it
//! directly at {10³, 10⁴, 10⁵} records × {1, 8} shards so the cost of the
//! partitioning itself is visible: `search` and `publish` should be flat
//! across shard counts (the query core touches one token shard per token
//! either way), while `refresh_popularities` and `snapshot` show the
//! per-shard structure (in-place value walks and Arc bumps respectively).
//!
//! Corpus and queries mirror the `mbt bench --server` generator shape —
//! three vocabulary tokens per record name — but scaled down and fully
//! inlined so the bench has no dependency on the experiment harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dtn_trace::{NodeId, SimTime};
use mbt_core::server::ShardedMetadataServer;
use mbt_core::{Metadata, Popularity, Query, Uri};
use std::hint::black_box;

const RECORD_COUNTS: [usize; 3] = [1_000, 10_000, 100_000];
const SHARD_COUNTS: [usize; 2] = [1, 8];
const VOCAB: usize = 512;

fn record(idx: usize) -> (Metadata, Popularity) {
    let (t1, t2, t3) = (
        (idx * 7) % VOCAB,
        (idx * 13 + 5) % VOCAB,
        (idx * 31 + 11) % VOCAB,
    );
    let uri = Uri::new(format!("mbt://bench/file-{idx}")).unwrap();
    let meta = Metadata::builder(format!("kw{t1} kw{t2} kw{t3}"), "FOX", uri).build();
    (meta, Popularity::new(1.0 / (idx + 1) as f64))
}

fn seeded(records: usize, shards: usize) -> ShardedMetadataServer {
    let mut server = ShardedMetadataServer::with_shards(50, shards);
    for idx in 0..records {
        let (m, p) = record(idx);
        server.publish(m, p);
    }
    // A few requested URIs so refresh has estimator work, like production.
    let t = SimTime::from_secs(100);
    for idx in 0..16 {
        let uri = Uri::new(format!("mbt://bench/file-{idx}")).unwrap();
        server.record_request(&uri, NodeId::new(idx as u32), t);
    }
    server
}

fn queries() -> Vec<Query> {
    (0..64)
        .map(|i| {
            let t1 = (i * 97) % VOCAB;
            if i % 4 == 0 {
                Query::new(format!("kw{t1}")).unwrap()
            } else {
                let t2 = (i * 41 + 3) % VOCAB;
                Query::new(format!("kw{t1} kw{t2}")).unwrap()
            }
        })
        .collect()
}

fn bench_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_publish");
    for &records in &RECORD_COUNTS[..2] {
        for &shards in &SHARD_COUNTS {
            group.throughput(Throughput::Elements(records as u64));
            group.bench_function(BenchmarkId::new(format!("shards{shards}"), records), |b| {
                b.iter(|| black_box(seeded(records, shards)).len());
            });
        }
    }
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_search");
    let queries = queries();
    for &records in &RECORD_COUNTS {
        for &shards in &SHARD_COUNTS {
            let server = seeded(records, shards);
            group.throughput(Throughput::Elements(queries.len() as u64));
            group.bench_function(BenchmarkId::new(format!("shards{shards}"), records), |b| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for q in &queries {
                        hits += server.search(black_box(q), 10).len();
                    }
                    black_box(hits)
                });
            });
        }
    }
    group.finish();
}

fn bench_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_refresh");
    let now = SimTime::from_secs(2_000);
    for &records in &RECORD_COUNTS {
        for &shards in &SHARD_COUNTS {
            let mut server = seeded(records, shards);
            server.refresh_popularities(now); // settle first-walk churn
            group.throughput(Throughput::Elements(records as u64));
            group.bench_function(BenchmarkId::new(format!("shards{shards}"), records), |b| {
                b.iter(|| server.refresh_popularities(black_box(now)));
            });
        }
    }
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    // Snapshot cost is O(shards) Arc clones, independent of record count —
    // the reason the storm's readers can freeze views at query rate.
    let mut group = c.benchmark_group("server_snapshot");
    let queries = queries();
    for &shards in &SHARD_COUNTS {
        let server = seeded(RECORD_COUNTS[2], shards);
        group.bench_function(BenchmarkId::new("freeze", shards), |b| {
            b.iter(|| black_box(server.snapshot()).len());
        });
        group.bench_function(BenchmarkId::new("freeze_and_search", shards), |b| {
            b.iter(|| {
                let snap = server.snapshot();
                let mut hits = 0usize;
                for q in queries.iter().take(8) {
                    hits += snap.search(black_box(q), 10).len();
                }
                black_box(hits)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_publish,
    bench_search,
    bench_refresh,
    bench_snapshot
);
criterion_main!(benches);
