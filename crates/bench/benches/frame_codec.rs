//! Encode/decode throughput of the transport frame codec.
//!
//! The `BusTransport` backend serializes every contact-phase message through
//! `encode_frame`/`decode_frame` (64-byte header + payload), so codec cost is
//! a per-frame tax on every live-bus run. This bench measures the round trip
//! for the three message shapes that dominate the wire: a hello beacon with a
//! realistic query/credit load, a standalone metadata broadcast, and a full
//! content piece.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dtn_trace::NodeId;
use mbt_core::piece::split_into_pieces;
use mbt_core::transport::{decode_frame, encode_frame, HelloFrame, WireMessage};
use mbt_core::{Metadata, Popularity, Query, Uri};
use std::collections::BTreeSet;
use std::hint::black_box;

/// A hello beacon the size a busy node would advertise: several own and
/// foreign queries, a handful of wanted/rejected URIs, and a credit ledger.
fn hello_message() -> WireMessage {
    let own_queries = (0..6)
        .map(|i| (Query::new(format!("evening news {i}")).unwrap(), None))
        .collect();
    let foreign_queries = (0..4)
        .map(|i| Query::new(format!("morning show {i}")).unwrap())
        .collect();
    let wanted: BTreeSet<Uri> = (0..8)
        .map(|i| Uri::new(format!("mbt://fox/news/ep-{i}")).unwrap())
        .collect();
    let rejected: BTreeSet<Uri> = (0..2)
        .map(|i| Uri::new(format!("mbt://spam/{i}")).unwrap())
        .collect();
    let frequent: BTreeSet<NodeId> = (1..5).map(NodeId::new).collect();
    let credits = (1..9).map(|i| (NodeId::new(i), i as f64 * 0.5)).collect();
    WireMessage::Hello(HelloFrame {
        sender: NodeId::new(0),
        own_queries,
        foreign_queries,
        wanted,
        rejected,
        frequent,
        credits,
    })
}

/// A standalone metadata broadcast for a multi-piece file.
fn metadata_message() -> WireMessage {
    let uri = Uri::new("mbt://fox/news/tonight").unwrap();
    let content = vec![0xA5u8; 4096];
    let metadata = Metadata::builder("fox evening news tonight", "FOX", uri)
        .description("nightly news broadcast")
        .content(&content, 1024)
        .build();
    WireMessage::Metadata {
        metadata,
        popularity: Popularity::new(0.8),
    }
}

/// One full content piece (1 KiB of payload).
fn piece_message() -> WireMessage {
    let uri = Uri::new("mbt://fox/news/tonight").unwrap();
    let content: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
    let piece = split_into_pieces(&uri, &content, 1024)
        .into_iter()
        .next()
        .expect("non-empty content splits into pieces");
    WireMessage::Piece(piece)
}

fn bench_frame_codec(c: &mut Criterion) {
    let cases = [
        ("hello", hello_message()),
        ("metadata", metadata_message()),
        ("piece", piece_message()),
    ];
    let sender = NodeId::new(3);
    let receiver = NodeId::new(7);

    let mut encode = c.benchmark_group("frame_codec/encode");
    for (name, message) in &cases {
        let bytes = encode_frame(sender, receiver, 1, message);
        encode.throughput(Throughput::Bytes(bytes.len() as u64));
        encode.bench_function(*name, |b| {
            b.iter(|| black_box(encode_frame(sender, receiver, 1, black_box(message))))
        });
    }
    encode.finish();

    let mut decode = c.benchmark_group("frame_codec/decode");
    for (name, message) in &cases {
        let bytes = encode_frame(sender, receiver, 1, message);
        decode.throughput(Throughput::Bytes(bytes.len() as u64));
        decode.bench_function(*name, |b| {
            b.iter(|| black_box(decode_frame(black_box(&bytes)).expect("valid frame")))
        });
    }
    decode.finish();
}

criterion_group!(benches, bench_frame_codec);
criterion_main!(benches);
