//! The per-contact matching hot path, isolated.
//!
//! `run_contact` matches every stored metadata record against every connected
//! peer's query strings at every contact (paper §IV-A); at sweep scale that
//! loop dominates wall clock. This bench drives a single clique contact at
//! {64, 512, 4096} stored records × {2, 8} members — entirely
//! single-threaded, so the measured speedup reflects the matching pipeline
//! itself (cached token sets, index-backed lookups, interned URIs) rather
//! than core count, unlike `sweep_throughput`.
//!
//! Each iteration clones the prepared clique before running the contact;
//! snapshot cloning is part of the hot path being measured (the per-contact
//! member snapshots deep-copy the same state).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dtn_trace::{NodeId, SimDuration, SimTime};
use mbt_core::node::run_contact;
use mbt_core::{MbtConfig, MbtNode, Metadata, Popularity, ProtocolKind, Query, Uri};
use std::hint::black_box;

const RECORD_COUNTS: [usize; 3] = [64, 512, 4096];
const CLIQUE_SIZES: [usize; 2] = [2, 8];

/// Deterministic synthetic catalog: `records` metadata records over a few
/// publishers, with names drawn from a small keyword pool so that peer
/// queries match a realistic fraction of the store.
fn catalog(records: usize) -> Vec<(Metadata, Popularity)> {
    const TOPICS: [&str; 8] = [
        "news", "comedy", "sports", "weather", "drama", "music", "talk", "film",
    ];
    const PUBLISHERS: [&str; 4] = ["FOX", "ABC", "CBS", "NBC"];
    (0..records)
        .map(|i| {
            let topic = TOPICS[i % TOPICS.len()];
            let publisher = PUBLISHERS[i % PUBLISHERS.len()];
            let uri = Uri::new(format!("mbt://{publisher}/{topic}/ep-{i}")).unwrap();
            let meta =
                Metadata::builder(format!("{publisher} {topic} episode {i}"), publisher, uri)
                    .description(format!("nightly {topic} broadcast number {i}"))
                    .build();
            let pop = Popularity::new(((i % 97) as f64 + 1.0) / 97.0);
            (meta, pop)
        })
        .collect()
}

/// One library node carrying the full catalog (metadata + files) plus
/// `clique - 1` querying peers, each wanting a handful of topics.
fn clique(records: usize, members: usize) -> Vec<MbtNode> {
    let catalog = catalog(records);
    let mut nodes: Vec<MbtNode> = (0..members)
        .map(|i| MbtNode::new(NodeId::new(i as u32), ProtocolKind::Mbt, MbtConfig::new()))
        .collect();
    for (meta, pop) in &catalog {
        nodes[0].seed_content(meta.clone(), *pop, true);
    }
    let _ = nodes[0].drain_events();
    let queries = [
        "fox news",
        "abc comedy",
        "cbs sports",
        "nbc weather",
        "drama",
        "music",
    ];
    for (i, node) in nodes.iter_mut().enumerate().skip(1) {
        for q in queries.iter().skip(i % 2).step_by(2) {
            node.add_query(Query::new(*q).unwrap(), None);
        }
    }
    nodes
}

fn bench_contact_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("contact_hot_path");
    for &records in &RECORD_COUNTS {
        for &members in &CLIQUE_SIZES {
            let nodes = clique(records, members);
            let member_idx: Vec<usize> = (0..members).collect();
            group.throughput(Throughput::Elements(records as u64));
            group.bench_function(
                BenchmarkId::new(format!("records_{records}"), format!("clique_{members}")),
                |b| {
                    b.iter(|| {
                        let mut fresh = nodes.clone();
                        black_box(run_contact(
                            &mut fresh,
                            &member_idx,
                            SimTime::from_secs(3600),
                            SimDuration::from_secs(300),
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_contact_hot_path);
criterion_main!(benches);
