//! Download benchmarks: broadcast scheduling (cooperative vs tit-for-tat),
//! SHA-1 hashing, piece splitting and reassembly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dtn_trace::NodeId;
use mbt_core::checksum::sha1;
use mbt_core::download::{cooperative, tft, Offer};
use mbt_core::piece::split_into_pieces;
use mbt_core::{CreditLedger, FileAssembler, Metadata, Popularity, Uri};
use std::hint::black_box;

fn offers(n_items: usize, clique: usize) -> Vec<Offer<Uri>> {
    (0..n_items)
        .map(|i| {
            let requesters: Vec<NodeId> = (0..clique as u32)
                .filter(|r| (i as u32 + r).is_multiple_of(3))
                .map(NodeId::new)
                .collect();
            let holders: Vec<NodeId> = (0..clique as u32)
                .filter(|h| (i as u32 + h).is_multiple_of(4))
                .map(NodeId::new)
                .collect();
            Offer::new(
                Uri::new(format!("mbt://f/{i}")).unwrap(),
                Popularity::new((i % 100) as f64 / 100.0),
                requesters,
                holders,
            )
        })
        .collect()
}

fn bench_schedulers(c: &mut Criterion) {
    let members: Vec<NodeId> = (0..12).map(NodeId::new).collect();
    let ledger = CreditLedger::new();
    let mut group = c.benchmark_group("broadcast_schedule");
    for &n in &[50usize, 500] {
        group.bench_with_input(BenchmarkId::new("cooperative", n), &n, |b, &n| {
            b.iter(|| black_box(cooperative::schedule(offers(n, 12), 20)));
        });
        group.bench_with_input(BenchmarkId::new("tit_for_tat", n), &n, |b, &n| {
            b.iter(|| black_box(tft::schedule(&members, offers(n, 12), |_| &ledger, 20)));
        });
    }
    group.finish();
}

fn bench_sha1(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha1");
    for &size in &[1_024usize, 262_144] {
        let data = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| black_box(sha1(data)));
        });
    }
    group.finish();
}

fn bench_piece_pipeline(c: &mut Criterion) {
    let uri = Uri::new("mbt://f/big").unwrap();
    let data = vec![0x5Au8; 1 << 20]; // 1 MiB
    let mut group = c.benchmark_group("piece_pipeline");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("split_1mib_into_256k_pieces", |b| {
        b.iter(|| black_box(split_into_pieces(&uri, &data, 256 * 1024)));
    });
    let meta = Metadata::builder("big", "FOX", uri.clone())
        .content(&data, 256 * 1024)
        .build();
    let pieces = split_into_pieces(&uri, &data, 256 * 1024);
    group.bench_function("verify_and_assemble_1mib", |b| {
        b.iter(|| {
            let mut asm = FileAssembler::new(meta.clone());
            for p in &pieces {
                asm.add_piece(p.clone()).unwrap();
            }
            black_box(asm.assemble())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_sha1, bench_piece_pipeline);
criterion_main!(benches);
