//! Routing-baseline benchmarks: each store-carry-forward protocol over the
//! DieselNet-style trace, plus the space-time oracle bound computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtn_routing::protocols::{DirectDelivery, Epidemic, Prophet, SprayAndWait};
use dtn_routing::sim::{uniform_messages, RoutingSim};
use dtn_trace::generators::DieselNetConfig;
use dtn_trace::{SimDuration, SimTime};
use mbt_experiments::routing::dissemination_bound;
use mbt_experiments::Scale;
use std::hint::black_box;

fn bench_protocols(c: &mut Criterion) {
    let trace = DieselNetConfig::new(16, 5).seed(9).generate();
    let nodes = trace.nodes();
    let horizon = trace.end_time().unwrap_or(SimTime::from_secs(1));
    let mut rng = dtn_sim::rng::stream(9, "bench-routing");
    let msgs = uniform_messages(
        &nodes,
        80,
        horizon,
        Some(SimDuration::from_days(2)),
        &mut rng,
    );

    let mut group = c.benchmark_group("routing_protocols");
    group.sample_size(20);
    group.bench_with_input(BenchmarkId::from_parameter("epidemic"), &msgs, |b, msgs| {
        b.iter(|| black_box(RoutingSim::new(&trace, Epidemic::new()).run(msgs.clone())));
    });
    group.bench_with_input(BenchmarkId::from_parameter("prophet"), &msgs, |b, msgs| {
        b.iter(|| black_box(RoutingSim::new(&trace, Prophet::new()).run(msgs.clone())));
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("spray_and_wait"),
        &msgs,
        |b, msgs| {
            b.iter(|| black_box(RoutingSim::new(&trace, SprayAndWait::new(8)).run(msgs.clone())));
        },
    );
    group.bench_with_input(BenchmarkId::from_parameter("direct"), &msgs, |b, msgs| {
        b.iter(|| black_box(RoutingSim::new(&trace, DirectDelivery::new()).run(msgs.clone())));
    });
    group.finish();
}

fn bench_dissemination_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("dissemination_bound");
    group.sample_size(10);
    group.bench_function("oracle_bound_quick", |b| {
        b.iter(|| black_box(dissemination_bound(Scale::Quick)));
    });
    group.finish();
}

criterion_group!(benches, bench_protocols, bench_dissemination_bound);
criterion_main!(benches);
