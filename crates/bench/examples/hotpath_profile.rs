//! Section-level profiler for the contact hot path: splits one bench
//! iteration into clone / pre-phase (hello snapshots + catalogs) /
//! discovery / download, via the `PhaseTimes` spans `run_contact_timed`
//! already charges. Useful when `contact_hot_path` moves and criterion's
//! single number does not say which section did it.
//!
//! ```sh
//! cargo run --release -p bench --example hotpath_profile
//! ```
use dtn_sim::telemetry::{Phase, PhaseTimes};
use dtn_trace::{NodeId, SimDuration, SimTime};
use mbt_core::node::run_contact_timed;
use mbt_core::{MbtConfig, MbtNode, Metadata, Popularity, ProtocolKind, Query, Uri};
use std::hint::black_box;
use std::time::Instant;

fn catalog(records: usize) -> Vec<(Metadata, Popularity)> {
    const TOPICS: [&str; 8] = [
        "news", "comedy", "sports", "weather", "drama", "music", "talk", "film",
    ];
    const PUBLISHERS: [&str; 4] = ["FOX", "ABC", "CBS", "NBC"];
    (0..records)
        .map(|i| {
            let topic = TOPICS[i % TOPICS.len()];
            let publisher = PUBLISHERS[i % PUBLISHERS.len()];
            let uri = Uri::new(format!("mbt://{publisher}/{topic}/ep-{i}")).unwrap();
            let meta =
                Metadata::builder(format!("{publisher} {topic} episode {i}"), publisher, uri)
                    .description(format!("nightly {topic} broadcast number {i}"))
                    .build();
            let pop = Popularity::new(((i % 97) as f64 + 1.0) / 97.0);
            (meta, pop)
        })
        .collect()
}

fn clique(records: usize, members: usize) -> Vec<MbtNode> {
    let catalog = catalog(records);
    let mut nodes: Vec<MbtNode> = (0..members)
        .map(|i| MbtNode::new(NodeId::new(i as u32), ProtocolKind::Mbt, MbtConfig::new()))
        .collect();
    for (meta, pop) in &catalog {
        nodes[0].seed_content(meta.clone(), *pop, true);
    }
    let _ = nodes[0].drain_events();
    let queries = [
        "fox news",
        "abc comedy",
        "cbs sports",
        "nbc weather",
        "drama",
        "music",
    ];
    for (i, node) in nodes.iter_mut().enumerate().skip(1) {
        for q in queries.iter().skip(i % 2).step_by(2) {
            node.add_query(Query::new(*q).unwrap(), None);
        }
    }
    nodes
}

fn main() {
    let records = 4096;
    let members = 2;
    let nodes = clique(records, members);
    let member_idx: Vec<usize> = (0..members).collect();
    let iters = 200;

    let mut clone_t = std::time::Duration::ZERO;
    let mut contact_t = std::time::Duration::ZERO;
    let mut phases = PhaseTimes::default();
    for _ in 0..iters {
        let t0 = Instant::now();
        let mut fresh = nodes.clone();
        clone_t += t0.elapsed();
        let t1 = Instant::now();
        black_box(run_contact_timed(
            &mut fresh,
            &member_idx,
            SimTime::from_secs(3600),
            SimDuration::from_secs(300),
            &mut phases,
        ));
        contact_t += t1.elapsed();
    }
    let per = |d: std::time::Duration| d.as_secs_f64() * 1e3 / iters as f64;
    println!("clone      {:8.3} ms", per(clone_t));
    println!("contact    {:8.3} ms", per(contact_t));
    println!("  discovery {:7.3} ms", per(phases.get(Phase::Discovery)));
    println!("  download  {:7.3} ms", per(phases.get(Phase::Download)));
    println!(
        "  pre-phase {:7.3} ms",
        per(contact_t) - per(phases.get(Phase::Discovery)) - per(phases.get(Phase::Download))
    );
}
