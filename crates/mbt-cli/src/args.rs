//! A small, dependency-free argument parser: positional arguments plus
//! `--key value` and `--flag` options.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Parsed arguments: positionals in order, options by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Error produced when an argument is missing or malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A required positional argument was not supplied.
    MissingPositional(&'static str),
    /// A required option was not supplied.
    MissingOption(&'static str),
    /// An option's value failed to parse.
    BadValue {
        /// Option name.
        option: String,
        /// The offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// `--option` appeared with no following value.
    DanglingOption(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingPositional(name) => write!(f, "missing <{name}> argument"),
            ArgError::MissingOption(name) => write!(f, "missing required --{name} option"),
            ArgError::BadValue {
                option,
                value,
                expected,
            } => write!(f, "--{option} expects {expected}, got `{value}`"),
            ArgError::DanglingOption(name) => write!(f, "--{name} needs a value"),
        }
    }
}

impl Error for ArgError {}

/// Option names that are flags (take no value).
const FLAGS: &[&str] = &[
    "tft",
    "rarest-first",
    "quick",
    "help",
    "weekends",
    "verify",
    "server",
    "city",
    "csv",
    "delay-csv",
];

impl Args {
    /// Parses raw arguments (without the program/subcommand names).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::DanglingOption`] if a value-taking option ends
    /// the argument list.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if FLAGS.contains(&name) {
                    args.flags.push(name.to_string());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgError::DanglingOption(name.to_string()))?;
                    args.options.insert(name.to_string(), value);
                }
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize, name: &'static str) -> Result<&str, ArgError> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or(ArgError::MissingPositional(name))
    }

    /// An optional string option.
    pub fn opt_str(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A string option with a default.
    pub fn str_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.opt_str(name).unwrap_or(default)
    }

    /// A parsed option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] if the supplied value fails to parse.
    pub fn parse_or<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                option: name.to_string(),
                value: v.clone(),
                expected,
            }),
        }
    }

    /// True if the flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn positionals_and_options() {
        let a = parse("trace.txt --seed 42 --model nus");
        assert_eq!(a.positional(0, "trace").unwrap(), "trace.txt");
        assert_eq!(a.opt_str("model"), Some("nus"));
        assert_eq!(a.parse_or("seed", 0u64, "an integer").unwrap(), 42);
    }

    #[test]
    fn defaults_apply() {
        let a = parse("x");
        assert_eq!(a.parse_or("days", 15u64, "an integer").unwrap(), 15);
        assert_eq!(a.str_or("model", "dieselnet"), "dieselnet");
    }

    #[test]
    fn flags_take_no_value() {
        let a = parse("--tft trace.txt --seed 7");
        assert!(a.flag("tft"));
        assert!(!a.flag("quick"));
        assert_eq!(a.positional(0, "trace").unwrap(), "trace.txt");
        assert_eq!(a.parse_or("seed", 0u64, "an integer").unwrap(), 7);
    }

    #[test]
    fn missing_positional_errors() {
        let a = parse("--seed 3");
        assert_eq!(
            a.positional(0, "trace").unwrap_err(),
            ArgError::MissingPositional("trace")
        );
    }

    #[test]
    fn bad_value_errors() {
        let a = parse("--seed banana");
        let err = a.parse_or("seed", 0u64, "an integer").unwrap_err();
        assert!(matches!(err, ArgError::BadValue { .. }));
        assert!(err.to_string().contains("banana"));
    }

    #[test]
    fn dangling_option_errors() {
        let err = Args::parse(vec!["--seed".to_string()]).unwrap_err();
        assert_eq!(err, ArgError::DanglingOption("seed".to_string()));
    }
}
