//! `perf-check` — diff a fresh perf report against the committed baseline.
//!
//! ```text
//! perf-check <current.json> [--baseline PATH] [--tolerance REL] [--abs-slack SECS]
//! ```
//!
//! Exit code 0 when the report is within tolerance, 1 on any violation or
//! i/o error. Counters must match the baseline exactly (they are a pure
//! function of the deterministic event stream — drift means behaviour
//! changed); timings only fail beyond `baseline * (1 + tolerance) +
//! abs-slack`, and only when both reports used the same `--jobs`.
//!
//! Set `UPDATE_BASELINE=1` to overwrite the baseline with the current
//! report instead of diffing (the committed fixture refresh path, mirroring
//! `UPDATE_GOLDEN=1` for the golden figures).

use std::process::ExitCode;

use mbt_experiments::perf::{compare, BenchReport, Tolerance};

const USAGE: &str = "usage: perf-check <current.json> \
[--baseline PATH] [--tolerance REL] [--abs-slack SECS]

default baseline: tests/fixtures/bench_baseline.json
UPDATE_BASELINE=1 rewrites the baseline instead of diffing";

struct Options {
    current: String,
    baseline: String,
    tolerance: Tolerance,
}

fn parse_args<I: Iterator<Item = String>>(mut raw: I) -> Result<Options, String> {
    let mut current = None;
    let mut baseline = "tests/fixtures/bench_baseline.json".to_string();
    let mut tolerance = Tolerance::default();
    while let Some(tok) = raw.next() {
        match tok.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--baseline" => baseline = raw.next().ok_or("--baseline needs a value")?,
            "--tolerance" => {
                tolerance.rel = raw
                    .next()
                    .ok_or("--tolerance needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance: {e}"))?;
            }
            "--abs-slack" => {
                tolerance.abs_secs = raw
                    .next()
                    .ok_or("--abs-slack needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --abs-slack: {e}"))?;
            }
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => {
                if current.replace(other.to_string()).is_some() {
                    return Err("expected exactly one <current.json>".to_string());
                }
            }
        }
    }
    Ok(Options {
        current: current.ok_or(USAGE)?,
        baseline,
        tolerance,
    })
}

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    BenchReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<String, String> {
    let opts = parse_args(std::env::args().skip(1))?;
    let current = load(&opts.current)?;

    if std::env::var("UPDATE_BASELINE").as_deref() == Ok("1") {
        std::fs::write(&opts.baseline, current.to_json())
            .map_err(|e| format!("{}: {e}", opts.baseline))?;
        return Ok(format!(
            "baseline {} updated from {}",
            opts.baseline, opts.current
        ));
    }

    let baseline = load(&opts.baseline)?;
    let errors = compare(&current, &baseline, &opts.tolerance);
    if errors.is_empty() {
        Ok(format!(
            "perf-check OK: {} vs {} ({} cells, {:.2}s, counters identical)",
            opts.current, opts.baseline, current.cells, current.wall_secs
        ))
    } else {
        Err(format!(
            "perf-check FAILED ({} violation{}):\n  {}",
            errors.len(),
            if errors.len() == 1 { "" } else { "s" },
            errors.join("\n  ")
        ))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
