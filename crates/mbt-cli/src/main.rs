//! `mbt` — command-line tool for the hybrid-DTN cooperative file sharing
//! reproduction.
//!
//! ```text
//! mbt gen-trace    generate a synthetic contact trace (dieselnet | nus | rwp)
//! mbt shard        write a trace as time-windowed on-disk shards
//! mbt shard-info   inspect a sharded trace's manifest
//! mbt trace-stats  inspect a trace: contacts, cliques, inter-contact times
//! mbt simulate     run a protocol variant over a trace or shard dir
//! mbt sweep        sweep a parameter over named protocol variants
//! mbt routing      run a routing baseline (epidemic | prophet | spray | direct)
//! mbt capacity     print the §V broadcast vs pair-wise capacity table
//! mbt bench        run quick-scale sweeps under telemetry, emit a perf report
//! mbt node         run live nodes + a gateway on the threaded frame bus
//! mbt gateway      stand up a live gateway and probe it with a search
//! ```

use std::error::Error;
use std::fmt;
use std::process::ExitCode;

mod args;
mod commands;

use args::{ArgError, Args};

/// Errors surfaced to the user.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments or input content.
    Usage(String),
    /// I/O failure on a named path.
    Io(String, std::io::Error),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => f.write_str(msg),
            CliError::Io(path, e) => write!(f, "{path}: {e}"),
        }
    }
}

impl Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Usage(e.to_string())
    }
}

const TOP_USAGE: &str = "usage: mbt <command> [options]

commands:
  gen-trace    generate a synthetic contact trace
  shard        write a trace as time-windowed on-disk shards
  shard-info   inspect a sharded trace's manifest
  trace-stats  inspect a contact trace
  simulate     run the MBT file-sharing simulation (trace file or shard dir)
  sweep        sweep a parameter over named protocol variants (table/CSV)
  routing      run a store-carry-forward routing baseline
  capacity     print the broadcast vs pair-wise capacity table
  bench        run benchmark sweeps and write a JSON perf report
  node         run live nodes + a gateway on the threaded frame bus
  gateway      stand up a live gateway and probe it with a search

run `mbt <command> --help` for command options.";

fn dispatch(command: &str, args: &Args) -> Result<String, CliError> {
    match command {
        "gen-trace" => {
            if args.flag("help") {
                return Ok(commands::gen_trace::USAGE.to_string());
            }
            commands::gen_trace::run(args)
        }
        "shard" => {
            if args.flag("help") {
                return Ok(commands::shard::USAGE.to_string());
            }
            commands::shard::run(args)
        }
        "shard-info" => {
            if args.flag("help") {
                return Ok(commands::shard_info::USAGE.to_string());
            }
            commands::shard_info::run(args)
        }
        "trace-stats" => {
            if args.flag("help") {
                return Ok(commands::trace_stats::USAGE.to_string());
            }
            commands::trace_stats::run(args)
        }
        "simulate" => {
            if args.flag("help") {
                return Ok(commands::simulate::USAGE.to_string());
            }
            commands::simulate::run(args)
        }
        "sweep" => {
            if args.flag("help") {
                return Ok(commands::sweep::USAGE.to_string());
            }
            commands::sweep::run(args)
        }
        "routing" => {
            if args.flag("help") {
                return Ok(commands::routing::USAGE.to_string());
            }
            commands::routing::run(args)
        }
        "capacity" => {
            if args.flag("help") {
                return Ok(commands::capacity::USAGE.to_string());
            }
            commands::capacity::run(args)
        }
        "bench" => {
            if args.flag("help") {
                return Ok(commands::bench::USAGE.to_string());
            }
            commands::bench::run(args)
        }
        "node" => {
            if args.flag("help") {
                return Ok(commands::node::USAGE.to_string());
            }
            commands::node::run(args)
        }
        "gateway" => {
            if args.flag("help") {
                return Ok(commands::gateway::USAGE.to_string());
            }
            commands::gateway::run(args)
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n\n{TOP_USAGE}"
        ))),
    }
}

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1);
    let Some(command) = raw.next() else {
        eprintln!("{TOP_USAGE}");
        return ExitCode::FAILURE;
    };
    if command == "--help" || command == "help" {
        println!("{TOP_USAGE}");
        return ExitCode::SUCCESS;
    }
    let args = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match dispatch(&command, &args) {
        Ok(output) => {
            if output.ends_with('\n') {
                print!("{output}");
            } else {
                println!("{output}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_command_mentions_usage() {
        let args = Args::parse(Vec::new()).unwrap();
        let err = dispatch("teleport", &args).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
        assert!(err.to_string().contains("gen-trace"));
    }

    #[test]
    fn help_flags_print_usage() {
        let args = Args::parse(vec!["--help".to_string()]).unwrap();
        for cmd in [
            "gen-trace",
            "shard",
            "shard-info",
            "trace-stats",
            "simulate",
            "sweep",
            "routing",
            "capacity",
            "bench",
            "node",
            "gateway",
        ] {
            let out = dispatch(cmd, &args).unwrap();
            assert!(out.contains("mbt"), "{cmd} help: {out}");
        }
    }

    #[test]
    fn capacity_command_works_end_to_end() {
        let args = Args::parse(vec!["--max-n".to_string(), "4".to_string()]).unwrap();
        let out = dispatch("capacity", &args).unwrap();
        assert!(out.contains("HOLDS"));
    }
}
