//! `mbt gen-trace` — generate a synthetic contact trace.

use std::fs::File;
use std::io::BufWriter;

use dtn_trace::generators::{DieselNetConfig, NusConfig, RandomWaypointConfig};
use dtn_trace::{write_trace, ContactTrace, Perturbation};

use crate::args::Args;
use crate::CliError;

/// Usage text for the subcommand.
pub const USAGE: &str = "mbt gen-trace --out <file> [--model dieselnet|nus|rwp] \
[--nodes N] [--days N] [--seed N] [--attendance 0..1] [--weekends] \
[--drop 0..1] [--truncate 0..1]";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let model = args.str_or("model", "dieselnet").to_string();
    let nodes = args.parse_or("nodes", 40u32, "an integer")?;
    let days = args.parse_or("days", 15u64, "an integer")?;
    let seed = args.parse_or("seed", 42u64, "an integer")?;
    let out = args
        .opt_str("out")
        .ok_or(crate::args::ArgError::MissingOption("out"))?
        .to_string();

    let mut trace: ContactTrace = match model.as_str() {
        "dieselnet" => DieselNetConfig::new(nodes, days).seed(seed).generate(),
        "nus" => {
            let attendance = args.parse_or("attendance", 1.0f64, "a number in [0,1]")?;
            NusConfig::new(nodes, days)
                .seed(seed)
                .attendance_rate(attendance.clamp(0.0, 1.0))
                .weekends_off(!args.flag("weekends"))
                .generate()
        }
        "rwp" => RandomWaypointConfig::new(nodes, days * dtn_trace::SECONDS_PER_DAY)
            .seed(seed)
            .generate(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown model `{other}` (expected dieselnet, nus, or rwp)"
            )))
        }
    };

    // Optional degradation: drop contacts and truncate windows before
    // writing, so the file itself records the perturbed mobility.
    let drop = args
        .parse_or("drop", 0.0f64, "a number in [0,1]")?
        .clamp(0.0, 1.0);
    let truncate = args
        .parse_or("truncate", 0.0f64, "a number in [0,1]")?
        .clamp(0.0, 1.0);
    let perturbation = Perturbation::new()
        .drop_rate(drop)
        .truncate_rate(truncate)
        .seed(seed);
    let mut note = String::new();
    if !perturbation.is_noop() {
        let before = trace.len();
        trace = perturbation.apply(&trace);
        note = format!(
            " (perturbed: drop {drop:.2}, truncate {truncate:.2}; {before} -> {} contacts)",
            trace.len()
        );
    }

    let file = File::create(&out).map_err(|e| CliError::Io(out.clone(), e))?;
    write_trace(BufWriter::new(file), &trace).map_err(|e| CliError::Io(out.clone(), e))?;
    Ok(format!(
        "wrote {} contacts among {} nodes ({} days, model {model}) to {out}{note}",
        trace.len(),
        trace.node_count(),
        days
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn generates_dieselnet_file() {
        let dir = std::env::temp_dir().join("mbt-cli-test-gen");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.trace");
        let msg = run(&args(&format!(
            "--model dieselnet --nodes 10 --days 2 --seed 1 --out {}",
            path.display()
        )))
        .unwrap();
        assert!(msg.contains("wrote"));
        let trace = dtn_trace::read_trace(std::fs::File::open(&path).unwrap()).unwrap();
        assert!(!trace.is_empty());
    }

    #[test]
    fn drop_perturbation_thins_the_written_trace() {
        let dir = std::env::temp_dir().join("mbt-cli-test-gen");
        std::fs::create_dir_all(&dir).unwrap();
        let clean = dir.join("clean.trace");
        let thinned = dir.join("thinned.trace");
        run(&args(&format!(
            "--model dieselnet --nodes 10 --days 3 --seed 1 --out {}",
            clean.display()
        )))
        .unwrap();
        let msg = run(&args(&format!(
            "--model dieselnet --nodes 10 --days 3 --seed 1 --drop 0.5 --out {}",
            thinned.display()
        )))
        .unwrap();
        assert!(msg.contains("perturbed"), "missing note: {msg}");
        let full = dtn_trace::read_trace(std::fs::File::open(&clean).unwrap()).unwrap();
        let thin = dtn_trace::read_trace(std::fs::File::open(&thinned).unwrap()).unwrap();
        assert!(thin.len() < full.len(), "drop 0.5 should remove contacts");
    }

    #[test]
    fn rejects_unknown_model() {
        let err = run(&args("--model teleport --out /tmp/x.trace")).unwrap_err();
        assert!(err.to_string().contains("teleport"));
    }

    #[test]
    fn requires_out() {
        let err = run(&args("--model nus")).unwrap_err();
        assert!(err.to_string().contains("--out"));
    }
}
