//! `mbt gen-trace` — generate a synthetic contact trace.

use std::fs::File;
use std::io::BufWriter;

use dtn_trace::generators::{DieselNetConfig, NusConfig, RandomWaypointConfig};
use dtn_trace::{write_trace, ContactTrace};

use crate::args::Args;
use crate::CliError;

/// Usage text for the subcommand.
pub const USAGE: &str = "mbt gen-trace --out <file> [--model dieselnet|nus|rwp] \
[--nodes N] [--days N] [--seed N] [--attendance 0..1] [--weekends]";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let model = args.str_or("model", "dieselnet").to_string();
    let nodes = args.parse_or("nodes", 40u32, "an integer")?;
    let days = args.parse_or("days", 15u64, "an integer")?;
    let seed = args.parse_or("seed", 42u64, "an integer")?;
    let out = args
        .opt_str("out")
        .ok_or(crate::args::ArgError::MissingOption("out"))?
        .to_string();

    let trace: ContactTrace = match model.as_str() {
        "dieselnet" => DieselNetConfig::new(nodes, days).seed(seed).generate(),
        "nus" => {
            let attendance = args.parse_or("attendance", 1.0f64, "a number in [0,1]")?;
            NusConfig::new(nodes, days)
                .seed(seed)
                .attendance_rate(attendance.clamp(0.0, 1.0))
                .weekends_off(!args.flag("weekends"))
                .generate()
        }
        "rwp" => RandomWaypointConfig::new(nodes, days * dtn_trace::SECONDS_PER_DAY)
            .seed(seed)
            .generate(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown model `{other}` (expected dieselnet, nus, or rwp)"
            )))
        }
    };

    let file = File::create(&out).map_err(|e| CliError::Io(out.clone(), e))?;
    write_trace(BufWriter::new(file), &trace).map_err(|e| CliError::Io(out.clone(), e))?;
    Ok(format!(
        "wrote {} contacts among {} nodes ({} days, model {model}) to {out}",
        trace.len(),
        trace.node_count(),
        days
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn generates_dieselnet_file() {
        let dir = std::env::temp_dir().join("mbt-cli-test-gen");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.trace");
        let msg = run(&args(&format!(
            "--model dieselnet --nodes 10 --days 2 --seed 1 --out {}",
            path.display()
        )))
        .unwrap();
        assert!(msg.contains("wrote"));
        let trace = dtn_trace::read_trace(std::fs::File::open(&path).unwrap()).unwrap();
        assert!(!trace.is_empty());
    }

    #[test]
    fn rejects_unknown_model() {
        let err = run(&args("--model teleport --out /tmp/x.trace")).unwrap_err();
        assert!(err.to_string().contains("teleport"));
    }

    #[test]
    fn requires_out() {
        let err = run(&args("--model nus")).unwrap_err();
        assert!(err.to_string().contains("--out"));
    }
}
