//! The `mbt` subcommands.

pub mod bench;
pub mod capacity;
pub mod gen_trace;
pub mod routing;
pub mod shard;
pub mod shard_info;
pub mod simulate;
pub mod trace_stats;
