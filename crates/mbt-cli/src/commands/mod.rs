//! The `mbt` subcommands.

pub mod bench;
pub mod capacity;
pub mod gateway;
pub mod gen_trace;
pub mod node;
pub mod routing;
pub mod shard;
pub mod shard_info;
pub mod simulate;
pub mod sweep;
pub mod trace_stats;
