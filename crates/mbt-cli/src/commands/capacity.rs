//! `mbt capacity` — print the §V broadcast-vs-pair-wise capacity table.

use mbt_experiments::capacity::{capacity_table, crossover_holds};
use mbt_experiments::report::capacity_table_text;

use crate::args::Args;
use crate::CliError;

/// Usage text for the subcommand.
pub const USAGE: &str = "mbt capacity [--max-n N]";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let max_n = args.parse_or("max-n", 20usize, "an integer")?.max(2);
    let rows = capacity_table(max_n, 10_000);
    let mut out = capacity_table_text(&rows);
    out.push_str(&format!(
        "crossover statement: {}\n",
        if crossover_holds(&rows) {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prints_table() {
        let args = Args::parse(vec!["--max-n".to_string(), "5".to_string()]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("HOLDS"));
        assert_eq!(out.lines().count(), 6); // header + n=2..5 + crossover line
    }

    #[test]
    fn clamps_tiny_max_n() {
        let args = Args::parse(vec!["--max-n".to_string(), "1".to_string()]).unwrap();
        assert!(run(&args).is_ok());
    }
}
