//! `mbt node` — run live nodes and a gateway on the threaded frame bus.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use dtn_trace::NodeId;
use mbt_core::transport::live::{run_live_session, LiveGatewaySpec, LiveNodeSpec, LiveSessionSpec};
use mbt_core::{Metadata, MetadataServer, Popularity, Query, Uri};

use crate::args::Args;
use crate::CliError;

/// Usage text for the subcommand.
pub const USAGE: &str = "mbt node [--nodes N] [--files N] [--file-bytes N] \
[--piece-size N] [--seed N] [--settle-ms N]

Runs an in-process live session: N nodes (threads) and one gateway on the
frame bus, over a synthetic two-contact schedule. In contact 1 node 0 meets
the gateway and pulls every queried file (search -> metadata -> piece
requests -> pieces); in contact 2 all nodes meet and node 0 serves the rest
peer-to-peer. Prints per-node deliveries with SHA-1 digests and the bus
frame counters.";

/// Deterministic pseudo-random content (xorshift64*), so runs with the same
/// seed publish byte-identical files.
fn content_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed.wrapping_mul(2_685_821_657_736_338_717) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let nodes = args.parse_or("nodes", 3usize, "an integer")?.clamp(1, 64);
    let files = args.parse_or("files", 2usize, "an integer")?.clamp(1, 64);
    let file_bytes = args
        .parse_or("file-bytes", 1536usize, "an integer")?
        .clamp(1, 1 << 20);
    let piece_size = args
        .parse_or("piece-size", 256usize, "an integer")?
        .clamp(1, 1 << 20);
    let seed = args.parse_or("seed", 42u64, "an integer")?;
    let settle_ms = args.parse_or("settle-ms", 60u64, "an integer")?.max(10);

    let mut server = MetadataServer::new(1);
    let mut contents: BTreeMap<Uri, Vec<u8>> = BTreeMap::new();
    let mut queries = Vec::new();
    for i in 0..files {
        let uri =
            Uri::new(format!("mbt://live/feed{i}")).map_err(|e| CliError::Usage(e.to_string()))?;
        let bytes = content_bytes(seed.wrapping_add(i as u64), file_bytes);
        let metadata = Metadata::builder(format!("live news feed{i}"), "FOX", uri.clone())
            .content(&bytes, piece_size)
            .build();
        server.publish(metadata, Popularity::new(0.8));
        contents.insert(uri, bytes);
        queries.push(Query::new(format!("news feed{i}")).expect("non-empty query"));
    }

    let gateway_id = NodeId::new(nodes as u32 + 100);
    let all_nodes: Vec<NodeId> = (0..nodes as u32).map(NodeId::new).collect();
    let spec = LiveSessionSpec {
        nodes: all_nodes
            .iter()
            .map(|&id| LiveNodeSpec {
                id,
                queries: queries.clone(),
            })
            .collect(),
        gateway: Some(LiveGatewaySpec {
            id: gateway_id,
            snapshot: server.snapshot(),
            content: contents,
        }),
        schedule: vec![vec![all_nodes[0], gateway_id], all_nodes.clone()],
        settle: Duration::from_millis(settle_ms),
    };
    let report = run_live_session(spec);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "live session: {nodes} node(s) + gateway, {files} file(s) x {file_bytes} B \
         (pieces of {piece_size} B), seed {seed}"
    );
    for (&id, delivered) in &report.deliveries {
        let _ = writeln!(
            out,
            "  node {}: {} file(s) delivered",
            id.index(),
            delivered.len()
        );
        for (uri, digest) in delivered {
            let _ = writeln!(out, "    {uri} sha1={}", digest.to_hex());
        }
    }
    let _ = writeln!(out, "  frames on the wire:");
    for (kind, count) in &report.stats.frames_by_kind {
        let _ = writeln!(out, "    {kind:<15} {count:>6}");
    }
    let _ = writeln!(
        out,
        "  bytes on wire: {}  dropped frames: {}",
        report.stats.bytes_on_wire, report.stats.frames_dropped
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn default_session_delivers_every_file_to_every_node() {
        let out = run(&args("--nodes 3 --files 2")).unwrap();
        assert!(out.contains("node 0: 2 file(s) delivered"), "{out}");
        assert!(out.contains("node 2: 2 file(s) delivered"), "{out}");
        assert!(out.contains("sha1="));
        assert!(out.contains("piece"));
    }

    #[test]
    fn same_seed_prints_identical_output() {
        let first = run(&args("--nodes 2 --files 1 --seed 7")).unwrap();
        let second = run(&args("--nodes 2 --files 1 --seed 7")).unwrap();
        assert_eq!(first, second);
    }
}
