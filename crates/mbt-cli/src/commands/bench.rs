//! `mbt bench` — run the quick-scale figure sweeps under telemetry and emit
//! a schema-versioned perf report (`BENCH_sweep.json`).
//!
//! The report carries the schema tag, `git describe`, wall-clock per phase,
//! cells/sec throughput, and the deterministic counter totals; `perf-check`
//! diffs it against the committed baseline in CI.

use std::fmt::Write as _;

use dtn_sim::telemetry::{rate_per_sec, Phase};
use mbt_experiments::perf::{
    run_bench, run_city_bench_report, run_server_bench_report, BenchReport, CityBenchConfig,
    ServerBenchConfig,
};
use mbt_experiments::{ExecConfig, Scale};

use crate::args::Args;
use crate::CliError;

/// Usage text for the subcommand.
pub const USAGE: &str = "mbt bench [--scale quick|full] [--jobs N] \
[--replicates N] [--seed N] [--out PATH]
mbt bench --server [--server-records N] [--server-ops N] \
[--server-shards N] [--seed N] [--out PATH]
mbt bench --city [--city-nodes N] [--city-days N] [--city-routes N] \
[--city-prefetch N] [--city-dir DIR] [--seed N] [--out PATH]

runs fig2a + fig3a + the fault sweep under telemetry and writes a
schema-versioned JSON perf report (default BENCH_sweep.json); with
--server, instead benches the sharded metadata server (synthetic corpus
+ mixed query storm, default 1e6 records / 1e5 ops / 8 shards); with
--city, generates a city-sized DieselNet trace into shards and
stream-simulates it with prefetch (default 1e6 nodes / 30 days /
5e5 routes / prefetch 1 — a long run; shards land in --city-dir,
default a temp directory)";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let exec = ExecConfig::default()
        .jobs(args.parse_or("jobs", 1usize, "an integer")?)
        .replicates(args.parse_or("replicates", 1u32, "an integer")?)
        .master_seed(args.parse_or("seed", 42u64, "an integer")?);
    let out_path = args.str_or("out", "BENCH_sweep.json").to_string();

    let report = if args.flag("server") {
        let defaults = ServerBenchConfig::default();
        let cfg = ServerBenchConfig {
            records: args.parse_or("server-records", defaults.records, "an integer")?,
            ops: args.parse_or("server-ops", defaults.ops, "an integer")?,
            shards: args.parse_or("server-shards", defaults.shards, "an integer")?,
            seed: args.parse_or("seed", 42u64, "an integer")?,
        };
        if cfg.records == 0 || cfg.ops == 0 {
            return Err(CliError::Usage(
                "--server-records and --server-ops must be positive".into(),
            ));
        }
        run_server_bench_report(&cfg, &exec)
    } else if args.flag("city") {
        let defaults = CityBenchConfig::default();
        let cfg = CityBenchConfig {
            nodes: args.parse_or("city-nodes", defaults.nodes, "an integer")?,
            days: args.parse_or("city-days", defaults.days, "an integer")?,
            routes: args.parse_or("city-routes", defaults.routes, "an integer")?,
            prefetch: args.parse_or("city-prefetch", defaults.prefetch, "an integer")?,
            seed: args.parse_or("seed", 42u64, "an integer")?,
        };
        if cfg.nodes == 0 || cfg.days == 0 {
            return Err(CliError::Usage(
                "--city-nodes and --city-days must be positive".into(),
            ));
        }
        let dir = args
            .opt_str("city-dir")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("mbt-city-bench-shards"));
        run_city_bench_report(&cfg, &exec, &dir).map_err(CliError::Usage)?
    } else {
        let scale = match args.str_or("scale", "quick") {
            "quick" => Scale::Quick,
            "full" => Scale::Full,
            other => {
                return Err(CliError::Usage(format!(
                    "unknown scale `{other}` (expected quick or full)"
                )))
            }
        };
        run_bench(scale, &exec)
    };
    std::fs::write(&out_path, report.to_json()).map_err(|e| CliError::Io(out_path.clone(), e))?;
    Ok(render(&report, &out_path))
}

fn render(report: &BenchReport, out_path: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench {} ({}) — {} cells in {:.2}s ({:.2} cells/s)",
        report.scale, report.git, report.cells, report.wall_secs, report.cells_per_sec
    );
    let _ = writeln!(out, "  sweeps: {}", report.sweeps.join(", "));
    for phase in Phase::ALL {
        let span = report.phases.get(phase);
        let _ = writeln!(
            out,
            "  phase {:<20} {:>9.3}s",
            phase.name(),
            span.as_secs_f64()
        );
    }
    for (name, value) in report.counters.entries() {
        // Guarded rate: an empty sweep reports 0, never NaN.
        let per_cell = if report.cells == 0 {
            0.0
        } else {
            value as f64 / report.cells as f64
        };
        let _ = writeln!(
            out,
            "  counter {name:<20} {value:>12}  ({per_cell:.1}/cell)"
        );
    }
    let _ = writeln!(
        out,
        "  throughput {:.2} contacts/s",
        rate_per_sec(
            report.counters.contacts,
            std::time::Duration::from_secs_f64(report.wall_secs.max(0.0)),
        )
    );
    if let Some(sb) = &report.server {
        let _ = writeln!(
            out,
            "  server bench: {} records / {} shards, {} ops in {:.2}s \
             ({:.0} ops/s, build {:.2}s)",
            sb.records, sb.shards, sb.ops, sb.run_secs, sb.ops_per_sec, sb.build_secs
        );
        let _ = writeln!(
            out,
            "    publishes {} searches {} requests {} expired {} hits {}",
            sb.publishes, sb.searches, sb.requests, sb.expired, sb.hits
        );
        let _ = writeln!(out, "    result digest {:#018x}", sb.result_digest);
    }
    if let Some(cb) = &report.city {
        let _ = writeln!(
            out,
            "  city bench: {} nodes / {} routes, {} days -> {} contacts in {} shards",
            cb.nodes, cb.routes, cb.days, cb.contacts, cb.shards
        );
        let _ = writeln!(
            out,
            "    gen {:.2}s, sim {:.2}s ({:.0} contacts/s, prefetch {})",
            cb.gen_secs, cb.sim_secs, cb.contacts_per_sec, cb.prefetch
        );
        let _ = writeln!(
            out,
            "    shards loaded {} prefetched {} peak resident contacts {}",
            cb.shards_loaded, cb.shards_prefetched, cb.peak_resident_contacts
        );
        let _ = writeln!(
            out,
            "    residue peak {} nodes (~{} bytes); {} queries, {} files delivered",
            cb.peak_residue_nodes, cb.residue_bytes_est, cb.queries, cb.files_delivered
        );
        let _ = writeln!(out, "    result digest {:#018x}", cb.result_digest);
    }
    let _ = writeln!(out, "  report written to {out_path}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    fn out_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mbt-cli-test-bench");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}.json"))
    }

    #[test]
    fn quick_bench_writes_schema_versioned_report() {
        let path = out_path("quick");
        let out = run(&args(&format!(
            "--scale quick --jobs 1 --out {}",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("cells"), "{out}");
        assert!(out.contains("phase contact_processing"), "{out}");
        let report = BenchReport::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(report.schema, mbt_experiments::perf::BENCH_SCHEMA);
        assert_eq!(report.sweeps, ["fig2a", "fig3a", "fault_sweep"]);
        assert!(report.cells > 0);
        assert!(report.counters.contacts > 0);
        assert!(report.counters.bytes_moved > 0);
    }

    #[test]
    fn rejects_unknown_scale() {
        let err = run(&args("--scale planetary")).unwrap_err();
        assert!(err.to_string().contains("planetary"));
    }

    #[test]
    fn server_bench_writes_a_server_section() {
        let path = out_path("server");
        let out = run(&args(&format!(
            "--server --server-records 400 --server-ops 300 --server-shards 4 \
             --jobs 1 --out {}",
            path.display()
        )))
        .unwrap();
        assert!(
            out.contains("server bench: 400 records / 4 shards"),
            "{out}"
        );
        assert!(out.contains("result digest 0x"), "{out}");
        let report = BenchReport::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(report.scale, "server");
        assert!(report.sweeps.is_empty());
        let sb = report.server.expect("server section");
        assert_eq!((sb.records, sb.shards, sb.ops), (400, 4, 300));
        assert!(sb.searches > 0 && sb.hits > 0);
    }

    #[test]
    fn server_bench_rejects_degenerate_shapes() {
        let err = run(&args("--server --server-records 0")).unwrap_err();
        assert!(err.to_string().contains("positive"));
    }

    #[test]
    fn city_bench_writes_a_city_section() {
        let path = out_path("city");
        let dir = std::env::temp_dir().join("mbt-cli-test-bench/city-shards");
        let _ = std::fs::remove_dir_all(&dir);
        let out = run(&args(&format!(
            "--city --city-nodes 24 --city-days 4 --city-routes 8 --city-prefetch 1 \
             --seed 5 --jobs 1 --city-dir {} --out {}",
            dir.display(),
            path.display()
        )))
        .unwrap();
        assert!(out.contains("city bench: 24 nodes / 8 routes"), "{out}");
        assert!(out.contains("result digest 0x"), "{out}");
        let report = BenchReport::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(report.scale, "city");
        let cb = report.city.expect("city section");
        assert_eq!((cb.nodes, cb.days, cb.routes), (24, 4, 8));
        assert!(cb.contacts > 0 && cb.shards > 1);
        assert_eq!(cb.shards_loaded, cb.shards, "single-decode replay");
        assert!(
            dir.join("manifest.txt").exists(),
            "shards kept in --city-dir"
        );
    }

    #[test]
    fn city_bench_rejects_degenerate_shapes() {
        let err = run(&args("--city --city-nodes 0")).unwrap_err();
        assert!(err.to_string().contains("positive"));
    }
}
