//! `mbt routing` — run a store-carry-forward routing protocol over a trace.

use std::fmt::Write as _;
use std::fs::File;

use dtn_routing::protocols::{DirectDelivery, Epidemic, Prophet, SprayAndWait};
use dtn_routing::sim::{uniform_messages, RoutingReport, RoutingSim};
use dtn_trace::{read_trace, SimDuration, SimTime};

use crate::args::Args;
use crate::CliError;

/// Usage text for the subcommand.
pub const USAGE: &str = "mbt routing <trace-file> [--protocol epidemic|prophet|spray|direct] \
[--messages N] [--ttl-days N] [--copies N] [--seed N]";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let path = args.positional(0, "trace-file")?.to_string();
    let file = File::open(&path).map_err(|e| CliError::Io(path.clone(), e))?;
    let trace = read_trace(file).map_err(|e| CliError::Usage(e.to_string()))?;
    if trace.node_count() < 2 {
        return Err(CliError::Usage(
            "trace has fewer than two nodes".to_string(),
        ));
    }

    let count = args.parse_or("messages", 200u64, "an integer")?;
    let ttl_days = args.parse_or("ttl-days", 2u64, "an integer")?;
    let copies = args.parse_or("copies", 8u32, "an integer")?;
    let seed = args.parse_or("seed", 42u64, "an integer")?;
    let nodes = trace.nodes();
    let horizon = trace.end_time().unwrap_or(SimTime::from_secs(1));
    let mut rng = dtn_sim::rng::stream(seed, "cli-routing");
    let msgs = uniform_messages(
        &nodes,
        count,
        horizon,
        Some(SimDuration::from_days(ttl_days)),
        &mut rng,
    );

    let report: RoutingReport = match args.str_or("protocol", "epidemic") {
        "epidemic" => RoutingSim::new(&trace, Epidemic::new()).run(msgs),
        "prophet" => RoutingSim::new(&trace, Prophet::new()).run(msgs),
        "spray" => RoutingSim::new(&trace, SprayAndWait::new(copies.max(1))).run(msgs),
        "direct" => RoutingSim::new(&trace, DirectDelivery::new()).run(msgs),
        other => {
            return Err(CliError::Usage(format!(
                "unknown protocol `{other}` (expected epidemic, prophet, spray, or direct)"
            )))
        }
    };

    let mut out = String::new();
    let _ = writeln!(out, "{} over {path}", report.protocol);
    let _ = writeln!(out, "  created:    {}", report.created);
    let _ = writeln!(
        out,
        "  delivered:  {} (ratio {:.4})",
        report.delivered, report.delivery_ratio
    );
    if let Some(d) = report.mean_delay_secs {
        let _ = writeln!(out, "  mean delay: {:.1} h", d / 3600.0);
    }
    let _ = writeln!(out, "  transmissions: {}", report.transmissions);
    if let Some(o) = report.overhead {
        let _ = writeln!(out, "  overhead:   {o:.2} tx/delivery");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_trace::generators::DieselNetConfig;
    use dtn_trace::write_trace;

    fn trace_file(name: &str) -> std::path::PathBuf {
        // One file per test: tests run concurrently and must not share paths.
        let dir = std::env::temp_dir().join("mbt-cli-test-routing");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}.trace"));
        let trace = DieselNetConfig::new(10, 3).seed(5).generate();
        write_trace(std::fs::File::create(&path).unwrap(), &trace).unwrap();
        path
    }

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn runs_each_protocol() {
        let path = trace_file("each");
        for p in ["epidemic", "prophet", "spray", "direct"] {
            let out = run(&args(&format!(
                "{} --protocol {p} --messages 20",
                path.display()
            )))
            .unwrap();
            assert!(out.contains("delivered:"), "{p}: {out}");
        }
    }

    #[test]
    fn rejects_unknown_protocol() {
        let path = trace_file("reject");
        let err = run(&args(&format!("{} --protocol warp", path.display()))).unwrap_err();
        assert!(err.to_string().contains("warp"));
    }
}
