//! `mbt trace-stats` — inspect a contact trace.

use std::fmt::Write as _;
use std::fs::File;

use dtn_trace::{read_trace, AggregateGraph, SimDuration, TraceStats};

use crate::args::Args;
use crate::CliError;

/// Usage text for the subcommand.
pub const USAGE: &str = "mbt trace-stats <trace-file> [--frequent-days N]";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let path = args.positional(0, "trace-file")?.to_string();
    let frequent_days = args.parse_or("frequent-days", 1u64, "an integer")?;
    let file = File::open(&path).map_err(|e| CliError::Io(path.clone(), e))?;
    let trace = read_trace(file).map_err(|e| CliError::Usage(e.to_string()))?;
    let stats = TraceStats::compute(&trace);

    let mut out = String::new();
    let _ = writeln!(out, "trace: {path}");
    let _ = writeln!(out, "  contacts:        {}", trace.len());
    let _ = writeln!(out, "  nodes:           {}", trace.node_count());
    let _ = writeln!(
        out,
        "  span:            {:.2} days",
        trace.span().as_days_f64()
    );
    if let Some(mean) = stats.mean_contact_duration_secs() {
        let _ = writeln!(out, "  mean duration:   {mean:.0} s");
    }
    if let Some(size) = stats.mean_contact_size(&trace) {
        let _ = writeln!(out, "  mean clique:     {size:.1} nodes");
    }
    let pooled = stats.pooled_inter_contact_times();
    if !pooled.is_empty() {
        let median = pooled[pooled.len() / 2];
        let _ = writeln!(
            out,
            "  median inter-contact: {:.2} hours",
            median.as_secs() as f64 / 3600.0
        );
    }
    let freq = stats.frequent_contact_map(SimDuration::from_days(frequent_days));
    let with_frequent = freq.values().filter(|v| !v.is_empty()).count();
    let _ = writeln!(
        out,
        "  nodes with frequent contacts (every {frequent_days}d): {with_frequent} / {}",
        trace.node_count()
    );
    let graph = AggregateGraph::from_trace(&trace);
    let components = graph.components();
    let _ = writeln!(
        out,
        "  aggregate graph:  {} edges, density {:.3}, {} component(s){}",
        graph.edge_count(),
        graph.density(),
        components.len(),
        if graph.is_connected() {
            " (connected)"
        } else {
            ""
        }
    );
    if let Some(largest) = components.first() {
        let _ = writeln!(out, "  largest component: {} nodes", largest.len());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_trace::generators::NusConfig;
    use dtn_trace::write_trace;

    #[test]
    fn reports_basic_stats() {
        let dir = std::env::temp_dir().join("mbt-cli-test-stats");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        let trace = NusConfig::new(20, 5).seed(3).generate();
        write_trace(std::fs::File::create(&path).unwrap(), &trace).unwrap();
        let args = Args::parse(vec![path.display().to_string()]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("contacts:"));
        assert!(out.contains("mean clique:"));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let args = Args::parse(vec!["/nonexistent/nope.trace".to_string()]).unwrap();
        assert!(matches!(run(&args), Err(CliError::Io(..))));
    }
}
