//! `mbt sweep` — run a parameter sweep over a trace with a named protocol
//! list, rendering a paper-style table or CSV.
//!
//! Where `mbt simulate` runs one cell, this expands the full
//! *(x value × protocol × replicate)* grid on a thread pool. Protocols are
//! selected by registry name ([`ProtocolSpec::by_name`]), so the new
//! variants (PopCache, DiffuseRep) line up next to the paper's triad with
//! one flag.

use std::fs::File;
use std::sync::Arc;

use dtn_trace::{read_trace, ShardedTrace, SimDuration, TraceSource};
use mbt_core::ProtocolSpec;
use mbt_experiments::report::{figure_csv, figure_delay_csv, figure_table};
use mbt_experiments::runner::SimParams;
use mbt_experiments::{ExecConfig, ParallelRunner};

use crate::args::Args;
use crate::CliError;

/// Usage text for the subcommand.
pub const USAGE: &str = "mbt sweep <trace-file|shard-dir> \
[--protocols name,name,...] [--param internet|files-per-day|ttl] \
[--xs v,v,...] [--jobs N] [--replicates N] [--seed N] [--days N] \
[--files-per-day N] [--frequent-days N] [--csv | --delay-csv]

Expands the (x value x protocol x replicate) grid over the trace and prints
one series per selected protocol. --protocols picks registry names
(default: mbt,mbt-q,mbt-qm; also popcache, diffuserep — see
`mbt simulate`). --param chooses the swept axis (default: internet, the
Internet-access fraction). Output is an aligned table, `--csv` the legacy
ratio CSV, `--delay-csv` the ratio+delay CSV. Results are bit-identical for
any --jobs value.";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let path = args.positional(0, "trace-file")?.to_string();
    let source: Arc<dyn TraceSource> = if std::path::Path::new(&path).is_dir() {
        Arc::new(ShardedTrace::open(&path).map_err(|e| CliError::Usage(e.to_string()))?)
    } else {
        let file = File::open(&path).map_err(|e| CliError::Io(path.clone(), e))?;
        Arc::new(read_trace(file).map_err(|e| CliError::Usage(e.to_string()))?)
    };

    let protocols: Vec<ProtocolSpec> = args
        .str_or("protocols", "mbt,mbt-q,mbt-qm")
        .split(',')
        .map(|name| ProtocolSpec::by_name(name.trim()).map_err(|e| CliError::Usage(e.to_string())))
        .collect::<Result<_, _>>()?;

    let xs: Vec<f64> = args
        .str_or("xs", "0.1,0.3,0.5,0.7,0.9")
        .split(',')
        .map(|v| {
            v.trim()
                .parse::<f64>()
                .map_err(|_| CliError::Usage(format!("bad x value `{v}` (expected a number)")))
        })
        .collect::<Result<_, _>>()?;
    if xs.is_empty() {
        return Err(CliError::Usage("need at least one x value".to_string()));
    }

    let default_days = source.span().as_days_f64().ceil().max(1.0) as u64;
    let base = SimParams::builder()
        .days(args.parse_or("days", default_days, "an integer")?)
        .files_per_day(args.parse_or("files-per-day", 40u32, "an integer")?)
        .frequent_window(SimDuration::from_days(args.parse_or(
            "frequent-days",
            1u64,
            "an integer",
        )?))
        .build();

    let param = args.str_or("param", "internet").to_string();
    let params_for = |x: f64| -> SimParams {
        let mut p = base.clone();
        match param.as_str() {
            "files-per-day" => p.files_per_day = x as u32,
            "ttl" => p.ttl_days = x as u64,
            _ => p.internet_fraction = x.clamp(0.0, 1.0),
        }
        p
    };
    match param.as_str() {
        "internet" | "files-per-day" | "ttl" => {}
        other => {
            return Err(CliError::Usage(format!(
                "unknown sweep parameter `{other}` (expected internet, files-per-day, or ttl)"
            )))
        }
    }

    let exec = ExecConfig::default()
        .jobs(args.parse_or("jobs", 0usize, "an integer")?)
        .replicates(args.parse_or("replicates", 1u32, "an integer")?)
        .master_seed(args.parse_or("seed", 42u64, "an integer")?);
    let fig = ParallelRunner::new(exec)
        .with_protocols(protocols)
        .sweep_shared_source(
            "sweep",
            &format!("sweep of {param} over {path}"),
            &param,
            &xs,
            source,
            params_for,
            None,
        );

    if args.flag("delay-csv") {
        Ok(figure_delay_csv(&fig))
    } else if args.flag("csv") {
        Ok(figure_csv(&fig))
    } else {
        Ok(figure_table(&fig))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_trace::generators::NusConfig;
    use dtn_trace::write_trace;

    fn trace_file(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mbt-cli-test-sweep");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}.trace"));
        let trace = NusConfig::new(20, 5).seed(3).generate();
        write_trace(std::fs::File::create(&path).unwrap(), &trace).unwrap();
        path
    }

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn default_sweep_prints_triad_table() {
        let path = trace_file("default");
        let out = run(&args(&format!(
            "{} --xs 0.3,0.7 --files-per-day 5",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("MBT-QM"), "{out}");
        assert!(out.contains("0.300"), "{out}");
    }

    #[test]
    fn named_protocols_drive_csv_columns() {
        let path = trace_file("named");
        let out = run(&args(&format!(
            "{} --protocols popcache,diffuserep --xs 0.5 --files-per-day 5 --csv",
            path.display()
        )))
        .unwrap();
        assert!(out.starts_with("x,protocol"), "{out}");
        assert!(out.contains("0.5,PopCache,"), "{out}");
        assert!(out.contains("0.5,DiffuseRep,"), "{out}");
        assert!(!out.contains("MBT-Q,"), "unselected protocol leaked: {out}");
    }

    #[test]
    fn delay_csv_has_delay_columns() {
        let path = trace_file("delay");
        let out = run(&args(&format!(
            "{} --protocols mbt --xs 0.5 --files-per-day 5 --delay-csv",
            path.display()
        )))
        .unwrap();
        assert!(
            out.contains("metadata_delay_hours,file_delay_hours"),
            "{out}"
        );
    }

    #[test]
    fn unknown_protocol_name_gets_did_you_mean() {
        let path = trace_file("badname");
        let err = run(&args(&format!("{} --protocols mbtt", path.display()))).unwrap_err();
        assert!(err.to_string().contains("did you mean"), "{err}");
    }

    #[test]
    fn jobs_do_not_change_output() {
        let path = trace_file("jobs");
        let base = format!("{} --xs 0.3,0.7 --files-per-day 5 --csv", path.display());
        let serial = run(&args(&format!("{base} --jobs 1"))).unwrap();
        let parallel = run(&args(&format!("{base} --jobs 8"))).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn rejects_unknown_param() {
        let path = trace_file("badparam");
        let err = run(&args(&format!("{} --param beard-length", path.display()))).unwrap_err();
        assert!(err.to_string().contains("unknown sweep parameter"), "{err}");
    }
}
