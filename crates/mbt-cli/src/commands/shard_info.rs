//! `mbt shard-info` — inspect a sharded trace directory's manifest.

use std::fmt::Write as _;

use dtn_trace::{ShardedTrace, TraceSource};

use crate::args::Args;
use crate::CliError;

/// Usage text for the subcommand.
pub const USAGE: &str = "mbt shard-info <shard-dir> [--verify]

Prints the manifest facts of a sharded trace (see `mbt shard`): contact
and node counts, id space, time span, shard window, and the per-shard
contact distribution. Reads only the manifest, never the shards — unless
--verify is given, which re-reads every shard and checks its contact and
pair counts (and pair sidecars) against the manifest.";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let path = args.positional(0, "shard-dir")?.to_string();
    let sharded = ShardedTrace::open(&path).map_err(|e| CliError::Usage(e.to_string()))?;
    let verified = if args.flag("verify") {
        sharded
            .verify()
            .map_err(|e| CliError::Usage(e.to_string()))?;
        true
    } else {
        false
    };

    let mut out = String::new();
    let _ = writeln!(out, "sharded trace: {path}");
    let _ = writeln!(out, "  contacts:      {}", sharded.len());
    let _ = writeln!(out, "  nodes:         {}", sharded.nodes().len());
    let _ = writeln!(out, "  id space:      {}", sharded.id_space());
    let _ = writeln!(
        out,
        "  span:          {:.2} days (start {} s, end {} s)",
        sharded.span().as_days_f64(),
        sharded.start_time().map_or(0, |t| t.as_secs()),
        sharded.end_time().map_or(0, |t| t.as_secs())
    );
    let _ = writeln!(out, "  window:        {} s", sharded.window().as_secs());
    let _ = writeln!(out, "  shards:        {}", sharded.shard_count());
    let _ = writeln!(
        out,
        "  largest shard: {} contacts (bounds resident memory during replay)",
        sharded.largest_shard_contacts()
    );
    for meta in sharded.shards() {
        let _ = writeln!(
            out,
            "    {}  window {:>4}  {:>8} contacts",
            meta.file, meta.window_index, meta.contacts
        );
    }
    if verified {
        let _ = writeln!(
            out,
            "  verified: all {} shards match the manifest",
            sharded.shard_count()
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_trace::generators::DieselNetConfig;
    use dtn_trace::{ShardWriter, SimDuration};

    #[test]
    fn reports_manifest_facts() {
        let dir = std::env::temp_dir().join("mbt-cli-test-shard-info/basic");
        let _ = std::fs::remove_dir_all(&dir);
        let mut writer = ShardWriter::create(&dir, SimDuration::from_days(1)).unwrap();
        DieselNetConfig::new(10, 3)
            .seed(1)
            .generate_into(&mut writer);
        let sharded = writer.finish().unwrap();
        let args = Args::parse(vec![dir.display().to_string()]).unwrap();
        let out = run(&args).unwrap();
        assert!(
            out.contains(&format!("contacts:      {}", sharded.len())),
            "{out}"
        );
        assert!(out.contains(&format!("shards:        {}", sharded.shard_count())));
        assert!(out.contains("largest shard:"));
        assert!(out.contains("shard-00000.txt"));
    }

    #[test]
    fn missing_directory_is_a_usage_error() {
        let args = Args::parse(vec!["/nonexistent/shards".to_string()]).unwrap();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
    }

    fn verify_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mbt-cli-test-shard-info/{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut writer = ShardWriter::create(&dir, SimDuration::from_days(1)).unwrap();
        DieselNetConfig::new(10, 3)
            .seed(1)
            .generate_into(&mut writer);
        writer.finish().unwrap();
        dir
    }

    #[test]
    fn verify_flag_checks_every_shard() {
        let dir = verify_dir("verify-ok");
        let args = Args::parse(vec![dir.display().to_string(), "--verify".to_string()]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("verified: all"), "{out}");
    }

    #[test]
    fn verify_flag_surfaces_corruption_as_a_structured_error() {
        let dir = verify_dir("verify-bad");
        // Drop the last line of shard 0: the manifest count no longer holds.
        let shard = dir.join("shard-00000.txt");
        let text = std::fs::read_to_string(&shard).unwrap();
        let truncated: Vec<&str> = text.lines().collect();
        std::fs::write(&shard, truncated[..truncated.len() - 1].join("\n")).unwrap();
        let args = Args::parse(vec![dir.display().to_string(), "--verify".to_string()]).unwrap();
        let err = run(&args).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert!(err.to_string().contains("disagrees with manifest"), "{err}");
    }

    #[test]
    fn without_verify_corruption_goes_unnoticed() {
        let dir = verify_dir("no-verify");
        let shard = dir.join("shard-00000.txt");
        let text = std::fs::read_to_string(&shard).unwrap();
        let truncated: Vec<&str> = text.lines().collect();
        std::fs::write(&shard, truncated[..truncated.len() - 1].join("\n")).unwrap();
        let args = Args::parse(vec![dir.display().to_string()]).unwrap();
        assert!(
            run(&args).is_ok(),
            "manifest-only path must not read shards"
        );
    }
}
