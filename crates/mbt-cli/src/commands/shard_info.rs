//! `mbt shard-info` — inspect a sharded trace directory's manifest.

use std::fmt::Write as _;

use dtn_trace::{ShardedTrace, TraceSource};

use crate::args::Args;
use crate::CliError;

/// Usage text for the subcommand.
pub const USAGE: &str = "mbt shard-info <shard-dir>

Prints the manifest facts of a sharded trace (see `mbt shard`): contact
and node counts, id space, time span, shard window, and the per-shard
contact distribution. Reads only the manifest, never the shards.";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let path = args.positional(0, "shard-dir")?.to_string();
    let sharded = ShardedTrace::open(&path).map_err(|e| CliError::Usage(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(out, "sharded trace: {path}");
    let _ = writeln!(out, "  contacts:      {}", sharded.len());
    let _ = writeln!(out, "  nodes:         {}", sharded.nodes().len());
    let _ = writeln!(out, "  id space:      {}", sharded.id_space());
    let _ = writeln!(
        out,
        "  span:          {:.2} days (start {} s, end {} s)",
        sharded.span().as_days_f64(),
        sharded.start_time().map_or(0, |t| t.as_secs()),
        sharded.end_time().map_or(0, |t| t.as_secs())
    );
    let _ = writeln!(out, "  window:        {} s", sharded.window().as_secs());
    let _ = writeln!(out, "  shards:        {}", sharded.shard_count());
    let _ = writeln!(
        out,
        "  largest shard: {} contacts (bounds resident memory during replay)",
        sharded.largest_shard_contacts()
    );
    for meta in sharded.shards() {
        let _ = writeln!(
            out,
            "    {}  window {:>4}  {:>8} contacts",
            meta.file, meta.window_index, meta.contacts
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_trace::generators::DieselNetConfig;
    use dtn_trace::{ShardWriter, SimDuration};

    #[test]
    fn reports_manifest_facts() {
        let dir = std::env::temp_dir().join("mbt-cli-test-shard-info/basic");
        let _ = std::fs::remove_dir_all(&dir);
        let mut writer = ShardWriter::create(&dir, SimDuration::from_days(1)).unwrap();
        DieselNetConfig::new(10, 3)
            .seed(1)
            .generate_into(&mut writer);
        let sharded = writer.finish().unwrap();
        let args = Args::parse(vec![dir.display().to_string()]).unwrap();
        let out = run(&args).unwrap();
        assert!(
            out.contains(&format!("contacts:      {}", sharded.len())),
            "{out}"
        );
        assert!(out.contains(&format!("shards:        {}", sharded.shard_count())));
        assert!(out.contains("largest shard:"));
        assert!(out.contains("shard-00000.txt"));
    }

    #[test]
    fn missing_directory_is_a_usage_error() {
        let args = Args::parse(vec!["/nonexistent/shards".to_string()]).unwrap();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
    }
}
