//! `mbt simulate` — run the MBT file-sharing simulation over a trace file
//! or a sharded trace directory.

use std::fmt::Write as _;
use std::fs::File;
use std::time::Instant;

use dtn_sim::{FaultPlan, Telemetry};
use dtn_trace::{read_trace, ShardedTrace, SimDuration, TraceSource};
use mbt_core::{BroadcastOrdering, CooperationMode, MbtConfig, ProtocolSpec, TransportKind};
use mbt_experiments::perf::BenchReport;
use mbt_experiments::runner::{run_simulation, SimParams};
use mbt_experiments::ExecConfig;

use crate::args::Args;
use crate::CliError;

/// Usage text for the subcommand.
pub const USAGE: &str = "mbt simulate <trace-file|shard-dir> \
[--protocol mbt|mbt-q|mbt-qm|popcache|diffuserep] \
[--internet 0..1] [--files-per-day N] [--ttl N] [--days N] [--seed N] \
[--metadata-per-contact N] [--files-per-contact N] [--frequent-days N] \
[--loss 0..1] [--churn 0..1] [--truncate 0..1] [--corrupt 0..1] \
[--polluters 0..1] [--fakes-per-day N] [--tft] [--rarest-first] [--verify] \
[--transport sim|bus] [--prefetch N] [--perf-report PATH]

A directory argument is opened as a sharded trace (see `mbt shard`) and
replayed shard by shard with bounded memory; a file argument is read fully
into memory. Results are identical either way. --prefetch N decodes up to
N shards ahead of the simulation on a background worker (0 = serial;
in-memory traces ignore it); results are identical at every depth.";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let path = args.positional(0, "trace-file")?.to_string();
    // A directory is a sharded trace (replayed with bounded memory), a file
    // a fully resident one. The simulation cannot tell them apart.
    let source: Box<dyn TraceSource> = if std::path::Path::new(&path).is_dir() {
        Box::new(ShardedTrace::open(&path).map_err(|e| CliError::Usage(e.to_string()))?)
    } else {
        let file = File::open(&path).map_err(|e| CliError::Io(path.clone(), e))?;
        Box::new(read_trace(file).map_err(|e| CliError::Usage(e.to_string()))?)
    };

    let protocol = ProtocolSpec::by_name(args.str_or("protocol", "mbt"))
        .map_err(|e| CliError::Usage(e.to_string()))?;

    let default_days = source.span().as_days_f64().ceil().max(1.0) as u64;
    let mut config = MbtConfig::new()
        .metadata_per_contact(args.parse_or("metadata-per-contact", 20u32, "an integer")?)
        .files_per_contact(args.parse_or("files-per-contact", 4u32, "an integer")?);
    if args.flag("tft") {
        config = config.cooperation(CooperationMode::TitForTat);
    }
    if args.flag("rarest-first") {
        config = config.ordering(BroadcastOrdering::RarestFirst);
    }

    let seed = args.parse_or("seed", 42u64, "an integer")?;
    let rate = |name: &str| -> Result<f64, CliError> {
        Ok(args
            .parse_or(name, 0.0f64, "a number in [0,1]")?
            .clamp(0.0, 1.0))
    };
    let faults = FaultPlan::none()
        .loss(rate("loss")?)
        .truncate(rate("truncate")?)
        .churn(rate("churn")?)
        .corruption(rate("corrupt")?)
        .seed(seed);

    // Structured fault injection subsumes the legacy permanent-death churn:
    // `--churn` drives the plan's down intervals, not SimParams::churn.
    let params = SimParams::builder()
        .protocol(protocol)
        .config(config)
        .internet_fraction(
            args.parse_or("internet", 0.3f64, "a number in [0,1]")?
                .clamp(0.0, 1.0),
        )
        .files_per_day(args.parse_or("files-per-day", 40u32, "an integer")?)
        .ttl_days(args.parse_or("ttl", 3u64, "an integer")?)
        .days(args.parse_or("days", default_days, "an integer")?)
        .seed(seed)
        .frequent_window(SimDuration::from_days(args.parse_or(
            "frequent-days",
            1u64,
            "an integer",
        )?))
        .faults(faults)
        .polluter_fraction(
            args.parse_or("polluters", 0.0f64, "a number in [0,1]")?
                .clamp(0.0, 1.0),
        )
        .fakes_per_day(args.parse_or("fakes-per-day", 4u32, "an integer")?)
        .verify_metadata(args.flag("verify"))
        .prefetch(args.parse_or("prefetch", 0usize, "an integer")?)
        .transport(
            args.str_or("transport", "sim")
                .parse::<TransportKind>()
                .map_err(CliError::Usage)?,
        )
        .build();
    // With --perf-report the run goes through the observed path (identical
    // results — telemetry never feeds back) and the telemetry is written as
    // a schema-versioned JSON perf report.
    let perf_path = args.opt_str("perf-report").map(str::to_string);
    let started = Instant::now();
    let (r, perf_line) = match &perf_path {
        None => (run_simulation(source.as_ref(), &params, None), None),
        Some(report_path) => {
            let mut telemetry = Telemetry::default();
            let r = run_simulation(source.as_ref(), &params, Some(&mut telemetry));
            let report = BenchReport::new(
                "simulate",
                &ExecConfig::serial(),
                1,
                started.elapsed(),
                &telemetry,
                vec!["simulate".to_string()],
            );
            std::fs::write(report_path, report.to_json())
                .map_err(|e| CliError::Io(report_path.clone(), e))?;
            (r, Some(format!("  perf report written to {report_path}")))
        }
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "protocol {protocol} over {path} ({} contacts)",
        r.contacts
    );
    let _ = writeln!(out, "  queries (measured nodes): {}", r.queries);
    let _ = writeln!(
        out,
        "  metadata delivered: {:>6}  (ratio {:.4})",
        r.metadata_delivered, r.metadata_ratio
    );
    let _ = writeln!(
        out,
        "  files delivered:    {:>6}  (ratio {:.4})",
        r.files_delivered, r.file_ratio
    );
    if let Some(d) = r.mean_metadata_delay_hours {
        let _ = writeln!(out, "  mean metadata delay: {d:.1} h");
    }
    if let Some(d) = r.mean_file_delay_hours {
        let _ = writeln!(out, "  mean file delay:     {d:.1} h");
    }
    let _ = writeln!(
        out,
        "  broadcasts: {} metadata, {} files; {} queries distributed",
        r.metadata_broadcasts, r.file_broadcasts, r.queries_distributed
    );
    if !faults.is_noop() {
        let _ = writeln!(
            out,
            "  faults: loss {:.2}, truncate {:.2}, churn {:.2}, corrupt {:.2} \
             -> {} frames lost, {} corrupt receptions",
            faults.loss_rate,
            faults.truncate_rate,
            faults.churn,
            faults.corruption_rate,
            r.frames_lost,
            r.corrupt_receptions
        );
    }
    if let Some(line) = perf_line {
        let _ = writeln!(out, "{line}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_trace::generators::NusConfig;
    use dtn_trace::write_trace;

    fn trace_file(name: &str) -> std::path::PathBuf {
        // One file per test: tests run concurrently and must not share paths.
        let dir = std::env::temp_dir().join("mbt-cli-test-sim");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}.trace"));
        let trace = NusConfig::new(20, 5).seed(3).generate();
        write_trace(std::fs::File::create(&path).unwrap(), &trace).unwrap();
        path
    }

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn runs_default_simulation() {
        let path = trace_file("default");
        let out = run(&args(&format!("{} --files-per-day 8", path.display()))).unwrap();
        assert!(out.contains("metadata delivered"));
        assert!(out.contains("ratio"));
    }

    #[test]
    fn accepts_variant_and_flags() {
        let path = trace_file("flags");
        let out = run(&args(&format!(
            "{} --protocol mbt-qm --tft --loss 0.2 --files-per-day 8",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("MBT-QM"));
    }

    #[test]
    fn fault_flags_print_a_summary_line() {
        let path = trace_file("faults");
        let out = run(&args(&format!(
            "{} --loss 0.3 --truncate 0.4 --churn 0.2 --corrupt 0.1 --files-per-day 8",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("faults: loss 0.30"), "missing summary: {out}");
        assert!(out.contains("frames lost"));
    }

    #[test]
    fn clean_run_prints_no_fault_line() {
        let path = trace_file("clean");
        let out = run(&args(&format!("{} --files-per-day 8", path.display()))).unwrap();
        assert!(!out.contains("faults:"), "unexpected fault line: {out}");
    }

    #[test]
    fn perf_report_flag_writes_parseable_json_without_changing_results() {
        let path = trace_file("perf");
        let report_path = std::env::temp_dir().join("mbt-cli-test-sim/perf_report.json");
        let plain = run(&args(&format!("{} --files-per-day 8", path.display()))).unwrap();
        let observed = run(&args(&format!(
            "{} --files-per-day 8 --perf-report {}",
            path.display(),
            report_path.display()
        )))
        .unwrap();
        assert!(observed.contains("perf report written"));
        // Identical simulation output apart from the report line.
        assert_eq!(
            plain,
            observed.replace(
                &format!("  perf report written to {}\n", report_path.display()),
                ""
            )
        );
        let report =
            BenchReport::from_json(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
        assert_eq!(report.scale, "simulate");
        assert_eq!(report.cells, 1);
        assert!(report.counters.contacts > 0);
    }

    #[test]
    fn shard_directory_input_matches_file_input() {
        use dtn_trace::ContactSink as _;
        let path = trace_file("shard-src");
        let shard_dir = std::env::temp_dir().join("mbt-cli-test-sim/shard-src-dir");
        let _ = std::fs::remove_dir_all(&shard_dir);
        let trace = dtn_trace::read_trace(std::fs::File::open(&path).unwrap()).unwrap();
        let mut writer =
            dtn_trace::ShardWriter::create(&shard_dir, SimDuration::from_days(1)).unwrap();
        for c in trace.iter() {
            writer.push_contact(c.clone());
        }
        writer.finish().unwrap();
        let from_file = run(&args(&format!("{} --files-per-day 8", path.display()))).unwrap();
        let from_shards =
            run(&args(&format!("{} --files-per-day 8", shard_dir.display()))).unwrap();
        // The first line names the input path; everything after it must be
        // byte-identical across the two backings.
        let tail = |s: &str| s.split_once('\n').unwrap().1.to_string();
        assert_eq!(tail(&from_file), tail(&from_shards));
        // And prefetch must not change a byte either.
        for depth in [1, 3] {
            let prefetched = run(&args(&format!(
                "{} --files-per-day 8 --prefetch {depth}",
                shard_dir.display()
            )))
            .unwrap();
            assert_eq!(tail(&from_shards), tail(&prefetched), "depth {depth}");
        }
    }

    #[test]
    fn bus_transport_matches_sim_transport() {
        let path = trace_file("transport");
        let sim = run(&args(&format!(
            "{} --files-per-day 8 --transport sim",
            path.display()
        )))
        .unwrap();
        let bus = run(&args(&format!(
            "{} --files-per-day 8 --transport bus",
            path.display()
        )))
        .unwrap();
        assert_eq!(sim, bus);
    }

    #[test]
    fn rejects_unknown_transport() {
        let path = trace_file("bad-transport");
        let err = run(&args(&format!("{} --transport tcp", path.display()))).unwrap_err();
        assert!(err.to_string().contains("unknown transport"));
    }

    #[test]
    fn accepts_new_variants_by_name() {
        let path = trace_file("popcache");
        let out = run(&args(&format!(
            "{} --protocol popcache --files-per-day 8",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("PopCache"), "{out}");
    }

    #[test]
    fn unknown_protocol_suggests_closest() {
        let path = trace_file("suggest");
        let err = run(&args(&format!("{} --protocol popcash", path.display()))).unwrap_err();
        assert!(err.to_string().contains("did you mean `PopCache`"), "{err}");
    }

    #[test]
    fn rejects_unknown_protocol() {
        let path = trace_file("reject");
        let err = run(&args(&format!(
            "{} --protocol carrier-pigeon",
            path.display()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("carrier-pigeon"));
    }
}
