//! `mbt gateway` — stand up a live gateway and probe it with a search.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use dtn_trace::NodeId;
use mbt_core::transport::live::{run_gateway, LiveBus, LiveGatewaySpec};
use mbt_core::transport::WireMessage;
use mbt_core::{Metadata, MetadataServer, Popularity, Query, Uri};

use crate::args::Args;
use crate::CliError;

/// Usage text for the subcommand.
pub const USAGE: &str = "mbt gateway --query TEXT [--limit N] [--catalog N]

Starts a gateway thread answering from a ServerSnapshot over the live frame
bus, sends it one Search frame from a probe node, and prints the
SearchResults frame that comes back. The catalog is N built-in demo
entries. Demonstrates the `mbt node` / gateway wire protocol without a
full session.";

/// The built-in demo catalog: (name, publisher, popularity).
const DEMO: &[(&str, &str, f64)] = &[
    ("fox evening news", "FOX", 0.9),
    ("abc morning show", "ABC", 0.7),
    ("campus jazz podcast", "WXYC", 0.5),
    ("weather forecast daily", "NOAA", 0.4),
    ("open source radio news", "FLOSS", 0.2),
];

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let query_text = args
        .opt_str("query")
        .ok_or_else(|| CliError::Usage(format!("--query is required\n\n{USAGE}")))?;
    let query = Query::new(query_text)
        .map_err(|_| CliError::Usage("--query needs at least one word".to_string()))?;
    let limit = args.parse_or("limit", 8usize, "an integer")?.clamp(1, 64);
    let catalog = args
        .parse_or("catalog", DEMO.len(), "an integer")?
        .clamp(1, DEMO.len());

    let mut server = MetadataServer::new(1);
    for (i, &(name, publisher, pop)) in DEMO.iter().take(catalog).enumerate() {
        let uri = Uri::new(format!("mbt://catalog/{i}")).expect("static uri");
        server.publish(
            Metadata::builder(name, publisher, uri).build(),
            Popularity::new(pop),
        );
    }

    let gateway_id = NodeId::new(100);
    let probe_id = NodeId::new(0);
    let bus = LiveBus::new();
    let gateway_bus = bus.clone();
    let gateway = std::thread::spawn(move || {
        run_gateway(
            LiveGatewaySpec {
                id: gateway_id,
                snapshot: server.snapshot(),
                content: BTreeMap::new(),
            },
            gateway_bus,
        )
    });

    bus.open(probe_id, gateway_id);
    bus.send(
        probe_id,
        gateway_id,
        &WireMessage::Search {
            query: query.clone(),
            limit: limit as u32,
        },
    );
    let reply = bus.recv(probe_id, Duration::from_secs(5));
    bus.close(probe_id, gateway_id);
    bus.shutdown();
    gateway.join().expect("gateway thread panicked");

    let mut out = String::new();
    let _ = writeln!(out, "search `{}` (limit {limit})", query.text());
    match reply {
        Some((from, WireMessage::SearchResults { results })) => {
            let _ = writeln!(
                out,
                "gateway {} answered with {} result(s):",
                from.index(),
                results.len()
            );
            for (meta, pop) in results {
                let _ = writeln!(
                    out,
                    "  {:<28} {}  popularity {:.2}",
                    meta.name(),
                    meta.uri(),
                    pop.value()
                );
            }
        }
        Some((from, other)) => {
            return Err(CliError::Usage(format!(
                "unexpected {} frame from node {}",
                other.kind(),
                from.index()
            )));
        }
        None => {
            return Err(CliError::Usage(
                "the gateway never answered the probe".to_string(),
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn probe_gets_matching_results() {
        let out = run(&args("--query news")).unwrap();
        assert!(out.contains("fox evening news"), "{out}");
        assert!(out.contains("mbt://catalog/0"));
        assert!(!out.contains("campus jazz"), "jazz does not match news");
    }

    #[test]
    fn limit_caps_results() {
        let out = run(&args("--query news --limit 1")).unwrap();
        assert!(out.contains("1 result(s)"), "{out}");
    }

    #[test]
    fn missing_query_is_a_usage_error() {
        let err = run(&args("")).unwrap_err();
        assert!(err.to_string().contains("--query is required"));
    }
}
