//! `mbt shard` — write a contact trace as time-windowed on-disk shards.
//!
//! Either generates a synthetic trace straight into the shard writer (the
//! contacts never exist in memory all at once) or re-shards an existing
//! trace file streamed contact by contact.

use std::fs::File;

use dtn_trace::generators::{DieselNetConfig, NusConfig, RandomWaypointConfig};
use dtn_trace::{ContactReader, ContactSink as _, ShardWriter, SimDuration};

use crate::args::Args;
use crate::CliError;

/// Usage text for the subcommand.
pub const USAGE: &str = "mbt shard --out <dir> [--model dieselnet|nus|rwp] \
[--nodes N] [--days N] [--seed N] [--routes N] [--attendance 0..1] [--weekends] \
[--window-days N | --window-secs N] [--jobs N] [--from <trace-file>]

Writes time-windowed shards plus a manifest under <dir>. With --from, an
existing trace file is streamed into shards instead of generating one.
The dieselnet and nus models emit directly into the shard writer, so the
full trace is never resident; feed the result to `mbt simulate <dir>` or
inspect it with `mbt shard-info <dir>`. --jobs bounds the worker threads
used to sort finished shards (0 = one per core); output bytes are
identical for every job count.";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<String, CliError> {
    let out = args
        .opt_str("out")
        .ok_or(crate::args::ArgError::MissingOption("out"))?
        .to_string();
    let window = if let Some(secs) = args.opt_str("window-secs") {
        SimDuration::from_secs(
            secs.parse()
                .map_err(|_| CliError::Usage("--window-secs expects an integer".to_string()))?,
        )
    } else {
        SimDuration::from_days(args.parse_or("window-days", 1u64, "an integer")?)
    };

    let jobs = args.parse_or("jobs", 0usize, "an integer")?;
    let mut writer = ShardWriter::create(&out, window)
        .map_err(|e| CliError::Usage(e.to_string()))?
        .jobs(jobs);

    let described: String;
    if let Some(from) = args.opt_str("from") {
        let file = File::open(from).map_err(|e| CliError::Io(from.to_string(), e))?;
        for contact in ContactReader::new(file) {
            writer.push_contact(contact.map_err(|e| CliError::Usage(e.to_string()))?);
        }
        described = format!("from {from}");
    } else {
        let model = args.str_or("model", "dieselnet").to_string();
        let nodes = args.parse_or("nodes", 40u32, "an integer")?;
        let days = args.parse_or("days", 15u64, "an integer")?;
        let seed = args.parse_or("seed", 42u64, "an integer")?;
        match model.as_str() {
            "dieselnet" => {
                let mut cfg = DieselNetConfig::new(nodes, days).seed(seed);
                if let Some(routes) = args.opt_str("routes") {
                    let routes = routes
                        .parse()
                        .map_err(|_| CliError::Usage("--routes expects an integer".to_string()))?;
                    cfg = cfg.routes(routes);
                }
                cfg.generate_into(&mut writer)
            }
            "nus" => {
                let attendance = args.parse_or("attendance", 1.0f64, "a number in [0,1]")?;
                NusConfig::new(nodes, days)
                    .seed(seed)
                    .attendance_rate(attendance.clamp(0.0, 1.0))
                    .weekends_off(!args.flag("weekends"))
                    .generate_into(&mut writer)
            }
            // Random waypoint has no streaming generator; materialize, then
            // spill. The other models never hold the full trace in memory.
            "rwp" => {
                let trace = RandomWaypointConfig::new(nodes, days * dtn_trace::SECONDS_PER_DAY)
                    .seed(seed)
                    .generate();
                for c in trace.iter() {
                    writer.push_contact(c.clone());
                }
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unknown model `{other}` (expected dieselnet, nus, or rwp)"
                )))
            }
        }
        described = format!("model {model}, {nodes} nodes, {days} days");
    }

    let sharded = writer
        .finish()
        .map_err(|e| CliError::Usage(e.to_string()))?;
    Ok(format!(
        "sharded {} contacts ({described}) into {} shards of window {} s at {out}; \
         largest shard holds {} contacts",
        dtn_trace::TraceSource::len(&sharded),
        sharded.shard_count(),
        sharded.window().as_secs(),
        sharded.largest_shard_contacts()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_trace::{ShardedTrace, TraceSource};

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    fn out_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mbt-cli-test-shard/{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn shards_generated_dieselnet_trace() {
        let dir = out_dir("gen");
        let msg = run(&args(&format!(
            "--model dieselnet --nodes 10 --days 3 --seed 1 --out {}",
            dir.display()
        )))
        .unwrap();
        assert!(msg.contains("sharded"), "{msg}");
        let sharded = ShardedTrace::open(&dir).unwrap();
        assert!(sharded.len() > 0);
        assert!(sharded.shard_count() > 1, "3 days, 1-day windows");
    }

    #[test]
    fn sharded_generation_matches_in_memory_generation() {
        let dir = out_dir("match");
        run(&args(&format!(
            "--model nus --nodes 12 --days 2 --seed 7 --attendance 0.9 --out {}",
            dir.display()
        )))
        .unwrap();
        let expected = dtn_trace::generators::NusConfig::new(12, 2)
            .seed(7)
            .attendance_rate(0.9)
            .generate();
        let sharded = ShardedTrace::open(&dir).unwrap();
        let replayed: Vec<_> = sharded.stream().collect();
        assert_eq!(replayed, expected.contacts());
    }

    #[test]
    fn routes_and_jobs_flags_are_wired_and_deterministic() {
        let serial = out_dir("jobs1");
        let parallel = out_dir("jobs4");
        let cmd = |dir: &std::path::Path, jobs: u32| {
            format!(
                "--model dieselnet --nodes 20 --days 2 --seed 3 --routes 10 \
                 --jobs {jobs} --out {}",
                dir.display()
            )
        };
        run(&args(&cmd(&serial, 1))).unwrap();
        run(&args(&cmd(&parallel, 4))).unwrap();
        let expected = dtn_trace::generators::DieselNetConfig::new(20, 2)
            .seed(3)
            .routes(10)
            .generate();
        let a: Vec<_> = ShardedTrace::open(&serial).unwrap().stream().collect();
        let b: Vec<_> = ShardedTrace::open(&parallel).unwrap().stream().collect();
        assert_eq!(a, expected.contacts());
        assert_eq!(a, b, "--jobs must not change the sharded output");
    }

    #[test]
    fn reshards_existing_trace_file() {
        let dir = out_dir("from");
        let trace = dtn_trace::generators::DieselNetConfig::new(8, 2)
            .seed(5)
            .generate();
        let file = std::env::temp_dir().join("mbt-cli-test-shard/from.trace");
        std::fs::create_dir_all(file.parent().unwrap()).unwrap();
        dtn_trace::write_trace(std::fs::File::create(&file).unwrap(), &trace).unwrap();
        let msg = run(&args(&format!(
            "--from {} --window-secs 43200 --out {}",
            file.display(),
            dir.display()
        )))
        .unwrap();
        assert!(msg.contains(&format!("{} contacts", trace.len())), "{msg}");
        let sharded = ShardedTrace::open(&dir).unwrap();
        assert_eq!(sharded.window(), SimDuration::from_secs(43200));
        let replayed: Vec<_> = sharded.stream().collect();
        assert_eq!(replayed, trace.contacts());
    }

    #[test]
    fn requires_out() {
        let err = run(&args("--model nus")).unwrap_err();
        assert!(err.to_string().contains("--out"));
    }

    #[test]
    fn rejects_unknown_model() {
        let dir = out_dir("bad");
        let err = run(&args(&format!("--model teleport --out {}", dir.display()))).unwrap_err();
        assert!(err.to_string().contains("teleport"));
    }
}
