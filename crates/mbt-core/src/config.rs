//! Protocol configuration.

use std::fmt;

use dtn_sim::FaultPlan;

/// Cooperation mode: altruistic or tit-for-tat (paper §IV-A/B, §V-A/B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CooperationMode {
    /// All nodes altruistically serve the most-requested content first.
    #[default]
    Cooperative,
    /// Nodes weigh requesters by tit-for-tat credits; cliques broadcast in a
    /// shared cyclic order instead of trusting a coordinator.
    TitForTat,
}

impl fmt::Display for CooperationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CooperationMode::Cooperative => write!(f, "cooperative"),
            CooperationMode::TitForTat => write!(f, "tit-for-tat"),
        }
    }
}

/// How a cooperative clique orders its broadcasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BroadcastOrdering {
    /// The paper's §V-A order: requested items first (most requesters,
    /// then popularity), then unrequested by popularity.
    #[default]
    TwoPhase,
    /// BitTorrent-style rarest-first (extension; see
    /// [`download::strategy`](crate::download::strategy)).
    RarestFirst,
}

impl fmt::Display for BroadcastOrdering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BroadcastOrdering::TwoPhase => write!(f, "two-phase"),
            BroadcastOrdering::RarestFirst => write!(f, "rarest-first"),
        }
    }
}

/// Tunable parameters of an MBT node.
///
/// Defaults follow the experiment defaults in `DESIGN.md`: 20 metadata and 4
/// files per contact, discovery before download, cooperative mode.
///
/// # Example
///
/// ```
/// use mbt_core::{CooperationMode, MbtConfig};
///
/// let config = MbtConfig::new()
///     .metadata_per_contact(10)
///     .files_per_contact(2)
///     .cooperation(CooperationMode::TitForTat);
/// assert_eq!(config.metadata_per_contact_value(), 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MbtConfig {
    metadata_per_contact: u32,
    files_per_contact: u32,
    internet_search_limit: u32,
    internet_push_metadata: u32,
    cooperation: CooperationMode,
    ordering: BroadcastOrdering,
    discovery_first: bool,
    min_download_contact_secs: u64,
    faults: FaultPlan,
}

impl Default for MbtConfig {
    fn default() -> Self {
        MbtConfig {
            metadata_per_contact: 20,
            files_per_contact: 4,
            internet_search_limit: 5,
            internet_push_metadata: 20,
            cooperation: CooperationMode::Cooperative,
            ordering: BroadcastOrdering::TwoPhase,
            discovery_first: true,
            min_download_contact_secs: 0,
            faults: FaultPlan::none(),
        }
    }
}

impl MbtConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        MbtConfig::default()
    }

    /// Sets how many metadata may be broadcast per contact (paper §VI-A).
    pub fn metadata_per_contact(mut self, n: u32) -> Self {
        self.metadata_per_contact = n;
        self
    }

    /// Sets how many files may be broadcast per contact (paper §VI-A).
    pub fn files_per_contact(mut self, n: u32) -> Self {
        self.files_per_contact = n;
        self
    }

    /// Sets how many best matches the metadata server returns per query.
    pub fn internet_search_limit(mut self, n: u32) -> Self {
        self.internet_search_limit = n.max(1);
        self
    }

    /// Sets how many popular metadata an Internet-access node pulls for
    /// later push-distribution in the DTN.
    pub fn internet_push_metadata(mut self, n: u32) -> Self {
        self.internet_push_metadata = n;
        self
    }

    /// Sets the cooperation mode.
    pub fn cooperation(mut self, mode: CooperationMode) -> Self {
        self.cooperation = mode;
        self
    }

    /// Sets the broadcast ordering used in cooperative mode (the tit-for-tat
    /// scheduler always orders by credit weight).
    pub fn ordering(mut self, ordering: BroadcastOrdering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Whether metadata exchange precedes file exchange within a contact
    /// (paper §V: discovery uses the starting period of each connection).
    pub fn discovery_first(mut self, first: bool) -> Self {
        self.discovery_first = first;
        self
    }

    /// Contacts shorter than this skip the file phase entirely (0 = never
    /// skip; an ablation knob for the short-contact argument of §V).
    pub fn min_download_contact_secs(mut self, secs: u64) -> Self {
        self.min_download_contact_secs = secs;
        self
    }

    /// Installs a complete fault-injection plan (loss, truncation, churn,
    /// corruption). Replaces any previously-set plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Per-receiver probability that a broadcast frame is lost (failure
    /// injection; default 0). Each (contact instant, sender, receiver, item)
    /// draws independently and deterministically from the fault seed.
    /// Shorthand for adjusting the loss rate of the [`FaultPlan`].
    ///
    /// # Panics
    ///
    /// Panics unless `rate` ∈ [0, 1].
    pub fn broadcast_loss_rate(mut self, rate: f64) -> Self {
        self.faults = self.faults.loss(rate);
        self
    }

    /// Seed for the deterministic fault rolls (default 0). Shorthand for
    /// adjusting the seed of the [`FaultPlan`].
    pub fn loss_seed(mut self, seed: u64) -> Self {
        self.faults = self.faults.seed(seed);
        self
    }

    /// Metadata broadcast slots per contact.
    pub fn metadata_per_contact_value(&self) -> u32 {
        self.metadata_per_contact
    }

    /// File broadcast slots per contact.
    pub fn files_per_contact_value(&self) -> u32 {
        self.files_per_contact
    }

    /// Server search result limit per query.
    pub fn internet_search_limit_value(&self) -> u32 {
        self.internet_search_limit
    }

    /// Popular-metadata pull count at Internet sessions.
    pub fn internet_push_metadata_value(&self) -> u32 {
        self.internet_push_metadata
    }

    /// The cooperation mode.
    pub fn cooperation_value(&self) -> CooperationMode {
        self.cooperation
    }

    /// The cooperative broadcast ordering.
    pub fn ordering_value(&self) -> BroadcastOrdering {
        self.ordering
    }

    /// Whether discovery precedes download within a contact.
    pub fn discovery_first_value(&self) -> bool {
        self.discovery_first
    }

    /// Minimum contact length for the file phase, in seconds.
    pub fn min_download_contact_secs_value(&self) -> u64 {
        self.min_download_contact_secs
    }

    /// The fault-injection plan.
    pub fn faults_value(&self) -> FaultPlan {
        self.faults
    }

    /// The broadcast loss probability.
    pub fn broadcast_loss_rate_value(&self) -> f64 {
        self.faults.loss_rate
    }

    /// The fault-roll seed.
    pub fn loss_seed_value(&self) -> u64 {
        self.faults.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_design() {
        let c = MbtConfig::default();
        assert_eq!(c.metadata_per_contact_value(), 20);
        assert_eq!(c.files_per_contact_value(), 4);
        assert_eq!(c.cooperation_value(), CooperationMode::Cooperative);
        assert!(c.discovery_first_value());
        assert_eq!(c.min_download_contact_secs_value(), 0);
    }

    #[test]
    fn builder_chains() {
        let c = MbtConfig::new()
            .metadata_per_contact(3)
            .files_per_contact(1)
            .internet_search_limit(2)
            .internet_push_metadata(7)
            .cooperation(CooperationMode::TitForTat)
            .discovery_first(false)
            .min_download_contact_secs(30);
        assert_eq!(c.metadata_per_contact_value(), 3);
        assert_eq!(c.files_per_contact_value(), 1);
        assert_eq!(c.internet_search_limit_value(), 2);
        assert_eq!(c.internet_push_metadata_value(), 7);
        assert_eq!(c.cooperation_value(), CooperationMode::TitForTat);
        assert!(!c.discovery_first_value());
        assert_eq!(c.min_download_contact_secs_value(), 30);
    }

    #[test]
    fn search_limit_clamped_to_one() {
        assert_eq!(
            MbtConfig::new()
                .internet_search_limit(0)
                .internet_search_limit_value(),
            1
        );
    }

    #[test]
    fn loss_builders_delegate_to_the_fault_plan() {
        let c = MbtConfig::new().broadcast_loss_rate(0.3).loss_seed(9);
        assert_eq!(c.broadcast_loss_rate_value(), 0.3);
        assert_eq!(c.loss_seed_value(), 9);
        assert_eq!(c.faults_value(), FaultPlan::none().loss(0.3).seed(9));
    }

    #[test]
    fn faults_builder_installs_a_full_plan() {
        let plan = FaultPlan::none().loss(0.1).truncate(0.2).churn(0.3).seed(4);
        let c = MbtConfig::new().faults(plan);
        assert_eq!(c.faults_value(), plan);
        assert!(MbtConfig::new().faults_value().is_noop());
    }

    #[test]
    fn cooperation_display() {
        assert_eq!(CooperationMode::Cooperative.to_string(), "cooperative");
        assert_eq!(CooperationMode::TitForTat.to_string(), "tit-for-tat");
    }

    #[test]
    fn ordering_defaults_and_builder() {
        assert_eq!(
            MbtConfig::new().ordering_value(),
            BroadcastOrdering::TwoPhase
        );
        let c = MbtConfig::new().ordering(BroadcastOrdering::RarestFirst);
        assert_eq!(c.ordering_value(), BroadcastOrdering::RarestFirst);
        assert_eq!(BroadcastOrdering::TwoPhase.to_string(), "two-phase");
        assert_eq!(BroadcastOrdering::RarestFirst.to_string(), "rarest-first");
    }
}
