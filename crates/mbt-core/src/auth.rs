//! Metadata authentication against fake publishers.
//!
//! Metadata carries "authentication information of the metadata against fake
//! publishers" (paper §III-B item f). The paper does not prescribe a scheme;
//! this module implements a keyed-MAC over the metadata's canonical bytes
//! (HMAC-SHA1 construction) with a per-publisher key registry. Within the
//! simulation the registry plays the role of a PKI: a node holding the
//! registry can verify that metadata claiming publisher *P* was produced by
//! the holder of *P*'s key, so forged advertisements are rejected before they
//! pollute discovery.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::checksum::{Digest, Sha1};
use crate::metadata::Metadata;

/// A publisher's signing key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublisherKey {
    bytes: Vec<u8>,
}

impl PublisherKey {
    /// Creates a key from raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is empty.
    pub fn new<B: Into<Vec<u8>>>(bytes: B) -> Self {
        let bytes = bytes.into();
        assert!(!bytes.is_empty(), "publisher key must not be empty");
        PublisherKey { bytes }
    }

    /// Derives a deterministic per-publisher key from a master secret
    /// (convenience for simulations).
    pub fn derive(master: &[u8], publisher: &str) -> Self {
        let mut h = Sha1::new();
        h.update(master);
        h.update(b"/");
        h.update(publisher.as_bytes());
        PublisherKey {
            bytes: h.finalize().as_bytes().to_vec(),
        }
    }
}

/// HMAC-SHA1 over `message` with `key`.
fn hmac_sha1(key: &[u8], message: &[u8]) -> Digest {
    const BLOCK: usize = 64;
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let d = {
            let mut h = Sha1::new();
            h.update(key);
            h.finalize()
        };
        key_block[..20].copy_from_slice(d.as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    let inner = {
        let mut h = Sha1::new();
        h.update(&ipad);
        h.update(message);
        h.finalize()
    };
    let mut h = Sha1::new();
    h.update(&opad);
    h.update(inner.as_bytes());
    h.finalize()
}

/// Signs `metadata` in place with the publisher's key.
pub fn sign(metadata: &mut Metadata, key: &PublisherKey) {
    let tag = hmac_sha1(&key.bytes, &metadata.canonical_bytes());
    metadata.set_auth_tag(tag);
}

/// Verifies `metadata` against the publisher's key.
///
/// Returns `false` if the metadata is unsigned or the tag does not match the
/// canonical bytes under `key`.
pub fn verify(metadata: &Metadata, key: &PublisherKey) -> bool {
    match metadata.auth_tag() {
        Some(tag) => hmac_sha1(&key.bytes, &metadata.canonical_bytes()) == tag,
        None => false,
    }
}

/// Error returned by [`KeyRegistry::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// The claimed publisher has no registered key.
    UnknownPublisher(String),
    /// The tag is missing or does not verify.
    BadSignature {
        /// The claimed publisher.
        publisher: String,
    },
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::UnknownPublisher(p) => write!(f, "unknown publisher `{p}`"),
            AuthError::BadSignature { publisher } => {
                write!(
                    f,
                    "metadata failed authentication for publisher `{publisher}`"
                )
            }
        }
    }
}

impl Error for AuthError {}

/// Maps publisher names to their keys.
///
/// # Example
///
/// ```
/// use mbt_core::auth::{sign, KeyRegistry, PublisherKey};
/// use mbt_core::{Metadata, Uri};
///
/// let mut registry = KeyRegistry::new();
/// let key = PublisherKey::derive(b"master-secret", "FOX");
/// registry.register("FOX", key.clone());
///
/// let mut meta = Metadata::builder("News", "FOX", Uri::new("mbt://fox/1")?).build();
/// sign(&mut meta, &key);
/// assert!(registry.verify(&meta).is_ok());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct KeyRegistry {
    keys: BTreeMap<String, PublisherKey>,
}

impl KeyRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        KeyRegistry::default()
    }

    /// Registers (or replaces) a publisher's key.
    pub fn register<S: Into<String>>(&mut self, publisher: S, key: PublisherKey) {
        self.keys.insert(publisher.into(), key);
    }

    /// Looks up a publisher's key.
    pub fn key_of(&self, publisher: &str) -> Option<&PublisherKey> {
        self.keys.get(publisher)
    }

    /// Verifies metadata against its claimed publisher's registered key.
    ///
    /// # Errors
    ///
    /// [`AuthError::UnknownPublisher`] if the publisher is not registered,
    /// [`AuthError::BadSignature`] if the tag is missing or wrong.
    pub fn verify(&self, metadata: &Metadata) -> Result<(), AuthError> {
        let key = self
            .keys
            .get(metadata.publisher())
            .ok_or_else(|| AuthError::UnknownPublisher(metadata.publisher().to_string()))?;
        if verify(metadata, key) {
            Ok(())
        } else {
            Err(AuthError::BadSignature {
                publisher: metadata.publisher().to_string(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uri::Uri;

    fn meta(name: &str, publisher: &str) -> Metadata {
        Metadata::builder(name, publisher, Uri::new("mbt://x/1").unwrap()).build()
    }

    #[test]
    fn hmac_sha1_rfc2202_vector_1() {
        // RFC 2202 test case 1.
        let key = [0x0bu8; 20];
        let tag = hmac_sha1(&key, b"Hi There");
        assert_eq!(tag.to_hex(), "b617318655057264e28bc0b6fb378c8ef146be00");
    }

    #[test]
    fn hmac_sha1_rfc2202_vector_2() {
        let tag = hmac_sha1(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(tag.to_hex(), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
    }

    #[test]
    fn hmac_sha1_long_key() {
        // Keys longer than the block size are hashed first (RFC 2202 case 6).
        let key = [0xaau8; 80];
        let tag = hmac_sha1(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(tag.to_hex(), "aa4ae5e15272d00e95705637ce8a3b55ed402112");
    }

    #[test]
    fn sign_then_verify() {
        let key = PublisherKey::derive(b"secret", "FOX");
        let mut m = meta("News", "FOX");
        assert!(!verify(&m, &key), "unsigned metadata must not verify");
        sign(&mut m, &key);
        assert!(verify(&m, &key));
    }

    #[test]
    fn tamper_detection() {
        let key = PublisherKey::derive(b"secret", "FOX");
        let mut m = meta("News", "FOX");
        sign(&mut m, &key);
        // Re-build with a different name but re-use the old tag.
        let mut forged = meta("Fake News", "FOX");
        forged.set_auth_tag(m.auth_tag().unwrap());
        assert!(!verify(&forged, &key));
    }

    #[test]
    fn wrong_key_fails() {
        let fox = PublisherKey::derive(b"secret", "FOX");
        let fake = PublisherKey::derive(b"attacker", "FOX");
        let mut m = meta("News", "FOX");
        sign(&mut m, &fake);
        assert!(!verify(&m, &fox));
    }

    #[test]
    fn registry_verifies_known_publisher() {
        let mut reg = KeyRegistry::new();
        let key = PublisherKey::derive(b"s", "ABC");
        reg.register("ABC", key.clone());
        let mut m = meta("Show", "ABC");
        sign(&mut m, &key);
        assert_eq!(reg.verify(&m), Ok(()));
        assert!(reg.key_of("ABC").is_some());
    }

    #[test]
    fn registry_rejects_unknown_and_forged() {
        let mut reg = KeyRegistry::new();
        reg.register("ABC", PublisherKey::derive(b"s", "ABC"));
        let unknown = meta("Show", "CBS");
        assert!(matches!(
            reg.verify(&unknown),
            Err(AuthError::UnknownPublisher(_))
        ));
        let mut forged = meta("Show", "ABC");
        sign(&mut forged, &PublisherKey::derive(b"attacker", "ABC"));
        assert!(matches!(
            reg.verify(&forged),
            Err(AuthError::BadSignature { .. })
        ));
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        assert_eq!(
            PublisherKey::derive(b"m", "FOX"),
            PublisherKey::derive(b"m", "FOX")
        );
        assert_ne!(
            PublisherKey::derive(b"m", "FOX"),
            PublisherKey::derive(b"m", "ABC")
        );
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_key_panics() {
        let _ = PublisherKey::new(Vec::new());
    }

    #[test]
    fn auth_error_display() {
        assert!(AuthError::UnknownPublisher("X".into())
            .to_string()
            .contains("X"));
    }
}
