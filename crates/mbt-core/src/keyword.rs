//! Keyword tokenization and the inverted index used for metadata search.

use std::collections::{BTreeMap, BTreeSet};

use crate::uri::Uri;

/// Splits text into lowercase alphanumeric tokens.
///
/// Anything that is not ASCII-alphanumeric separates tokens; tokens are
/// lowercased and deduplicated order-preservingly.
///
/// # Example
///
/// ```
/// let tokens = mbt_core::keyword::tokenize("The Late-Night Show, ep. 3");
/// assert_eq!(tokens, vec!["the", "late", "night", "show", "ep", "3"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for raw in text.split(|c: char| !c.is_ascii_alphanumeric()) {
        if raw.is_empty() {
            continue;
        }
        let token = raw.to_ascii_lowercase();
        if seen.insert(token.clone()) {
            out.push(token);
        }
    }
    out
}

/// An immutable, sorted, deduplicated token set built once and probed many
/// times.
///
/// [`Metadata`](crate::Metadata) caches one of these at build time so that
/// per-contact query matching is a binary-search probe instead of a fresh
/// `format!` + [`tokenize`] pass per record per peer.
///
/// # Example
///
/// ```
/// use mbt_core::keyword::TokenSet;
///
/// let set = TokenSet::from_text("FOX evening news");
/// assert!(set.contains("news"));
/// assert!(!set.contains("cnn"));
/// assert_eq!(set.len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct TokenSet {
    sorted: Box<[Box<str>]>,
}

impl TokenSet {
    /// Tokenizes `text` (same rules as [`tokenize`]) into a sorted set.
    pub fn from_text(text: &str) -> Self {
        let mut tokens: Vec<Box<str>> = tokenize(text)
            .into_iter()
            .map(String::into_boxed_str)
            .collect();
        tokens.sort_unstable();
        TokenSet {
            sorted: tokens.into_boxed_slice(),
        }
    }

    /// True if `token` is in the set. Allocation-free.
    pub fn contains(&self, token: &str) -> bool {
        self.sorted.binary_search_by(|t| (**t).cmp(token)).is_ok()
    }

    /// The tokens in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.sorted.iter().map(|t| &**t)
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// An inverted index from tokens to the URIs of metadata containing them.
///
/// # Example
///
/// ```
/// use mbt_core::keyword::InvertedIndex;
/// use mbt_core::Uri;
///
/// let mut index = InvertedIndex::new();
/// let uri = Uri::new("mbt://fox/news")?;
/// index.insert(&uri, "FOX evening news");
/// let hits = index.lookup_all(&["fox".into(), "news".into()]);
/// assert_eq!(hits, vec![uri]);
/// # Ok::<(), mbt_core::uri::InvalidUri>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    by_token: BTreeMap<String, BTreeSet<Uri>>,
    tokens_of: BTreeMap<Uri, BTreeSet<String>>,
}

impl InvertedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        InvertedIndex::default()
    }

    /// Indexes `text` under `uri` (adds to any existing tokens for the URI).
    pub fn insert(&mut self, uri: &Uri, text: &str) {
        for token in tokenize(text) {
            self.insert_one(uri, token);
        }
    }

    /// Indexes pre-computed `tokens` under `uri`, skipping re-tokenization.
    ///
    /// Used by [`MetadataStore`](crate::store::MetadataStore) and
    /// [`MetadataServer`](crate::server::MetadataServer) to index a record
    /// from its cached [`TokenSet`] rather than its raw text.
    pub fn insert_tokens<'a, I>(&mut self, uri: &Uri, tokens: I)
    where
        I: IntoIterator<Item = &'a str>,
    {
        for token in tokens {
            self.insert_one(uri, token.to_owned());
        }
    }

    fn insert_one(&mut self, uri: &Uri, token: String) {
        self.by_token
            .entry(token.clone())
            .or_default()
            .insert(uri.clone());
        self.tokens_of.entry(uri.clone()).or_default().insert(token);
    }

    /// Removes all tokens for `uri`.
    pub fn remove(&mut self, uri: &Uri) {
        if let Some(tokens) = self.tokens_of.remove(uri) {
            for token in tokens {
                if let Some(set) = self.by_token.get_mut(&token) {
                    set.remove(uri);
                    if set.is_empty() {
                        self.by_token.remove(&token);
                    }
                }
            }
        }
    }

    /// URIs whose indexed text contains **all** the given tokens (sorted).
    ///
    /// An empty token list matches nothing.
    pub fn lookup_all(&self, tokens: &[String]) -> Vec<Uri> {
        self.lookup_all_ref(tokens).into_iter().cloned().collect()
    }

    /// Borrowing variant of [`lookup_all`](Self::lookup_all): the only
    /// allocation is the result vector.
    ///
    /// Walks the smallest posting list and probes the others for membership,
    /// so the cost is proportional to the rarest token's postings rather
    /// than to set intersections.
    pub fn lookup_all_ref(&self, tokens: &[String]) -> Vec<&Uri> {
        let mut postings = Vec::with_capacity(tokens.len());
        for token in tokens {
            let Some(set) = self.by_token.get(token) else {
                return Vec::new();
            };
            postings.push(set);
        }
        let Some(smallest) = postings
            .iter()
            .enumerate()
            .min_by_key(|(_, set)| set.len())
            .map(|(i, _)| i)
        else {
            return Vec::new();
        };
        postings[smallest]
            .iter()
            .filter(|uri| {
                postings
                    .iter()
                    .enumerate()
                    .all(|(i, set)| i == smallest || set.contains(uri))
            })
            .collect()
    }

    /// URIs matching at least one token, with their match counts, sorted by
    /// count descending then URI ascending.
    pub fn lookup_ranked(&self, tokens: &[String]) -> Vec<(Uri, usize)> {
        let mut counts: BTreeMap<Uri, usize> = BTreeMap::new();
        for token in tokens {
            if let Some(set) = self.by_token.get(token) {
                for uri in set {
                    *counts.entry(uri.clone()).or_insert(0) += 1;
                }
            }
        }
        let mut out: Vec<(Uri, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Number of indexed URIs.
    pub fn len(&self) -> usize {
        self.tokens_of.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.tokens_of.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uri(s: &str) -> Uri {
        Uri::new(s).unwrap()
    }

    #[test]
    fn tokenize_splits_and_lowercases() {
        assert_eq!(tokenize("Hello, World!"), vec!["hello", "world"]);
    }

    #[test]
    fn tokenize_dedups_preserving_order() {
        assert_eq!(tokenize("b a b a c"), vec!["b", "a", "c"]);
    }

    #[test]
    fn tokenize_empty_and_punct() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! --- ???").is_empty());
    }

    #[test]
    fn tokenize_keeps_digits() {
        assert_eq!(tokenize("ep3 s01"), vec!["ep3", "s01"]);
    }

    #[test]
    fn lookup_all_requires_every_token() {
        let mut idx = InvertedIndex::new();
        idx.insert(&uri("mbt://a"), "fox evening news");
        idx.insert(&uri("mbt://b"), "fox comedy show");
        assert_eq!(
            idx.lookup_all(&["fox".into(), "news".into()]),
            vec![uri("mbt://a")]
        );
        assert_eq!(idx.lookup_all(&["fox".into()]).len(), 2);
        assert!(idx.lookup_all(&["cnn".into()]).is_empty());
        assert!(idx.lookup_all(&[]).is_empty());
    }

    #[test]
    fn lookup_ranked_orders_by_hits() {
        let mut idx = InvertedIndex::new();
        idx.insert(&uri("mbt://a"), "fox evening news");
        idx.insert(&uri("mbt://b"), "fox news tonight special news");
        let ranked = idx.lookup_ranked(&["fox".into(), "news".into(), "special".into()]);
        assert_eq!(ranked[0].0, uri("mbt://b"));
        assert_eq!(ranked[0].1, 3);
        assert_eq!(ranked[1], (uri("mbt://a"), 2));
    }

    #[test]
    fn remove_clears_uri() {
        let mut idx = InvertedIndex::new();
        idx.insert(&uri("mbt://a"), "fox news");
        idx.remove(&uri("mbt://a"));
        assert!(idx.is_empty());
        assert!(idx.lookup_all(&["fox".into()]).is_empty());
    }

    #[test]
    fn insert_accumulates_tokens() {
        let mut idx = InvertedIndex::new();
        idx.insert(&uri("mbt://a"), "fox");
        idx.insert(&uri("mbt://a"), "news");
        assert_eq!(idx.lookup_all(&["fox".into()]), vec![uri("mbt://a")]);
        assert_eq!(idx.lookup_all(&["news".into()]), vec![uri("mbt://a")]);
        assert_eq!(idx.len(), 1);
    }
}
