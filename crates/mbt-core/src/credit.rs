//! The tit-for-tat credit mechanism.
//!
//! Paper §IV-B: each node `u` maintains a credit value for every other node
//! `v`, proportional to the metadata `u` received from `v` that `u`
//! requested. If `v` sends `u` a new metadata matching one of `u`'s query
//! strings, `v`'s credit increases by 5; otherwise it increases by the
//! popularity of the metadata. Nodes weigh peers' requests by these credits,
//! so contributors receive their desired metadata (and file pieces — §V-B
//! reuses the same mechanism) earlier.

use std::collections::BTreeMap;

use dtn_trace::NodeId;

use crate::popularity::Popularity;

/// Credit awarded for a new metadata that matches the receiver's query
/// (paper §IV-B).
pub const MATCHED_METADATA_CREDIT: f64 = 5.0;

/// Per-peer credit ledger.
///
/// # Example
///
/// ```
/// use mbt_core::{CreditLedger, Popularity};
/// use dtn_trace::NodeId;
///
/// let mut ledger = CreditLedger::new();
/// ledger.reward_matched(NodeId::new(1));
/// ledger.reward_unmatched(NodeId::new(2), Popularity::new(0.3));
/// assert_eq!(ledger.credit_of(NodeId::new(1)), 5.0);
/// assert_eq!(ledger.credit_of(NodeId::new(2)), 0.3);
/// assert_eq!(ledger.credit_of(NodeId::new(3)), 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CreditLedger {
    credits: BTreeMap<NodeId, f64>,
}

impl CreditLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        CreditLedger::default()
    }

    /// The credit of `peer` (0 for unknown peers).
    pub fn credit_of(&self, peer: NodeId) -> f64 {
        self.credits.get(&peer).copied().unwrap_or(0.0)
    }

    /// Rewards `peer` for delivering a new metadata that matched one of our
    /// queries (+5).
    pub fn reward_matched(&mut self, peer: NodeId) {
        *self.credits.entry(peer).or_insert(0.0) += MATCHED_METADATA_CREDIT;
    }

    /// Rewards `peer` for delivering a new metadata we did not request
    /// (+popularity of the metadata).
    pub fn reward_unmatched(&mut self, peer: NodeId, popularity: Popularity) {
        *self.credits.entry(peer).or_insert(0.0) += popularity.value();
    }

    /// The combined credit weight of a set of requesters — the paper weighs
    /// "metadata by the sum of the credits of the nodes requesting" it.
    pub fn weight_of<I: IntoIterator<Item = NodeId>>(&self, requesters: I) -> f64 {
        requesters.into_iter().map(|n| self.credit_of(n)).sum()
    }

    /// Peers with recorded credit, sorted by descending credit (ties by id).
    pub fn ranked_peers(&self) -> Vec<(NodeId, f64)> {
        let mut out: Vec<(NodeId, f64)> = self.credits.iter().map(|(&n, &c)| (n, c)).collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("credits are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        out
    }

    /// The raw `(peer, credit)` entries in ascending peer id.
    ///
    /// With [`from_entries`](Self::from_entries) this round-trips the ledger
    /// exactly — credits pass through bit-for-bit, so a ledger decoded from a
    /// hello frame schedules broadcasts identically to the original.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.credits.iter().map(|(&n, &c)| (n, c))
    }

    /// Rebuilds a ledger from raw entries (e.g. decoded from a hello frame).
    pub fn from_entries<I: IntoIterator<Item = (NodeId, f64)>>(entries: I) -> Self {
        CreditLedger {
            credits: entries.into_iter().collect(),
        }
    }

    /// Number of peers with recorded credit.
    pub fn len(&self) -> usize {
        self.credits.len()
    }

    /// True if no credit is recorded.
    pub fn is_empty(&self) -> bool {
        self.credits.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn matched_pays_five() {
        let mut l = CreditLedger::new();
        l.reward_matched(n(1));
        l.reward_matched(n(1));
        assert_eq!(l.credit_of(n(1)), 10.0);
    }

    #[test]
    fn unmatched_pays_popularity() {
        let mut l = CreditLedger::new();
        l.reward_unmatched(n(2), Popularity::new(0.25));
        l.reward_unmatched(n(2), Popularity::new(0.5));
        assert!((l.credit_of(n(2)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn matched_beats_unmatched() {
        // A contributor sending wanted metadata out-earns one sending only
        // popular noise — the incentive the paper designs for.
        let mut l = CreditLedger::new();
        l.reward_matched(n(1));
        for _ in 0..4 {
            l.reward_unmatched(n(2), Popularity::MAX);
        }
        assert!(l.credit_of(n(1)) > l.credit_of(n(2)));
    }

    #[test]
    fn weight_sums_requesters() {
        let mut l = CreditLedger::new();
        l.reward_matched(n(1)); // 5
        l.reward_unmatched(n(2), Popularity::new(0.5));
        assert!((l.weight_of([n(1), n(2), n(3)]) - 5.5).abs() < 1e-12);
        assert_eq!(l.weight_of([]), 0.0);
    }

    #[test]
    fn ranked_peers_descending() {
        let mut l = CreditLedger::new();
        l.reward_unmatched(n(5), Popularity::new(0.1));
        l.reward_matched(n(3));
        let ranked = l.ranked_peers();
        assert_eq!(ranked[0].0, n(3));
        assert_eq!(ranked.len(), 2);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn unknown_peers_have_zero_credit() {
        let l = CreditLedger::new();
        assert_eq!(l.credit_of(n(9)), 0.0);
        assert!(l.is_empty());
    }
}
