//! The simulator backend: carrying a message is an in-process move.

use dtn_trace::{NodeId, SimTime};

use super::{Carried, Transport, WireMessage};

/// The default transport: messages move in-process without serialization.
///
/// This adapts the pre-seam contact loop to the [`Transport`] trait with
/// zero cost — [`carry`](Transport::carry) returns the message unchanged
/// (its payloads are behind `Arc`s, so even the clones that built it were
/// reference-count bumps). Links need no bookkeeping: within a simulated
/// contact every member is reachable, and nothing can remain in flight.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimTransport;

impl SimTransport {
    /// Creates the (stateless) simulator transport.
    pub fn new() -> Self {
        SimTransport
    }
}

impl Transport for SimTransport {
    fn join(&mut self, _now: SimTime, _members: &[NodeId]) {}

    fn carry(
        &mut self,
        _now: SimTime,
        _sender: NodeId,
        _receiver: NodeId,
        message: WireMessage,
    ) -> Carried {
        Carried::Delivered(message)
    }

    fn leave(&mut self, _now: SimTime, _members: &[NodeId]) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uri::Uri;

    #[test]
    fn sim_transport_is_identity() {
        let mut t = SimTransport::new();
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        t.join(SimTime::ZERO, &[a, b]);
        let msg = WireMessage::PieceRequest {
            uri: Uri::new("mbt://a").unwrap(),
            index: 3,
        };
        assert_eq!(
            t.carry(SimTime::ZERO, a, b, msg.clone()),
            Carried::Delivered(msg)
        );
        assert_eq!(t.leave(SimTime::ZERO, &[a, b]), 0);
    }
}
