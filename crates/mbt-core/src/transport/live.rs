//! A threaded bus runtime: nodes and a gateway as real tasks.
//!
//! The trace-driven backends ([`SimTransport`](super::SimTransport),
//! [`BusTransport`](super::BusTransport)) run the contact loop's lock-step
//! exchange. This module runs the *same frame codec* asynchronously: each
//! node is an OS thread blocked on a [`LiveBus`] receive, a gateway answers
//! searches from a [`ServerSnapshot`], and a connectivity schedule opens and
//! closes links the way a contact trace would. Frames still queued when a
//! link closes are dropped and counted — the live analogue of the
//! simulator's lost-frame faults.
//!
//! [`run_live_session`] drives a complete scripted session and is what the
//! `mbt node` CLI mode and the wall-clock soak test build on; the `mbt
//! gateway` mode uses [`LiveBus`] directly with a probe node.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use dtn_trace::NodeId;

use crate::checksum::{sha1, Digest};
use crate::file::FileAssembler;
use crate::metadata::Metadata;
use crate::piece::split_into_pieces;
use crate::popularity::Popularity;
use crate::query::Query;
use crate::server::ServerSnapshot;
use crate::uri::Uri;

use super::frame::{decode_frame, encode_frame, HelloFrame, WireMessage};

/// How many search results a gateway returns per query.
const GATEWAY_SEARCH_LIMIT: usize = 16;

/// How long a node blocks on one receive before re-checking peers/shutdown.
const RECV_POLL: Duration = Duration::from_millis(5);

fn link(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[derive(Debug, Default)]
struct BusState {
    /// Open undirected links, keyed `(min, max)`.
    links: BTreeSet<(NodeId, NodeId)>,
    /// Directed in-flight encoded frames, keyed `(sender, receiver)`.
    queues: BTreeMap<(NodeId, NodeId), VecDeque<Vec<u8>>>,
    seq: u64,
    frames_by_kind: BTreeMap<&'static str, u64>,
    frames_dropped: u64,
    bytes_on_wire: u64,
    /// Bumped on every send and every delivered receive; the session driver
    /// watches it to detect quiescence.
    activity: u64,
    shutdown: bool,
}

/// Counters a [`LiveBus`] has accumulated.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LiveStats {
    /// Frames sent, by frame kind name (`"hello"`, `"piece"`, ...).
    pub frames_by_kind: BTreeMap<&'static str, u64>,
    /// Frames dropped: sent on closed links, undecodable, or in flight at
    /// link close.
    pub frames_dropped: u64,
    /// Total encoded bytes accepted onto links (headers included).
    pub bytes_on_wire: u64,
}

/// A cloneable handle to a shared in-process frame bus.
///
/// Every message sent through the bus is encoded into its wire frame and
/// decoded by the receiver, so the live runtime exercises exactly the codec
/// the simulator's byte accounting models. Links are opened and closed by
/// the session driver; sends on closed links and frames still queued at
/// close are dropped and counted.
#[derive(Debug, Clone, Default)]
pub struct LiveBus {
    inner: Arc<(Mutex<BusState>, Condvar)>,
}

impl LiveBus {
    /// Creates a bus with no open links.
    pub fn new() -> Self {
        LiveBus::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BusState> {
        self.inner.0.lock().expect("bus lock poisoned")
    }

    /// Opens the link between `a` and `b`; wakes blocked receivers so they
    /// notice the new peer.
    pub fn open(&self, a: NodeId, b: NodeId) {
        if a == b {
            return;
        }
        self.lock().links.insert(link(a, b));
        self.inner.1.notify_all();
    }

    /// Closes the link between `a` and `b`, dropping (and counting) any
    /// frames still in flight in either direction.
    pub fn close(&self, a: NodeId, b: NodeId) {
        let mut state = self.lock();
        state.links.remove(&link(a, b));
        for key in [(a, b), (b, a)] {
            if let Some(queue) = state.queues.remove(&key) {
                state.frames_dropped += queue.len() as u64;
            }
        }
        self.inner.1.notify_all();
    }

    /// The peers `me` currently shares an open link with, ascending.
    pub fn peers(&self, me: NodeId) -> Vec<NodeId> {
        self.lock()
            .links
            .iter()
            .filter_map(|&(a, b)| {
                if a == me {
                    Some(b)
                } else if b == me {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Sends `message` from `from` to `to`. Returns `false` (and counts a
    /// drop) if the link is closed.
    pub fn send(&self, from: NodeId, to: NodeId, message: &WireMessage) -> bool {
        let mut state = self.lock();
        if !state.links.contains(&link(from, to)) {
            state.frames_dropped += 1;
            return false;
        }
        let bytes = encode_frame(from, to, state.seq, message);
        state.seq += 1;
        state.bytes_on_wire += bytes.len() as u64;
        *state
            .frames_by_kind
            .entry(message.kind().name())
            .or_insert(0) += 1;
        state.activity += 1;
        state.queues.entry((from, to)).or_default().push_back(bytes);
        drop(state);
        self.inner.1.notify_all();
        true
    }

    /// Receives the next frame addressed to `me`, blocking up to `timeout`.
    ///
    /// Frames are drained lowest sender id first, FIFO per sender. Returns
    /// `None` on timeout or shutdown. Undecodable frames are dropped,
    /// counted, and skipped.
    pub fn recv(&self, me: NodeId, timeout: Duration) -> Option<(NodeId, WireMessage)> {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            if state.shutdown {
                return None;
            }
            let key = state
                .queues
                .iter()
                .find(|((_, to), queue)| *to == me && !queue.is_empty())
                .map(|(&key, _)| key);
            if let Some(key @ (from, _)) = key {
                let bytes = state
                    .queues
                    .get_mut(&key)
                    .and_then(VecDeque::pop_front)
                    .expect("queue was non-empty under the lock");
                match decode_frame(&bytes) {
                    Ok(frame) => {
                        state.activity += 1;
                        return Some((from, frame.message));
                    }
                    Err(_) => {
                        state.frames_dropped += 1;
                        continue;
                    }
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, timed_out) = self
                .inner
                .1
                .wait_timeout(state, deadline - now)
                .expect("bus lock poisoned");
            state = next;
            if timed_out.timed_out() && state.shutdown {
                return None;
            }
        }
    }

    /// Signals every thread on the bus to exit.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.inner.1.notify_all();
    }

    /// True once [`shutdown`](Self::shutdown) has been called.
    pub fn is_shutdown(&self) -> bool {
        self.lock().shutdown
    }

    /// Snapshot of the bus counters.
    pub fn stats(&self) -> LiveStats {
        let state = self.lock();
        LiveStats {
            frames_by_kind: state.frames_by_kind.clone(),
            frames_dropped: state.frames_dropped,
            bytes_on_wire: state.bytes_on_wire,
        }
    }

    /// `(activity, all queues empty)` — the quiescence probe the session
    /// driver polls between schedule steps.
    fn quiescence(&self) -> (u64, bool) {
        let state = self.lock();
        let empty = state.queues.values().all(VecDeque::is_empty);
        (state.activity, empty)
    }
}

/// A participant node in a live session: an id plus the queries it wants
/// answered.
#[derive(Debug, Clone)]
pub struct LiveNodeSpec {
    /// The node's identity on the bus.
    pub id: NodeId,
    /// Queries this node tries to resolve into complete files.
    pub queries: Vec<Query>,
}

/// The gateway in a live session: answers searches from a server snapshot
/// and serves pieces of the files it holds.
#[derive(Debug, Clone)]
pub struct LiveGatewaySpec {
    /// The gateway's identity on the bus.
    pub id: NodeId,
    /// The metadata catalogue it answers searches from.
    pub snapshot: ServerSnapshot,
    /// Full file contents it can serve pieces of, by URI.
    pub content: BTreeMap<Uri, Vec<u8>>,
}

/// A scripted live session: who participates and which contacts happen.
#[derive(Debug, Clone)]
pub struct LiveSessionSpec {
    /// The participating nodes.
    pub nodes: Vec<LiveNodeSpec>,
    /// The gateway, if the session has one.
    pub gateway: Option<LiveGatewaySpec>,
    /// Contacts in order: each entry's members get pairwise links until the
    /// bus settles, then the links close (the contact ends).
    pub schedule: Vec<Vec<NodeId>>,
    /// How long the bus must stay quiet before a contact is considered
    /// settled and its links close.
    pub settle: Duration,
}

/// What a live session produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveReport {
    /// Per node, the files it fully assembled and their SHA-1 digests.
    pub deliveries: BTreeMap<NodeId, BTreeMap<Uri, Digest>>,
    /// Bus counters at session end.
    pub stats: LiveStats,
}

/// What one node thread knows.
struct NodeState {
    id: NodeId,
    queries: Vec<Query>,
    metadata: BTreeMap<Uri, Metadata>,
    content: BTreeMap<Uri, Vec<u8>>,
    assembling: BTreeMap<Uri, (FileAssembler, NodeId)>,
    deliveries: BTreeMap<Uri, Digest>,
    greeted: BTreeSet<NodeId>,
    /// What each greeted peer asked for in its hello. Kept so a file
    /// completed *after* the hello is still served — which makes the frame
    /// counts a function of the spec, not of thread timing.
    interests: BTreeMap<NodeId, (Vec<Query>, BTreeSet<Uri>)>,
    sent_meta: BTreeSet<(NodeId, Uri)>,
}

impl NodeState {
    fn hello(&self) -> HelloFrame {
        HelloFrame {
            sender: self.id,
            own_queries: self.queries.iter().map(|q| (q.clone(), None)).collect(),
            foreign_queries: Vec::new(),
            wanted: self.assembling.keys().cloned().collect(),
            rejected: BTreeSet::new(),
            frequent: BTreeSet::new(),
            credits: Vec::new(),
        }
    }

    /// Records what `peer` asked for in its hello and serves every held
    /// match right away.
    fn serve_hello(&mut self, bus: &LiveBus, peer: NodeId, hello: HelloFrame) {
        let queries: Vec<Query> = hello
            .own_queries
            .into_iter()
            .map(|(q, _)| q)
            .chain(hello.foreign_queries)
            .collect();
        self.interests.insert(peer, (queries, hello.wanted));
        self.serve_matches(bus, peer);
    }

    /// Sends `peer` the metadata of every held file matching its recorded
    /// interest, at most once per (peer, uri).
    fn serve_matches(&mut self, bus: &LiveBus, peer: NodeId) {
        let Some((queries, wanted)) = self.interests.get(&peer) else {
            return;
        };
        let mut offers: Vec<Uri> = Vec::new();
        for (uri, meta) in &self.metadata {
            if !self.content.contains_key(uri) {
                continue;
            }
            let queried = queries
                .iter()
                .any(|q| q.matches_token_set(meta.token_set()));
            if queried || wanted.contains(uri) {
                offers.push(uri.clone());
            }
        }
        for uri in offers {
            if !self.sent_meta.insert((peer, uri.clone())) {
                continue;
            }
            let metadata = self.metadata[&uri].clone();
            bus.send(
                self.id,
                peer,
                &WireMessage::Metadata {
                    metadata,
                    popularity: Popularity::MIN,
                },
            );
        }
    }

    /// Considers a received metadata: store it, and if it matches one of our
    /// queries and we lack the file, start assembling by requesting every
    /// missing piece from `from`.
    fn consider(&mut self, bus: &LiveBus, from: NodeId, metadata: Metadata) {
        let uri = metadata.uri().clone();
        self.metadata
            .entry(uri.clone())
            .or_insert_with(|| metadata.clone());
        let wanted = self
            .queries
            .iter()
            .any(|q| q.matches_token_set(metadata.token_set()));
        if !wanted || self.content.contains_key(&uri) || self.assembling.contains_key(&uri) {
            return;
        }
        let assembler = FileAssembler::new(metadata);
        for index in assembler.missing() {
            bus.send(
                self.id,
                from,
                &WireMessage::PieceRequest {
                    uri: uri.clone(),
                    index,
                },
            );
        }
        self.assembling.insert(uri, (assembler, from));
    }

    fn handle(&mut self, bus: &LiveBus, from: NodeId, message: WireMessage) {
        match message {
            WireMessage::Hello(hello) => self.serve_hello(bus, from, hello),
            WireMessage::Metadata { metadata, .. } => self.consider(bus, from, metadata),
            WireMessage::SearchResults { results } => {
                for (metadata, _) in results {
                    self.consider(bus, from, metadata);
                }
            }
            WireMessage::PieceRequest { uri, index } => {
                let piece = self.metadata.get(&uri).and_then(|meta| {
                    let data = self.content.get(&uri)?;
                    split_into_pieces(&uri, data, meta.piece_size() as usize)
                        .into_iter()
                        .nth(index as usize)
                });
                if let Some(piece) = piece {
                    bus.send(self.id, from, &WireMessage::Piece(piece));
                }
            }
            WireMessage::Piece(piece) => {
                let uri = piece.id().uri().clone();
                let Some((assembler, _)) = self.assembling.get_mut(&uri) else {
                    return;
                };
                if assembler.add_piece(piece).is_ok() && assembler.is_complete() {
                    let bytes = assembler.assemble().expect("complete file assembles");
                    self.deliveries.insert(uri.clone(), sha1(&bytes));
                    self.content.insert(uri.clone(), bytes);
                    self.assembling.remove(&uri);
                    // A freshly completed file may satisfy an interest a
                    // peer declared before we held it.
                    let peers: Vec<NodeId> = self.interests.keys().copied().collect();
                    for peer in peers {
                        self.serve_matches(bus, peer);
                    }
                }
            }
            // Nodes neither answer searches nor act on the trace-driven
            // broadcast kinds.
            WireMessage::Search { .. }
            | WireMessage::QueryShare { .. }
            | WireMessage::FileBroadcast { .. } => {}
        }
    }

    fn run(mut self, bus: LiveBus) -> BTreeMap<Uri, Digest> {
        while !bus.is_shutdown() {
            for peer in bus.peers(self.id) {
                if self.greeted.insert(peer) {
                    bus.send(self.id, peer, &WireMessage::Hello(self.hello()));
                }
            }
            if let Some((from, message)) = bus.recv(self.id, RECV_POLL) {
                self.handle(&bus, from, message);
            }
        }
        self.deliveries
    }
}

/// The gateway task: answers hellos and searches from its snapshot and
/// serves pieces of the files it holds. Blocks until the bus shuts down —
/// run it on its own thread (as [`run_live_session`] and the `mbt gateway`
/// CLI mode do).
pub fn run_gateway(spec: LiveGatewaySpec, bus: LiveBus) {
    let LiveGatewaySpec {
        id,
        snapshot,
        content,
    } = spec;
    let results_for = |query: &Query, limit: usize| -> WireMessage {
        let results = snapshot
            .search(query, limit.clamp(1, GATEWAY_SEARCH_LIMIT))
            .into_iter()
            .map(|meta| {
                let pop = snapshot.popularity_of(meta.uri());
                (meta, pop)
            })
            .collect();
        WireMessage::SearchResults { results }
    };
    while !bus.is_shutdown() {
        let Some((from, message)) = bus.recv(id, RECV_POLL) else {
            continue;
        };
        match message {
            WireMessage::Hello(hello) => {
                for (query, _) in &hello.own_queries {
                    bus.send(id, from, &results_for(query, GATEWAY_SEARCH_LIMIT));
                }
                for uri in &hello.wanted {
                    if let Some(metadata) = snapshot.metadata_of(uri) {
                        let popularity = snapshot.popularity_of(uri);
                        bus.send(
                            id,
                            from,
                            &WireMessage::Metadata {
                                metadata,
                                popularity,
                            },
                        );
                    }
                }
            }
            WireMessage::Search { query, limit } => {
                bus.send(id, from, &results_for(&query, limit as usize));
            }
            WireMessage::PieceRequest { uri, index } => {
                let piece = snapshot.metadata_of(&uri).and_then(|meta| {
                    let data = content.get(&uri)?;
                    split_into_pieces(&uri, data, meta.piece_size() as usize)
                        .into_iter()
                        .nth(index as usize)
                });
                if let Some(piece) = piece {
                    bus.send(id, from, &WireMessage::Piece(piece));
                }
            }
            _ => {}
        }
    }
}

/// Runs a scripted live session to completion and reports what each node
/// delivered.
///
/// Each contact in the schedule opens pairwise links among its members, the
/// driver waits for the bus to stay quiet for `spec.settle` (capped at ten
/// seconds per contact), then the links close. After the last contact every
/// thread is shut down and joined. The outcome — which files each node
/// assembled, and their digests — is deterministic for a given spec; so are
/// the frame counts, because every send in the node protocol is deduplicated
/// per (peer, item).
pub fn run_live_session(spec: LiveSessionSpec) -> LiveReport {
    let bus = LiveBus::new();
    let mut handles = Vec::new();
    for node in &spec.nodes {
        let state = NodeState {
            id: node.id,
            queries: node.queries.clone(),
            metadata: BTreeMap::new(),
            content: BTreeMap::new(),
            assembling: BTreeMap::new(),
            deliveries: BTreeMap::new(),
            greeted: BTreeSet::new(),
            interests: BTreeMap::new(),
            sent_meta: BTreeSet::new(),
        };
        let bus = bus.clone();
        handles.push((node.id, std::thread::spawn(move || state.run(bus))));
    }
    let gateway = spec.gateway.map(|g| {
        let bus = bus.clone();
        std::thread::spawn(move || run_gateway(g, bus))
    });

    for members in &spec.schedule {
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                bus.open(a, b);
            }
        }
        // A contact ends when the bus has been quiet for the settle window.
        let cap = Instant::now() + Duration::from_secs(10);
        let (mut last_activity, _) = bus.quiescence();
        let mut quiet_since = Instant::now();
        loop {
            std::thread::sleep(Duration::from_millis(5));
            let (activity, empty) = bus.quiescence();
            let now = Instant::now();
            if activity != last_activity || !empty {
                last_activity = activity;
                quiet_since = now;
            }
            if now.duration_since(quiet_since) >= spec.settle || now >= cap {
                break;
            }
        }
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                bus.close(a, b);
            }
        }
    }

    bus.shutdown();
    let mut deliveries = BTreeMap::new();
    for (id, handle) in handles {
        deliveries.insert(id, handle.join().expect("node thread panicked"));
    }
    if let Some(handle) = gateway {
        handle.join().expect("gateway thread panicked");
    }
    LiveReport {
        deliveries,
        stats: bus.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn send_recv_and_close_drop_accounting() {
        let bus = LiveBus::new();
        bus.open(n(0), n(1));
        let msg = WireMessage::Search {
            query: Query::new("news").unwrap(),
            limit: 1,
        };
        assert!(bus.send(n(0), n(1), &msg));
        assert_eq!(
            bus.recv(n(1), Duration::from_millis(100)),
            Some((n(0), msg.clone()))
        );
        // Queued frame dropped at close.
        assert!(bus.send(n(0), n(1), &msg));
        bus.close(n(0), n(1));
        assert!(!bus.send(n(0), n(1), &msg), "closed link refuses sends");
        let stats = bus.stats();
        assert_eq!(stats.frames_dropped, 2);
        assert_eq!(stats.frames_by_kind["search"], 2);
        bus.shutdown();
        assert_eq!(bus.recv(n(1), Duration::from_millis(100)), None);
    }

    #[test]
    fn recv_drains_lowest_sender_first() {
        let bus = LiveBus::new();
        bus.open(n(2), n(5));
        bus.open(n(1), n(5));
        let from_two = WireMessage::PieceRequest {
            uri: Uri::new("mbt://a").unwrap(),
            index: 0,
        };
        let from_one = WireMessage::PieceRequest {
            uri: Uri::new("mbt://b").unwrap(),
            index: 1,
        };
        bus.send(n(2), n(5), &from_two);
        bus.send(n(1), n(5), &from_one);
        assert_eq!(
            bus.recv(n(5), Duration::from_millis(100)),
            Some((n(1), from_one))
        );
        assert_eq!(
            bus.recv(n(5), Duration::from_millis(100)),
            Some((n(2), from_two))
        );
    }
}
