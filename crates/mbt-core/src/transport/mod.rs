//! The transport seam: how contact-phase messages travel between nodes.
//!
//! The paper's contact behaviour — hello exchange, query/metadata
//! distribution, file broadcasts (§III–V) — is a message flow. This module
//! makes that flow explicit: every message is a [`WireMessage`], every
//! transfer goes through a [`Transport`], and two backends interpret the
//! same flow differently:
//!
//! * [`SimTransport`] — the simulator path. Carrying a message is an
//!   in-process move; nothing is serialized. This is the default backend and
//!   is byte-identical to the pre-seam contact loop: same counters, same
//!   golden CSVs.
//! * [`BusTransport`] — an in-process message bus. The contact trace acts as
//!   a connectivity schedule (links open at contact start, close at contact
//!   end); every carry round-trips the message through its serialized
//!   [`frame`] encoding, and frames still queued when a link closes are
//!   dropped into the existing fault counters. The differential suite
//!   (`tests/transport_equivalence.rs`) pins this backend byte-identical to
//!   [`SimTransport`].
//! * [`live`] — a threaded bus runtime on the same frame codec, where nodes
//!   and a [`ServerSnapshot`](crate::server::ServerSnapshot)-backed gateway
//!   run as real tasks (the `mbt node` / `mbt gateway` CLI modes).
//!
//! The frame format (64-byte versioned header, length-prefixed checksummed
//! payload) deliberately matches `dtn_sim::channel::frame_bytes`'s 64-byte
//! overhead model, so the simulator's byte accounting describes real frames.

use dtn_trace::{NodeId, SimTime};

pub mod frame;
pub mod live;

mod bus;
mod sim;

pub use bus::BusTransport;
pub use frame::{
    decode_frame, encode_frame, Frame, FrameError, FrameKind, HelloFrame, WireMessage,
    FRAME_HEADER_BYTES, FRAME_MAGIC, FRAME_VERSION,
};
pub use sim::SimTransport;

/// The outcome of carrying one message.
#[derive(Debug, Clone, PartialEq)]
pub enum Carried {
    /// The message reached the receiver; this is what it saw. For a
    /// serializing backend the value has been through encode + decode, so
    /// any codec defect surfaces as a state divergence, not silently.
    Delivered(WireMessage),
    /// The link was closed (or the frame failed in flight); the receiver
    /// saw nothing. The contact loop counts these as lost frames.
    Dropped,
}

/// Carries contact-phase messages between nodes.
///
/// The contact loop ([`run_contact_via`](crate::node::run_contact_via))
/// calls [`join`](Transport::join) when a contact opens, one
/// [`carry`](Transport::carry) per directed message, and
/// [`leave`](Transport::leave) when the contact closes. Implementations must
/// be deterministic: the same call sequence must produce the same outcomes.
pub trait Transport {
    /// A contact among `members` has started; open their links.
    fn join(&mut self, now: SimTime, members: &[NodeId]);

    /// Carries one message from `sender` to `receiver`.
    fn carry(
        &mut self,
        now: SimTime,
        sender: NodeId,
        receiver: NodeId,
        message: WireMessage,
    ) -> Carried;

    /// The contact among `members` has ended; close their links and return
    /// how many frames were still in flight (dropped).
    fn leave(&mut self, now: SimTime, members: &[NodeId]) -> usize;
}

/// Which [`Transport`] backend a simulation run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// [`SimTransport`]: in-process moves, the default simulator path.
    #[default]
    Sim,
    /// [`BusTransport`]: every message round-trips its frame encoding over
    /// a link-scheduled in-process bus.
    Bus,
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TransportKind::Sim => "sim",
            TransportKind::Bus => "bus",
        })
    }
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sim" => Ok(TransportKind::Sim),
            "bus" => Ok(TransportKind::Bus),
            other => Err(format!("unknown transport `{other}` (sim | bus)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_kind_parses_and_prints() {
        assert_eq!("sim".parse::<TransportKind>().unwrap(), TransportKind::Sim);
        assert_eq!("bus".parse::<TransportKind>().unwrap(), TransportKind::Bus);
        assert!("tcp".parse::<TransportKind>().is_err());
        assert_eq!(TransportKind::default().to_string(), "sim");
        assert_eq!(TransportKind::Bus.to_string(), "bus");
    }
}
