//! Wire frames: the serialized form of the contact-phase message flow.
//!
//! Every message a [`Transport`](super::Transport) carries is one frame: a
//! fixed 64-byte header followed by a length-prefixed, checksummed payload.
//! The header is exactly [`FRAME_HEADER_BYTES`] =
//! [`dtn_sim::channel::FRAME_HEADER_BYTES`] bytes, so the simulator's
//! per-frame byte accounting (`channel::frame_bytes`) describes real frames,
//! not an abstraction.
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "MBTF"
//! 4       2     version (big-endian u16, currently 1)
//! 6       1     message kind (see [`FrameKind`])
//! 7       1     flags (reserved, 0)
//! 8       4     sender node id (big-endian u32)
//! 12      4     receiver node id (big-endian u32)
//! 16      8     sequence number (big-endian u64)
//! 24      8     payload length in bytes (big-endian u64)
//! 32      8     FNV-1a 64 checksum of the payload (big-endian u64)
//! 40      24    reserved (zero)
//! 64      ...   payload
//! ```
//!
//! The decoder never panics: truncated buffers, corrupt checksums, unknown
//! kinds, and malformed payloads all come back as [`FrameError`]s.

use std::collections::BTreeSet;
use std::fmt;

use dtn_trace::{NodeId, SimTime};

use crate::checksum::Digest;
use crate::metadata::Metadata;
use crate::piece::{Piece, PieceId};
use crate::popularity::Popularity;
use crate::query::Query;
use crate::uri::Uri;

/// Leading magic bytes of every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"MBTF";

/// Current frame format version.
pub const FRAME_VERSION: u16 = 1;

/// Size of the frame header in bytes — deliberately equal to
/// [`dtn_sim::channel::FRAME_HEADER_BYTES`] so the simulator's byte
/// accounting matches the wire format.
pub const FRAME_HEADER_BYTES: usize = 64;

/// Discriminant of a frame's message kind (header byte 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum FrameKind {
    /// Contact-start hello beacon.
    Hello = 0,
    /// A query forwarded to a frequent contact (full MBT, §IV).
    QueryShare = 1,
    /// A standalone metadata broadcast (§IV).
    Metadata = 2,
    /// A file broadcast with its metadata riding along (§V).
    FileBroadcast = 3,
    /// Request for one piece of a file.
    PieceRequest = 4,
    /// One piece of a file's content.
    Piece = 5,
    /// A keyword search sent to a gateway.
    Search = 6,
    /// A gateway's ranked answer to a search.
    SearchResults = 7,
}

impl FrameKind {
    fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            0 => FrameKind::Hello,
            1 => FrameKind::QueryShare,
            2 => FrameKind::Metadata,
            3 => FrameKind::FileBroadcast,
            4 => FrameKind::PieceRequest,
            5 => FrameKind::Piece,
            6 => FrameKind::Search,
            7 => FrameKind::SearchResults,
            _ => return None,
        })
    }

    /// Stable lowercase name (used in stats tables and test pins).
    pub fn name(self) -> &'static str {
        match self {
            FrameKind::Hello => "hello",
            FrameKind::QueryShare => "query-share",
            FrameKind::Metadata => "metadata",
            FrameKind::FileBroadcast => "file-broadcast",
            FrameKind::PieceRequest => "piece-request",
            FrameKind::Piece => "piece",
            FrameKind::Search => "search",
            FrameKind::SearchResults => "search-results",
        }
    }
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The hello beacon a member serializes at contact start: its advertised
/// state, addressed to the clique coordinator (paper §III-B).
#[derive(Debug, Clone, PartialEq)]
pub struct HelloFrame {
    /// The advertising node.
    pub sender: NodeId,
    /// The node's own active queries with their expiries.
    pub own_queries: Vec<(Query, Option<SimTime>)>,
    /// Queries carried on behalf of frequent contacts (full MBT only).
    pub foreign_queries: Vec<Query>,
    /// URIs the node wants to download (§III-B "downloading files").
    pub wanted: BTreeSet<Uri>,
    /// URIs the node blacklisted after authentication failures.
    pub rejected: BTreeSet<Uri>,
    /// The node's frequent contacting nodes.
    pub frequent: BTreeSet<NodeId>,
    /// The node's tit-for-tat ledger as raw `(peer, credit)` entries.
    pub credits: Vec<(NodeId, f64)>,
}

/// One contact-phase message, as carried by a
/// [`Transport`](super::Transport).
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// Contact-start hello beacon.
    Hello(HelloFrame),
    /// A query forwarded to a frequent contact (full MBT, §IV).
    QueryShare {
        /// The querying node (credited as the query's owner).
        owner: NodeId,
        /// The query itself.
        query: Query,
        /// When the query expires, if ever.
        expires: Option<SimTime>,
    },
    /// A standalone metadata broadcast (§IV).
    Metadata {
        /// The advertised record.
        metadata: Metadata,
        /// The sender's popularity estimate for it.
        popularity: Popularity,
    },
    /// A file broadcast; the file's metadata rides along for verification.
    FileBroadcast {
        /// The broadcast file.
        uri: Uri,
        /// Riding metadata and its popularity, when the sender holds it.
        metadata: Option<(Metadata, Popularity)>,
    },
    /// Request for one piece of a file (live/bus runtime).
    PieceRequest {
        /// The wanted file.
        uri: Uri,
        /// Zero-based piece index.
        index: u32,
    },
    /// One piece of a file's content (live/bus runtime).
    Piece(Piece),
    /// A keyword search sent to a gateway (live/bus runtime).
    Search {
        /// The search query.
        query: Query,
        /// Maximum number of results wanted.
        limit: u32,
    },
    /// A gateway's ranked answer to a search.
    SearchResults {
        /// Matched records, best first, with server popularity.
        results: Vec<(Metadata, Popularity)>,
    },
}

impl WireMessage {
    /// The message's frame kind.
    pub fn kind(&self) -> FrameKind {
        match self {
            WireMessage::Hello(_) => FrameKind::Hello,
            WireMessage::QueryShare { .. } => FrameKind::QueryShare,
            WireMessage::Metadata { .. } => FrameKind::Metadata,
            WireMessage::FileBroadcast { .. } => FrameKind::FileBroadcast,
            WireMessage::PieceRequest { .. } => FrameKind::PieceRequest,
            WireMessage::Piece(_) => FrameKind::Piece,
            WireMessage::Search { .. } => FrameKind::Search,
            WireMessage::SearchResults { .. } => FrameKind::SearchResults,
        }
    }
}

/// A decoded frame: routing header plus message.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Originating node.
    pub sender: NodeId,
    /// Destination node.
    pub receiver: NodeId,
    /// Sender-assigned sequence number.
    pub seq: u64,
    /// The carried message.
    pub message: WireMessage,
}

/// Why a buffer failed to decode as a frame. The decoder returns these for
/// arbitrary input — it never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the header or declared payload does.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        have: usize,
    },
    /// The magic bytes are not `"MBTF"`.
    BadMagic,
    /// The version field is not [`FRAME_VERSION`].
    BadVersion(u16),
    /// The payload checksum does not match the header.
    BadChecksum,
    /// The kind byte names no known message kind.
    UnknownKind(u8),
    /// The payload's structure is invalid for its kind.
    Malformed(&'static str),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::BadChecksum => write!(f, "frame payload checksum mismatch"),
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::Malformed(what) => write!(f, "malformed frame payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// FNV-1a 64-bit hash — the payload checksum. Cheap, dependency-free, and
/// plenty for catching truncation and bit rot on an in-process bus.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Serializes `message` into a complete frame addressed
/// `sender → receiver`.
pub fn encode_frame(sender: NodeId, receiver: NodeId, seq: u64, message: &WireMessage) -> Vec<u8> {
    let mut payload = Vec::new();
    encode_payload(message, &mut payload);
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&FRAME_VERSION.to_be_bytes());
    out.push(message.kind() as u8);
    out.push(0); // flags
    out.extend_from_slice(&sender.raw().to_be_bytes());
    out.extend_from_slice(&receiver.raw().to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_be_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_be_bytes());
    out.extend_from_slice(&[0u8; 24]); // reserved
    debug_assert_eq!(out.len(), FRAME_HEADER_BYTES);
    out.extend_from_slice(&payload);
    out
}

/// Parses a complete frame from `bytes`.
///
/// # Errors
///
/// Returns a [`FrameError`] describing the first defect found; arbitrary
/// input never panics.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, FrameError> {
    if bytes.len() < FRAME_HEADER_BYTES {
        return Err(FrameError::Truncated {
            needed: FRAME_HEADER_BYTES,
            have: bytes.len(),
        });
    }
    if bytes[0..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let version = u16::from_be_bytes([bytes[4], bytes[5]]);
    if version != FRAME_VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let kind = FrameKind::from_u8(bytes[6]).ok_or(FrameError::UnknownKind(bytes[6]))?;
    let sender = NodeId::new(u32::from_be_bytes(bytes[8..12].try_into().unwrap()));
    let receiver = NodeId::new(u32::from_be_bytes(bytes[12..16].try_into().unwrap()));
    let seq = u64::from_be_bytes(bytes[16..24].try_into().unwrap());
    let payload_len = u64::from_be_bytes(bytes[24..32].try_into().unwrap());
    let checksum = u64::from_be_bytes(bytes[32..40].try_into().unwrap());
    let Ok(payload_len) = usize::try_from(payload_len) else {
        return Err(FrameError::Truncated {
            needed: usize::MAX,
            have: bytes.len(),
        });
    };
    let needed = FRAME_HEADER_BYTES.saturating_add(payload_len);
    if bytes.len() < needed {
        return Err(FrameError::Truncated {
            needed,
            have: bytes.len(),
        });
    }
    if bytes.len() > needed {
        return Err(FrameError::Malformed("trailing bytes after payload"));
    }
    let payload = &bytes[FRAME_HEADER_BYTES..];
    if fnv1a(payload) != checksum {
        return Err(FrameError::BadChecksum);
    }
    let mut r = Reader::new(payload);
    let message = decode_payload(kind, &mut r)?;
    if r.remaining() != 0 {
        return Err(FrameError::Malformed("unconsumed payload bytes"));
    }
    Ok(Frame {
        sender,
        receiver,
        seq,
        message,
    })
}

// --- Payload primitives. ---
//
// Strings are u32-length-prefixed UTF-8; collections are u32-count-prefixed;
// options are a 1-byte tag; floats travel as raw IEEE-754 bits so credits
// and popularities round-trip bit-for-bit.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_time(out: &mut Vec<u8>, t: Option<SimTime>) {
    match t {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            put_u64(out, t.as_secs());
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::Truncated {
                needed: self.pos + n,
                have: self.buf.len(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A u32 element count, sanity-checked against the bytes actually left
    /// (each element costs at least `min_bytes`), so a forged count cannot
    /// drive huge allocations.
    fn count(&mut self, min_bytes: usize) -> Result<usize, FrameError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_bytes.max(1)) > self.remaining() {
            return Err(FrameError::Malformed("element count exceeds payload"));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<&'a str, FrameError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| FrameError::Malformed("invalid UTF-8"))
    }

    fn uri(&mut self) -> Result<Uri, FrameError> {
        Uri::new(self.str()?).map_err(|_| FrameError::Malformed("invalid uri"))
    }

    fn query(&mut self) -> Result<Query, FrameError> {
        Query::new(self.str()?).map_err(|_| FrameError::Malformed("tokenless query"))
    }

    fn node(&mut self) -> Result<NodeId, FrameError> {
        Ok(NodeId::new(self.u32()?))
    }

    fn opt_time(&mut self) -> Result<Option<SimTime>, FrameError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(SimTime::from_secs(self.u64()?))),
            _ => Err(FrameError::Malformed("bad option tag")),
        }
    }

    fn digest(&mut self) -> Result<Digest, FrameError> {
        Ok(Digest(self.take(20)?.try_into().unwrap()))
    }
}

fn put_metadata(out: &mut Vec<u8>, m: &Metadata) {
    put_str(out, m.name());
    put_str(out, m.publisher());
    put_str(out, m.description());
    put_str(out, m.uri().as_str());
    put_u64(out, m.size());
    put_u64(out, m.piece_size());
    put_u32(out, m.piece_checksums().len() as u32);
    for d in m.piece_checksums() {
        out.extend_from_slice(d.as_bytes());
    }
    put_u64(out, m.created().as_secs());
    put_opt_time(out, m.expires());
    match m.auth_tag() {
        None => out.push(0),
        Some(tag) => {
            out.push(1);
            out.extend_from_slice(tag.as_bytes());
        }
    }
}

fn read_metadata(r: &mut Reader<'_>) -> Result<Metadata, FrameError> {
    let name = r.str()?.to_string();
    let publisher = r.str()?.to_string();
    let description = r.str()?.to_string();
    let uri = r.uri()?;
    let size = r.u64()?;
    let piece_size = r.u64()?;
    let n_checksums = r.count(20)?;
    let mut checksums = Vec::with_capacity(n_checksums);
    for _ in 0..n_checksums {
        checksums.push(r.digest()?);
    }
    let created = SimTime::from_secs(r.u64()?);
    let expires = r.opt_time()?;
    let auth_tag = match r.u8()? {
        0 => None,
        1 => Some(r.digest()?),
        _ => return Err(FrameError::Malformed("bad option tag")),
    };
    let mut meta = Metadata::builder(name, publisher, uri)
        .description(description)
        .sized(size, piece_size, checksums)
        .created(created)
        .expires_at(expires)
        .build();
    if let Some(tag) = auth_tag {
        meta.set_auth_tag(tag);
    }
    Ok(meta)
}

fn put_meta_pop(out: &mut Vec<u8>, m: &Metadata, p: Popularity) {
    put_metadata(out, m);
    put_u64(out, p.value().to_bits());
}

fn read_meta_pop(r: &mut Reader<'_>) -> Result<(Metadata, Popularity), FrameError> {
    let m = read_metadata(r)?;
    let p = Popularity::new(f64::from_bits(r.u64()?));
    Ok((m, p))
}

fn encode_payload(message: &WireMessage, out: &mut Vec<u8>) {
    match message {
        WireMessage::Hello(h) => {
            put_u32(out, h.sender.raw());
            put_u32(out, h.own_queries.len() as u32);
            for (q, expires) in &h.own_queries {
                put_str(out, q.text());
                put_opt_time(out, *expires);
            }
            put_u32(out, h.foreign_queries.len() as u32);
            for q in &h.foreign_queries {
                put_str(out, q.text());
            }
            put_u32(out, h.wanted.len() as u32);
            for uri in &h.wanted {
                put_str(out, uri.as_str());
            }
            put_u32(out, h.rejected.len() as u32);
            for uri in &h.rejected {
                put_str(out, uri.as_str());
            }
            put_u32(out, h.frequent.len() as u32);
            for id in &h.frequent {
                put_u32(out, id.raw());
            }
            put_u32(out, h.credits.len() as u32);
            for (id, credit) in &h.credits {
                put_u32(out, id.raw());
                put_u64(out, credit.to_bits());
            }
        }
        WireMessage::QueryShare {
            owner,
            query,
            expires,
        } => {
            put_u32(out, owner.raw());
            put_str(out, query.text());
            put_opt_time(out, *expires);
        }
        WireMessage::Metadata {
            metadata,
            popularity,
        } => put_meta_pop(out, metadata, *popularity),
        WireMessage::FileBroadcast { uri, metadata } => {
            put_str(out, uri.as_str());
            match metadata {
                None => out.push(0),
                Some((m, p)) => {
                    out.push(1);
                    put_meta_pop(out, m, *p);
                }
            }
        }
        WireMessage::PieceRequest { uri, index } => {
            put_str(out, uri.as_str());
            put_u32(out, *index);
        }
        WireMessage::Piece(piece) => {
            put_str(out, piece.id().uri().as_str());
            put_u32(out, piece.id().index());
            put_u32(out, piece.len() as u32);
            out.extend_from_slice(piece.data());
        }
        WireMessage::Search { query, limit } => {
            put_str(out, query.text());
            put_u32(out, *limit);
        }
        WireMessage::SearchResults { results } => {
            put_u32(out, results.len() as u32);
            for (m, p) in results {
                put_meta_pop(out, m, *p);
            }
        }
    }
}

fn decode_payload(kind: FrameKind, r: &mut Reader<'_>) -> Result<WireMessage, FrameError> {
    Ok(match kind {
        FrameKind::Hello => {
            let sender = r.node()?;
            let n_own = r.count(5)?;
            let mut own_queries = Vec::with_capacity(n_own);
            for _ in 0..n_own {
                let q = r.query()?;
                own_queries.push((q, r.opt_time()?));
            }
            let n_foreign = r.count(4)?;
            let mut foreign_queries = Vec::with_capacity(n_foreign);
            for _ in 0..n_foreign {
                foreign_queries.push(r.query()?);
            }
            let mut wanted = BTreeSet::new();
            for _ in 0..r.count(4)? {
                wanted.insert(r.uri()?);
            }
            let mut rejected = BTreeSet::new();
            for _ in 0..r.count(4)? {
                rejected.insert(r.uri()?);
            }
            let mut frequent = BTreeSet::new();
            for _ in 0..r.count(4)? {
                frequent.insert(r.node()?);
            }
            let n_credits = r.count(12)?;
            let mut credits = Vec::with_capacity(n_credits);
            for _ in 0..n_credits {
                let id = r.node()?;
                credits.push((id, f64::from_bits(r.u64()?)));
            }
            WireMessage::Hello(HelloFrame {
                sender,
                own_queries,
                foreign_queries,
                wanted,
                rejected,
                frequent,
                credits,
            })
        }
        FrameKind::QueryShare => WireMessage::QueryShare {
            owner: r.node()?,
            query: r.query()?,
            expires: r.opt_time()?,
        },
        FrameKind::Metadata => {
            let (metadata, popularity) = read_meta_pop(r)?;
            WireMessage::Metadata {
                metadata,
                popularity,
            }
        }
        FrameKind::FileBroadcast => {
            let uri = r.uri()?;
            let metadata = match r.u8()? {
                0 => None,
                1 => Some(read_meta_pop(r)?),
                _ => return Err(FrameError::Malformed("bad option tag")),
            };
            WireMessage::FileBroadcast { uri, metadata }
        }
        FrameKind::PieceRequest => WireMessage::PieceRequest {
            uri: r.uri()?,
            index: r.u32()?,
        },
        FrameKind::Piece => {
            let uri = r.uri()?;
            let index = r.u32()?;
            let len = r.count(1)?;
            let data = r.take(len)?.to_vec();
            WireMessage::Piece(Piece::new(PieceId::new(uri, index), data))
        }
        FrameKind::Search => WireMessage::Search {
            query: r.query()?,
            limit: r.u32()?,
        },
        FrameKind::SearchResults => {
            let n = r.count(1)?;
            let mut results = Vec::with_capacity(n);
            for _ in 0..n {
                results.push(read_meta_pop(r)?);
            }
            WireMessage::SearchResults { results }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn uri(s: &str) -> Uri {
        Uri::new(s).unwrap()
    }

    fn sample_metadata() -> Metadata {
        let data = vec![7u8; 100];
        let mut m = Metadata::builder("FOX Evening News", "FOX", uri("mbt://fox/news"))
            .description("nightly broadcast")
            .content(&data, 32)
            .created(SimTime::from_secs(100))
            .expires_at(Some(SimTime::from_secs(9_000)))
            .build();
        m.set_auth_tag(crate::checksum::sha1(b"tag"));
        m
    }

    fn round_trip(msg: WireMessage) -> Frame {
        let bytes = encode_frame(n(3), n(9), 42, &msg);
        let frame = decode_frame(&bytes).expect("valid frame must decode");
        assert_eq!(frame.sender, n(3));
        assert_eq!(frame.receiver, n(9));
        assert_eq!(frame.seq, 42);
        assert_eq!(frame.message, msg);
        frame
    }

    #[test]
    fn header_is_exactly_the_simulator_frame_overhead() {
        assert_eq!(
            FRAME_HEADER_BYTES as u64,
            dtn_sim::channel::FRAME_HEADER_BYTES
        );
        let bytes = encode_frame(
            n(0),
            n(1),
            0,
            &WireMessage::PieceRequest {
                uri: uri("mbt://a"),
                index: 0,
            },
        );
        // frame_bytes(payload) must describe the real encoding.
        assert_eq!(
            bytes.len() as u64,
            dtn_sim::channel::frame_bytes((bytes.len() - FRAME_HEADER_BYTES) as u64)
        );
    }

    #[test]
    fn every_kind_round_trips() {
        let meta = sample_metadata();
        let messages = vec![
            WireMessage::Hello(HelloFrame {
                sender: n(1),
                own_queries: vec![
                    (Query::new("fox news").unwrap(), None),
                    (
                        Query::new("abc comedy").unwrap(),
                        Some(SimTime::from_secs(500)),
                    ),
                ],
                foreign_queries: vec![Query::new("cbs sports").unwrap()],
                wanted: [uri("mbt://a"), uri("mbt://b")].into_iter().collect(),
                rejected: [uri("mbt://fake")].into_iter().collect(),
                frequent: [n(2), n(5)].into_iter().collect(),
                credits: vec![(n(2), 5.0), (n(7), 0.25)],
            }),
            WireMessage::QueryShare {
                owner: n(4),
                query: Query::new("evening news").unwrap(),
                expires: Some(SimTime::from_secs(777)),
            },
            WireMessage::Metadata {
                metadata: meta.clone(),
                popularity: Popularity::new(0.75),
            },
            WireMessage::FileBroadcast {
                uri: uri("mbt://fox/news"),
                metadata: Some((meta.clone(), Popularity::new(0.5))),
            },
            WireMessage::FileBroadcast {
                uri: uri("mbt://bare"),
                metadata: None,
            },
            WireMessage::PieceRequest {
                uri: uri("mbt://fox/news"),
                index: 2,
            },
            WireMessage::Piece(Piece::new(
                PieceId::new(uri("mbt://fox/news"), 2),
                vec![1, 2, 3, 4],
            )),
            WireMessage::Search {
                query: Query::new("fox").unwrap(),
                limit: 5,
            },
            WireMessage::SearchResults {
                results: vec![(meta, Popularity::MAX)],
            },
        ];
        // One message of every kind — keep this list exhaustive.
        let kinds: BTreeSet<u8> = messages.iter().map(|m| m.kind() as u8).collect();
        assert_eq!(kinds.len(), 8, "every frame kind must be covered");
        for msg in messages {
            round_trip(msg);
        }
    }

    #[test]
    fn metadata_round_trip_preserves_auth_and_matching() {
        let meta = sample_metadata();
        let bytes = encode_frame(
            n(0),
            n(1),
            0,
            &WireMessage::Metadata {
                metadata: meta.clone(),
                popularity: Popularity::new(0.3),
            },
        );
        let WireMessage::Metadata { metadata: back, .. } = decode_frame(&bytes).unwrap().message
        else {
            panic!("kind changed in flight");
        };
        assert_eq!(back, meta);
        assert_eq!(back.auth_tag(), meta.auth_tag());
        assert_eq!(back.canonical_bytes(), meta.canonical_bytes());
        assert_eq!(back.token_set(), meta.token_set());
        assert_eq!(back.wire_size(), meta.wire_size());
    }

    #[test]
    fn truncated_header_and_payload_are_rejected() {
        let bytes = encode_frame(
            n(0),
            n(1),
            7,
            &WireMessage::PieceRequest {
                uri: uri("mbt://a"),
                index: 1,
            },
        );
        for cut in 0..bytes.len() {
            let err = decode_frame(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut bytes = encode_frame(
            n(0),
            n(1),
            7,
            &WireMessage::Search {
                query: Query::new("fox").unwrap(),
                limit: 3,
            },
        );
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert_eq!(decode_frame(&bytes).unwrap_err(), FrameError::BadChecksum);
    }

    #[test]
    fn bad_magic_version_and_kind_are_rejected() {
        let good = encode_frame(
            n(0),
            n(1),
            0,
            &WireMessage::PieceRequest {
                uri: uri("mbt://a"),
                index: 0,
            },
        );
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(decode_frame(&bad).unwrap_err(), FrameError::BadMagic);
        let mut bad = good.clone();
        bad[5] = 99;
        assert_eq!(decode_frame(&bad).unwrap_err(), FrameError::BadVersion(99));
        let mut bad = good.clone();
        bad[6] = 200;
        assert_eq!(
            decode_frame(&bad).unwrap_err(),
            FrameError::UnknownKind(200)
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_frame(
            n(0),
            n(1),
            0,
            &WireMessage::PieceRequest {
                uri: uri("mbt://a"),
                index: 0,
            },
        );
        bytes.push(0);
        assert!(matches!(
            decode_frame(&bytes).unwrap_err(),
            FrameError::Malformed(_)
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn piece_frames_round_trip(
            name in "[a-z0-9]{1,12}",
            index in 0u32..1000,
            data in proptest::collection::vec(any::<u8>(), 0..2_000),
        ) {
            let msg = WireMessage::Piece(Piece::new(
                PieceId::new(Uri::new(format!("mbt://p/{name}")).unwrap(), index),
                data,
            ));
            let bytes = encode_frame(n(1), n(2), 0, &msg);
            prop_assert_eq!(decode_frame(&bytes).unwrap().message, msg);
        }

        #[test]
        fn hello_frames_round_trip(
            texts in proptest::collection::vec("[a-z]{1,8}( [a-z]{1,8}){0,1}", 0..5),
            wanted in proptest::collection::btree_set("[a-z0-9]{1,10}", 0..5),
            peers in proptest::collection::btree_set(0u32..64, 0..6),
            credit_bits in proptest::collection::vec((0u32..64, any::<u32>()), 0..6),
        ) {
            let msg = WireMessage::Hello(HelloFrame {
                sender: n(0),
                own_queries: texts
                    .iter()
                    .map(|t| (Query::new(t.clone()).unwrap(), Some(SimTime::from_secs(7))))
                    .collect(),
                foreign_queries: texts.iter().map(|t| Query::new(t.clone()).unwrap()).collect(),
                wanted: wanted
                    .iter()
                    .map(|s| Uri::new(format!("mbt://w/{s}")).unwrap())
                    .collect(),
                rejected: BTreeSet::new(),
                frequent: peers.iter().map(|&i| n(i)).collect(),
                credits: credit_bits
                    .iter()
                    .map(|&(i, c)| (n(i), f64::from(c) * 0.25))
                    .collect(),
            });
            let bytes = encode_frame(n(0), n(1), 9, &msg);
            prop_assert_eq!(decode_frame(&bytes).unwrap().message, msg);
        }

        #[test]
        fn decoder_never_panics_on_noise(
            data in proptest::collection::vec(any::<u8>(), 0..300),
        ) {
            // Raw noise: any result is fine, panics are not.
            let _ = decode_frame(&data);
        }

        #[test]
        fn decoder_never_panics_on_mutated_frames(
            flip_at in 0usize..200,
            xor in 1u8..=255,
        ) {
            let msg = WireMessage::Metadata {
                metadata: sample_metadata(),
                popularity: Popularity::new(0.5),
            };
            let mut bytes = encode_frame(n(1), n(2), 3, &msg);
            let at = flip_at % bytes.len();
            bytes[at] ^= xor;
            // Header mutations that only touch routing fields (sender,
            // receiver, seq, reserved) still decode — the payload is
            // intact. Anything else must error, not panic.
            if let Ok(frame) = decode_frame(&bytes) {
                prop_assert_eq!(frame.message, msg);
            }
        }
    }
}
