//! The bus backend: every message round-trips its frame encoding over a
//! link-scheduled in-process bus.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dtn_trace::{NodeId, SimTime};

use super::frame::{decode_frame, encode_frame};
use super::{Carried, Transport, WireMessage};

/// Normalized undirected link key.
fn link(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// An in-process message bus driven by the contact trace as a connectivity
/// schedule.
///
/// [`join`](Transport::join) opens a link between every pair of contact
/// members and [`leave`](Transport::leave) closes them again. Carrying a
/// message serializes it into its wire frame, moves the bytes across the
/// link's queue, and decodes them on the far side — so the simulator state a
/// receiver builds has provably survived the codec. Within a simulated
/// contact the exchange is lock-step (each frame is consumed before the next
/// is sent), which keeps delivery order identical to
/// [`SimTransport`](super::SimTransport); the differential suite pins the
/// two backends byte-identical. Frames still queued when their link closes
/// are dropped
/// and reported through [`leave`](Transport::leave) into the contact's
/// fault counters.
///
/// Carrying across a closed link returns [`Carried::Dropped`] — links only
/// exist while the connectivity schedule says the two nodes can hear each
/// other.
#[derive(Debug, Clone, Default)]
pub struct BusTransport {
    /// Open undirected links, keyed `(min, max)`.
    links: BTreeSet<(NodeId, NodeId)>,
    /// Directed in-flight frame queues, keyed `(sender, receiver)`.
    queues: BTreeMap<(NodeId, NodeId), VecDeque<Vec<u8>>>,
    seq: u64,
    frames_carried: u64,
    bytes_on_wire: u64,
    frames_dropped: u64,
}

impl BusTransport {
    /// Creates a bus with no open links.
    pub fn new() -> Self {
        BusTransport::default()
    }

    /// Frames successfully carried (encoded, moved, decoded) so far.
    pub fn frames_carried(&self) -> u64 {
        self.frames_carried
    }

    /// Total encoded bytes moved across links (headers included).
    pub fn bytes_on_wire(&self) -> u64 {
        self.bytes_on_wire
    }

    /// Frames dropped: sent on closed links, undecodable, or still in
    /// flight at link close.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped
    }

    /// True if `a` and `b` currently share an open link.
    pub fn is_open(&self, a: NodeId, b: NodeId) -> bool {
        self.links.contains(&link(a, b))
    }
}

impl Transport for BusTransport {
    fn join(&mut self, _now: SimTime, members: &[NodeId]) {
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                if a != b {
                    self.links.insert(link(a, b));
                }
            }
        }
    }

    fn carry(
        &mut self,
        _now: SimTime,
        sender: NodeId,
        receiver: NodeId,
        message: WireMessage,
    ) -> Carried {
        if !self.links.contains(&link(sender, receiver)) {
            self.frames_dropped += 1;
            return Carried::Dropped;
        }
        let bytes = encode_frame(sender, receiver, self.seq, &message);
        self.seq += 1;
        self.bytes_on_wire += bytes.len() as u64;
        // Lock-step: the frame enters the link's queue and the receiver
        // drains it immediately. The queue matters at link close, when
        // whatever a non-lock-step user left in flight gets dropped.
        let queue = self.queues.entry((sender, receiver)).or_default();
        queue.push_back(bytes);
        let bytes = queue.pop_front().expect("frame was just queued");
        match decode_frame(&bytes) {
            Ok(frame) => {
                self.frames_carried += 1;
                Carried::Delivered(frame.message)
            }
            Err(_) => {
                self.frames_dropped += 1;
                Carried::Dropped
            }
        }
    }

    fn leave(&mut self, _now: SimTime, members: &[NodeId]) -> usize {
        let mut dropped = 0;
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                if a == b {
                    continue;
                }
                self.links.remove(&link(a, b));
                for key in [(a, b), (b, a)] {
                    if let Some(queue) = self.queues.remove(&key) {
                        dropped += queue.len();
                    }
                }
            }
        }
        self.frames_dropped += dropped as u64;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::uri::Uri;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn msg() -> WireMessage {
        WireMessage::Search {
            query: Query::new("fox news").unwrap(),
            limit: 4,
        }
    }

    #[test]
    fn carry_round_trips_through_the_codec() {
        let mut bus = BusTransport::new();
        bus.join(SimTime::ZERO, &[n(0), n(1), n(2)]);
        assert!(bus.is_open(n(0), n(2)));
        assert_eq!(
            bus.carry(SimTime::ZERO, n(0), n(2), msg()),
            Carried::Delivered(msg())
        );
        assert_eq!(bus.frames_carried(), 1);
        assert!(bus.bytes_on_wire() > super::super::FRAME_HEADER_BYTES as u64);
        assert_eq!(bus.leave(SimTime::ZERO, &[n(0), n(1), n(2)]), 0);
    }

    #[test]
    fn closed_links_drop_frames() {
        let mut bus = BusTransport::new();
        bus.join(SimTime::ZERO, &[n(0), n(1)]);
        assert_eq!(
            bus.carry(SimTime::ZERO, n(0), n(2), msg()),
            Carried::Dropped,
            "no contact, no link"
        );
        bus.leave(SimTime::ZERO, &[n(0), n(1)]);
        assert_eq!(
            bus.carry(SimTime::ZERO, n(0), n(1), msg()),
            Carried::Dropped
        );
        assert_eq!(bus.frames_dropped(), 2);
        assert_eq!(bus.frames_carried(), 0);
    }

    #[test]
    fn piece_payloads_survive_the_wire() {
        use crate::piece::{Piece, PieceId};
        let mut bus = BusTransport::new();
        bus.join(SimTime::ZERO, &[n(0), n(1)]);
        let piece = Piece::new(
            PieceId::new(Uri::new("mbt://f").unwrap(), 1),
            (0..=255).collect(),
        );
        match bus.carry(SimTime::ZERO, n(0), n(1), WireMessage::Piece(piece.clone())) {
            Carried::Delivered(WireMessage::Piece(back)) => assert_eq!(back, piece),
            other => panic!("expected delivered piece, got {other:?}"),
        }
    }
}
