//! The central metadata server on the Internet.
//!
//! In a hybrid DTN the Internet is the sole source of files; metadata "can be
//! placed on different servers than those of their files" and popularities
//! "can be maintained by a central metadata server" (paper §III, §IV). When a
//! node connects to the Internet it sends its query strings to the server,
//! which returns the best-matched metadata; the server also tracks request
//! popularity over a 24-hour window.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use dtn_trace::{NodeId, SimTime};

use crate::keyword::InvertedIndex;
use crate::metadata::Metadata;
use crate::popularity::{cmp_popularity, Popularity, PopularityEstimator};
use crate::query::Query;
use crate::uri::Uri;

/// The central metadata server.
///
/// Holds every published metadata record, a keyword index over it, the
/// authoritative popularity of each file, and (as the Internet side of the
/// hybrid DTN) the file contents themselves at file-level granularity.
///
/// # Example
///
/// ```
/// use mbt_core::{Metadata, MetadataServer, Popularity, Query, Uri};
///
/// let mut server = MetadataServer::new(10);
/// let uri = Uri::new("mbt://fox/news-1")?;
/// let meta = Metadata::builder("FOX Evening News", "FOX", uri).build();
/// server.publish(meta, Popularity::new(0.3));
///
/// let hits = server.search(&Query::new("evening news")?, 5);
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].name(), "FOX Evening News");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MetadataServer {
    metadata: BTreeMap<Uri, Metadata>,
    index: InvertedIndex,
    popularity: BTreeMap<Uri, Popularity>,
    estimator: PopularityEstimator,
}

impl MetadataServer {
    /// Creates a server; `internet_population` is the number of
    /// Internet-access nodes, used to normalize estimated popularity.
    pub fn new(internet_population: u32) -> Self {
        MetadataServer {
            metadata: BTreeMap::new(),
            index: InvertedIndex::new(),
            popularity: BTreeMap::new(),
            estimator: PopularityEstimator::new(internet_population),
        }
    }

    /// Publishes metadata with an assigned popularity (the workload's ground
    /// truth). Re-publishing a URI replaces the record.
    pub fn publish(&mut self, metadata: Metadata, popularity: Popularity) {
        let uri = metadata.uri().clone();
        self.index.remove(&uri);
        self.index.insert_tokens(&uri, metadata.token_set().iter());
        self.popularity.insert(uri.clone(), popularity);
        self.metadata.insert(uri, metadata);
    }

    /// Number of published records.
    pub fn len(&self) -> usize {
        self.metadata.len()
    }

    /// True if nothing is published.
    pub fn is_empty(&self) -> bool {
        self.metadata.is_empty()
    }

    /// Looks up metadata by URI.
    pub fn metadata_of(&self, uri: &Uri) -> Option<&Metadata> {
        self.metadata.get(uri)
    }

    /// The assigned popularity of `uri` (0 if unknown).
    pub fn popularity_of(&self, uri: &Uri) -> Popularity {
        self.popularity.get(uri).copied().unwrap_or(Popularity::MIN)
    }

    /// Updates the assigned popularity (e.g. daily refresh from the
    /// estimator).
    pub fn set_popularity(&mut self, uri: &Uri, popularity: Popularity) {
        if self.metadata.contains_key(uri) {
            self.popularity.insert(uri.clone(), popularity);
        }
    }

    /// Best-matched metadata for `query`, at most `limit`, ranked by match
    /// count then popularity then URI (all descending except URI).
    pub fn search(&self, query: &Query, limit: usize) -> Vec<&Metadata> {
        let mut ranked: Vec<(&Uri, usize)> = self
            .index
            .lookup_ranked(query.tokens())
            .into_iter()
            .filter(|(uri, _)| {
                self.metadata
                    .get(uri)
                    .is_some_and(|m| m.matches_query(query))
            })
            .map(|(uri, hits)| {
                let uri_ref = self.metadata.get_key_value(&uri).expect("checked above").0;
                (uri_ref, hits)
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| self.cmp_by_popularity(b.0, a.0))
                .then_with(|| a.0.cmp(b.0))
        });
        ranked
            .into_iter()
            .take(limit)
            .map(|(uri, _)| &self.metadata[uri])
            .collect()
    }

    /// The single best match for `query`, if any.
    pub fn best_match(&self, query: &Query) -> Option<&Metadata> {
        self.search(query, 1).into_iter().next()
    }

    /// The `limit` most popular unexpired metadata at `now` (the push phase
    /// of metadata distribution).
    pub fn most_popular(&self, limit: usize, now: SimTime) -> Vec<&Metadata> {
        let mut all: Vec<&Uri> = self
            .metadata
            .iter()
            .filter(|(_, m)| !m.is_expired(now))
            .map(|(u, _)| u)
            .collect();
        all.sort_by(|a, b| self.cmp_by_popularity(b, a).then_with(|| a.cmp(b)));
        all.into_iter()
            .take(limit)
            .map(|u| &self.metadata[u])
            .collect()
    }

    /// Records a download request (feeds the 24-hour popularity estimator).
    pub fn record_request(&mut self, uri: &Uri, node: NodeId, now: SimTime) {
        self.estimator.record_request(uri, node, now);
    }

    /// The estimated popularity from the 24-hour request window.
    pub fn estimated_popularity(&self, uri: &Uri, now: SimTime) -> Popularity {
        self.estimator.popularity(uri, now)
    }

    /// Refreshes every assigned popularity from the estimator (the paper's
    /// daily popularity update).
    pub fn refresh_popularities(&mut self, now: SimTime) {
        let uris: Vec<Uri> = self.metadata.keys().cloned().collect();
        for uri in uris {
            let p = self.estimator.popularity(&uri, now);
            self.popularity.insert(uri, p);
        }
        self.estimator.prune(now);
    }

    /// Removes metadata expired at `now`; returns how many were dropped.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let expired: Vec<Uri> = self
            .metadata
            .iter()
            .filter(|(_, m)| m.is_expired(now))
            .map(|(u, _)| u.clone())
            .collect();
        for uri in &expired {
            self.metadata.remove(uri);
            self.index.remove(uri);
            self.popularity.remove(uri);
        }
        expired.len()
    }

    /// Iterates over all published metadata in URI order.
    pub fn iter(&self) -> impl Iterator<Item = &Metadata> {
        self.metadata.values()
    }

    fn cmp_by_popularity(&self, a: &Uri, b: &Uri) -> Ordering {
        cmp_popularity(self.popularity_of(a), self.popularity_of(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_trace::SimDuration;

    fn meta(name: &str, uri: &str) -> Metadata {
        Metadata::builder(name, "FOX", Uri::new(uri).unwrap()).build()
    }

    fn server_with(entries: &[(&str, &str, f64)]) -> MetadataServer {
        let mut s = MetadataServer::new(10);
        for &(name, uri, pop) in entries {
            s.publish(meta(name, uri), Popularity::new(pop));
        }
        s
    }

    #[test]
    fn publish_and_lookup() {
        let s = server_with(&[("FOX News", "mbt://a", 0.5)]);
        assert_eq!(s.len(), 1);
        let uri = Uri::new("mbt://a").unwrap();
        assert_eq!(s.metadata_of(&uri).unwrap().name(), "FOX News");
        assert_eq!(s.popularity_of(&uri).value(), 0.5);
    }

    #[test]
    fn search_ranks_by_match_then_popularity() {
        let s = server_with(&[
            ("fox news tonight", "mbt://a", 0.1),
            ("fox news", "mbt://b", 0.9),
            ("fox comedy", "mbt://c", 0.99),
        ]);
        let q = Query::new("fox news").unwrap();
        let hits = s.search(&q, 10);
        // Both a and b match fully (AND semantics filter others out).
        assert_eq!(hits.len(), 2);
        // Same match count (2 tokens) → popularity decides: b first.
        assert_eq!(hits[0].uri().as_str(), "mbt://b");
    }

    #[test]
    fn search_respects_limit_and_best_match() {
        let s = server_with(&[("news one", "mbt://a", 0.2), ("news two", "mbt://b", 0.8)]);
        let q = Query::new("news").unwrap();
        assert_eq!(s.search(&q, 1).len(), 1);
        assert_eq!(s.best_match(&q).unwrap().uri().as_str(), "mbt://b");
    }

    #[test]
    fn search_requires_all_tokens() {
        let s = server_with(&[("fox comedy", "mbt://c", 0.9)]);
        assert!(s.search(&Query::new("fox news").unwrap(), 10).is_empty());
    }

    #[test]
    fn most_popular_sorted_desc() {
        let s = server_with(&[
            ("a", "mbt://a", 0.2),
            ("b", "mbt://b", 0.9),
            ("c", "mbt://c", 0.5),
        ]);
        let top: Vec<&str> = s
            .most_popular(2, SimTime::ZERO)
            .iter()
            .map(|m| m.uri().as_str())
            .collect();
        assert_eq!(top, vec!["mbt://b", "mbt://c"]);
    }

    #[test]
    fn most_popular_skips_expired() {
        let mut s = MetadataServer::new(10);
        let m = Metadata::builder("old", "FOX", Uri::new("mbt://old").unwrap())
            .ttl(SimDuration::from_secs(10))
            .build();
        s.publish(m, Popularity::MAX);
        assert!(s.most_popular(5, SimTime::from_secs(20)).is_empty());
    }

    #[test]
    fn expire_removes_records() {
        let mut s = MetadataServer::new(10);
        let m = Metadata::builder("old", "FOX", Uri::new("mbt://old").unwrap())
            .ttl(SimDuration::from_secs(10))
            .build();
        s.publish(m, Popularity::MAX);
        s.publish(meta("fresh", "mbt://fresh"), Popularity::MAX);
        assert_eq!(s.expire(SimTime::from_secs(20)), 1);
        assert_eq!(s.len(), 1);
        assert!(s.search(&Query::new("old").unwrap(), 5).is_empty());
    }

    #[test]
    fn estimator_integration() {
        let mut s = server_with(&[("a", "mbt://a", 0.0)]);
        let uri = Uri::new("mbt://a").unwrap();
        let t = SimTime::from_secs(100);
        s.record_request(&uri, NodeId::new(0), t);
        s.record_request(&uri, NodeId::new(1), t);
        assert!((s.estimated_popularity(&uri, t).value() - 0.2).abs() < 1e-12);
        s.refresh_popularities(t);
        assert!((s.popularity_of(&uri).value() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn republish_replaces() {
        let mut s = server_with(&[("first title", "mbt://a", 0.1)]);
        s.publish(meta("second title", "mbt://a"), Popularity::new(0.7));
        assert_eq!(s.len(), 1);
        assert!(s.search(&Query::new("first").unwrap(), 5).is_empty());
        assert_eq!(s.search(&Query::new("second").unwrap(), 5).len(), 1);
    }

    #[test]
    fn set_popularity_only_for_known() {
        let mut s = server_with(&[("a", "mbt://a", 0.1)]);
        let unknown = Uri::new("mbt://nope").unwrap();
        s.set_popularity(&unknown, Popularity::MAX);
        assert_eq!(s.popularity_of(&unknown), Popularity::MIN);
    }

    #[test]
    fn iter_covers_all() {
        let s = server_with(&[("a", "mbt://a", 0.1), ("b", "mbt://b", 0.2)]);
        assert_eq!(s.iter().count(), 2);
        assert!(!s.is_empty());
    }
}
