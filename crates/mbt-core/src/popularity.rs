//! File popularity.
//!
//! The popularity of a metadata is "the percentage of Internet access nodes
//! requesting the file of the metadata in the past 24 hours" — a value in
//! [0, 1] maintained by the central metadata server (paper §IV-A). The
//! evaluation workload draws each new file's popularity `p` from the
//! truncated-exponential density `λe^{-λx}` on [0, 1] via the inverse-CDF
//! formula given in §VI-A:
//!
//! ```text
//! p = -ln(1 - x (1 - e^{-λ})) / λ,   x ~ U(0, 1)
//! ```
//!
//! whose mean is approximately `1/λ`. With `λ = n/2` (n = new files per day)
//! each node generates about `n · (1/λ) = 2` queries per day.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use dtn_trace::{NodeId, SimDuration, SimTime};
use rand::Rng;

use crate::uri::Uri;

/// A popularity value in `[0, 1]`.
///
/// # Example
///
/// ```
/// use mbt_core::Popularity;
///
/// let p = Popularity::new(0.25);
/// assert_eq!(p.value(), 0.25);
/// assert_eq!(Popularity::new(7.0), Popularity::MAX, "clamped");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Popularity(f64);

impl Popularity {
    /// The minimum popularity (0).
    pub const MIN: Popularity = Popularity(0.0);
    /// The maximum popularity (1).
    pub const MAX: Popularity = Popularity(1.0);

    /// Creates a popularity, clamping into `[0, 1]`; NaN clamps to 0.
    pub fn new(value: f64) -> Self {
        if value.is_nan() {
            return Popularity(0.0);
        }
        Popularity(value.clamp(0.0, 1.0))
    }

    /// The inner value.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Popularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl From<Popularity> for f64 {
    fn from(p: Popularity) -> f64 {
        p.0
    }
}

/// Total order on popularity for deterministic sorting: NaN is impossible by
/// construction, so comparison is total.
pub fn cmp_popularity(a: Popularity, b: Popularity) -> std::cmp::Ordering {
    a.0.partial_cmp(&b.0).expect("popularity is never NaN")
}

/// Draws a popularity from the paper's truncated-exponential distribution
/// with parameter `lambda` (§VI-A).
///
/// # Panics
///
/// Panics if `lambda <= 0`.
pub fn sample_popularity<R: Rng>(rng: &mut R, lambda: f64) -> Popularity {
    assert!(lambda > 0.0, "lambda must be positive");
    let x: f64 = rng.gen_range(0.0..1.0);
    let p = -(1.0 - x * (1.0 - (-lambda).exp())).ln() / lambda;
    Popularity::new(p)
}

/// The paper's choice of λ given `n` new files per day: `λ = n / 2`, so the
/// expected number of queries per node per day is ≈ 2.
pub fn lambda_for_files_per_day(n: u32) -> f64 {
    f64::from(n.max(1)) / 2.0
}

/// Server-side popularity estimator: the fraction of distinct Internet-access
/// nodes that requested a file in a sliding window (default 24 hours).
///
/// # Example
///
/// ```
/// use mbt_core::popularity::PopularityEstimator;
/// use mbt_core::Uri;
/// use dtn_trace::{NodeId, SimTime};
///
/// let mut est = PopularityEstimator::new(4); // 4 Internet-access nodes
/// let uri = Uri::new("mbt://f/1")?;
/// est.record_request(&uri, NodeId::new(0), SimTime::from_secs(100));
/// est.record_request(&uri, NodeId::new(1), SimTime::from_secs(200));
/// assert_eq!(est.popularity(&uri, SimTime::from_secs(300)).value(), 0.5);
/// # Ok::<(), mbt_core::uri::InvalidUri>(())
/// ```
#[derive(Debug, Clone)]
pub struct PopularityEstimator {
    population: u32,
    window: SimDuration,
    requests: BTreeMap<Uri, VecDeque<(SimTime, NodeId)>>,
}

impl PopularityEstimator {
    /// Creates an estimator over a population of `population` Internet-access
    /// nodes with the paper's 24-hour window.
    pub fn new(population: u32) -> Self {
        Self::with_window(population, SimDuration::from_hours(24))
    }

    /// Creates an estimator with a custom sliding window.
    pub fn with_window(population: u32, window: SimDuration) -> Self {
        PopularityEstimator {
            population: population.max(1),
            window,
            requests: BTreeMap::new(),
        }
    }

    /// Records that `node` requested the file at `uri` at time `now`.
    pub fn record_request(&mut self, uri: &Uri, node: NodeId, now: SimTime) {
        self.requests
            .entry(uri.clone())
            .or_default()
            .push_back((now, node));
    }

    /// The estimated popularity of `uri` at `now`: distinct requesters within
    /// the window divided by the population.
    pub fn popularity(&self, uri: &Uri, now: SimTime) -> Popularity {
        let Some(reqs) = self.requests.get(uri) else {
            return Popularity::MIN;
        };
        let cutoff = now.saturating_sub(self.window);
        let distinct: std::collections::BTreeSet<NodeId> = reqs
            .iter()
            .filter(|&&(t, _)| t >= cutoff && t <= now)
            .map(|&(_, n)| n)
            .collect();
        Popularity::new(distinct.len() as f64 / f64::from(self.population))
    }

    /// Drops request records older than the window relative to `now`.
    pub fn prune(&mut self, now: SimTime) {
        let cutoff = now.saturating_sub(self.window);
        self.requests.retain(|_, reqs| {
            while reqs.front().is_some_and(|&(t, _)| t < cutoff) {
                reqs.pop_front();
            }
            !reqs.is_empty()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn popularity_clamps() {
        assert_eq!(Popularity::new(-1.0), Popularity::MIN);
        assert_eq!(Popularity::new(2.0), Popularity::MAX);
        assert_eq!(Popularity::new(f64::NAN).value(), 0.0);
    }

    #[test]
    fn sample_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let p = sample_popularity(&mut rng, 25.0);
            assert!((0.0..=1.0).contains(&p.value()));
        }
    }

    #[test]
    fn sample_mean_approximates_inverse_lambda() {
        let mut rng = StdRng::seed_from_u64(2);
        let lambda = 20.0;
        let n = 50_000;
        let mean: f64 = (0..n)
            .map(|_| sample_popularity(&mut rng, lambda).value())
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - 1.0 / lambda).abs() < 0.005,
            "mean {mean} vs expected {}",
            1.0 / lambda
        );
    }

    #[test]
    fn expected_queries_per_node_per_day_is_two() {
        // n files/day with popularity mean ≈ 1/λ and λ = n/2 ⇒ n·(1/λ) = 2.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50u32;
        let lambda = lambda_for_files_per_day(n);
        let trials = 2_000;
        let mut total_queries = 0.0;
        for _ in 0..trials {
            for _ in 0..n {
                total_queries += sample_popularity(&mut rng, lambda).value();
            }
        }
        let per_day = total_queries / trials as f64;
        assert!((per_day - 2.0).abs() < 0.15, "queries/day {per_day}");
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn zero_lambda_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sample_popularity(&mut rng, 0.0);
    }

    #[test]
    fn estimator_counts_distinct_requesters() {
        let mut est = PopularityEstimator::new(10);
        let uri = Uri::new("mbt://f").unwrap();
        let t = SimTime::from_secs(1000);
        est.record_request(&uri, NodeId::new(1), t);
        est.record_request(&uri, NodeId::new(1), t); // duplicate
        est.record_request(&uri, NodeId::new(2), t);
        assert!((est.popularity(&uri, t).value() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn estimator_window_expires_requests() {
        let mut est = PopularityEstimator::new(10);
        let uri = Uri::new("mbt://f").unwrap();
        est.record_request(&uri, NodeId::new(1), SimTime::from_secs(0));
        let later = SimTime::from_secs(25 * 3600);
        assert_eq!(est.popularity(&uri, later), Popularity::MIN);
    }

    #[test]
    fn estimator_unknown_uri_is_zero() {
        let est = PopularityEstimator::new(10);
        let uri = Uri::new("mbt://nope").unwrap();
        assert_eq!(est.popularity(&uri, SimTime::ZERO), Popularity::MIN);
    }

    #[test]
    fn prune_removes_old_entries() {
        let mut est = PopularityEstimator::new(10);
        let uri = Uri::new("mbt://f").unwrap();
        est.record_request(&uri, NodeId::new(1), SimTime::from_secs(0));
        est.prune(SimTime::from_secs(30 * 3600));
        assert!(est.requests.is_empty());
    }

    #[test]
    fn request_exactly_at_the_24h_boundary_still_counts() {
        // The window is inclusive at both edges: a request made exactly 24
        // hours ago sits at `cutoff = now - window` and `t >= cutoff` keeps
        // it; one second older falls out.
        let mut est = PopularityEstimator::new(10);
        let uri = Uri::new("mbt://f").unwrap();
        let t0 = SimTime::from_secs(1_000);
        est.record_request(&uri, NodeId::new(1), t0);

        let exactly_24h = t0.saturating_add(SimDuration::from_hours(24));
        assert!(
            (est.popularity(&uri, exactly_24h).value() - 0.1).abs() < 1e-12,
            "request exactly one window old must still count"
        );
        let one_past = SimTime::from_secs(exactly_24h.as_secs() + 1);
        assert_eq!(est.popularity(&uri, one_past), Popularity::MIN);

        // The same boundary governs prune: at exactly 24 h the record
        // survives, one second later it is dropped.
        est.prune(exactly_24h);
        assert_eq!(est.requests[&uri].len(), 1);
        est.prune(one_past);
        assert!(est.requests.is_empty());
    }

    #[test]
    fn requests_from_the_future_do_not_count() {
        // `t <= now` bounds the window on the right: a request stamped
        // *after* the query instant (e.g. out-of-order session replay) must
        // not inflate the estimate.
        let mut est = PopularityEstimator::new(10);
        let uri = Uri::new("mbt://f").unwrap();
        est.record_request(&uri, NodeId::new(1), SimTime::from_secs(5_000));
        assert_eq!(
            est.popularity(&uri, SimTime::from_secs(4_000)),
            Popularity::MIN
        );
        assert!((est.popularity(&uri, SimTime::from_secs(5_000)).value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn duplicate_node_uri_requests_in_one_window_count_once() {
        // One node hammering the same URI at several instants inside a
        // single window is still one distinct requester.
        let mut est = PopularityEstimator::new(10);
        let uri = Uri::new("mbt://f").unwrap();
        for hour in [0u64, 3, 7, 23] {
            est.record_request(&uri, NodeId::new(4), SimTime::from_secs(hour * 3_600));
        }
        let now = SimTime::from_secs(23 * 3_600);
        assert!((est.popularity(&uri, now).value() - 0.1).abs() < 1e-12);
        // A second node doubles the estimate; repeating it again does not.
        est.record_request(&uri, NodeId::new(5), now);
        est.record_request(&uri, NodeId::new(5), now);
        assert!((est.popularity(&uri, now).value() - 0.2).abs() < 1e-12);
        // The duplicates are retained as raw events (all four instants)…
        assert_eq!(est.requests[&uri].len(), 6);
        // …so when the window slides past the early ones, the same node
        // still counts through its later requests.
        let next_day = SimTime::from_secs(30 * 3_600);
        assert!((est.popularity(&uri, next_day).value() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn prune_is_idempotent_and_preserves_answers() {
        let mut est = PopularityEstimator::new(10);
        let uris: Vec<Uri> = (0..3)
            .map(|i| Uri::new(format!("mbt://f/{i}")).unwrap())
            .collect();
        for (i, uri) in uris.iter().enumerate() {
            for node in 0..=i as u32 {
                // Requests spread over 40 hours: some inside, some outside
                // the window at `now`.
                est.record_request(
                    uri,
                    NodeId::new(node),
                    SimTime::from_secs(node as u64 * 13 * 3_600),
                );
            }
        }
        let now = SimTime::from_secs(40 * 3_600);
        let before: Vec<f64> = uris
            .iter()
            .map(|u| est.popularity(u, now).value())
            .collect();

        est.prune(now);
        let first: std::collections::BTreeMap<Uri, Vec<(SimTime, NodeId)>> = est
            .requests
            .iter()
            .map(|(u, q)| (u.clone(), q.iter().copied().collect()))
            .collect();
        // Pruning never changes what the estimator answers at `now`…
        let after: Vec<f64> = uris
            .iter()
            .map(|u| est.popularity(u, now).value())
            .collect();
        assert_eq!(before, after, "prune changed live estimates");

        // …and pruning again at the same instant is a no-op, bit for bit.
        est.prune(now);
        let second: std::collections::BTreeMap<Uri, Vec<(SimTime, NodeId)>> = est
            .requests
            .iter()
            .map(|(u, q)| (u.clone(), q.iter().copied().collect()))
            .collect();
        assert_eq!(first, second, "prune is not idempotent");
    }

    #[test]
    fn cmp_popularity_total_order() {
        use std::cmp::Ordering;
        assert_eq!(
            cmp_popularity(Popularity::new(0.2), Popularity::new(0.8)),
            Ordering::Less
        );
        assert_eq!(
            cmp_popularity(Popularity::new(0.5), Popularity::new(0.5)),
            Ordering::Equal
        );
    }

    #[test]
    fn lambda_for_files_per_day_is_half_n() {
        assert_eq!(lambda_for_files_per_day(50), 25.0);
        assert_eq!(lambda_for_files_per_day(0), 0.5, "clamped to n=1");
    }
}
