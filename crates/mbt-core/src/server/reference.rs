//! The pre-sharding single-registry server, kept verbatim as the
//! equivalence oracle.
//!
//! [`ReferenceServer`] is the original linear implementation of the central
//! metadata server: one `BTreeMap` registry, one [`InvertedIndex`], and a
//! full-keyspace popularity refresh. It is deliberately simple and obviously
//! correct; the property suite (`tests/server_equivalence.rs`) replays
//! arbitrary operation sequences against it and the sharded
//! [`ShardedMetadataServer`](super::ShardedMetadataServer) and requires
//! byte-identical answers for every shard count.
//!
//! Do not optimise this type — its value is that it never changes.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use dtn_trace::{NodeId, SimTime};

use crate::keyword::InvertedIndex;
use crate::metadata::Metadata;
use crate::popularity::{cmp_popularity, Popularity, PopularityEstimator};
use crate::query::Query;
use crate::uri::Uri;

/// The reference single-registry metadata server (test oracle).
///
/// # Example
///
/// ```
/// use mbt_core::server::ReferenceServer;
/// use mbt_core::{Metadata, Popularity, Query, Uri};
///
/// let mut server = ReferenceServer::new(10);
/// let uri = Uri::new("mbt://fox/news-1")?;
/// server.publish(
///     Metadata::builder("FOX Evening News", "FOX", uri).build(),
///     Popularity::new(0.3),
/// );
/// assert_eq!(server.search(&Query::new("evening news")?, 5).len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReferenceServer {
    metadata: BTreeMap<Uri, Metadata>,
    index: InvertedIndex,
    popularity: BTreeMap<Uri, Popularity>,
    estimator: PopularityEstimator,
}

impl ReferenceServer {
    /// Creates a server; `internet_population` is the number of
    /// Internet-access nodes, used to normalize estimated popularity.
    pub fn new(internet_population: u32) -> Self {
        ReferenceServer {
            metadata: BTreeMap::new(),
            index: InvertedIndex::new(),
            popularity: BTreeMap::new(),
            estimator: PopularityEstimator::new(internet_population),
        }
    }

    /// Publishes metadata with an assigned popularity. Re-publishing a URI
    /// replaces the record.
    pub fn publish(&mut self, metadata: Metadata, popularity: Popularity) {
        let uri = metadata.uri().clone();
        self.index.remove(&uri);
        self.index.insert_tokens(&uri, metadata.token_set().iter());
        self.popularity.insert(uri.clone(), popularity);
        self.metadata.insert(uri, metadata);
    }

    /// Number of published records.
    pub fn len(&self) -> usize {
        self.metadata.len()
    }

    /// True if nothing is published.
    pub fn is_empty(&self) -> bool {
        self.metadata.is_empty()
    }

    /// Looks up metadata by URI.
    pub fn metadata_of(&self, uri: &Uri) -> Option<&Metadata> {
        self.metadata.get(uri)
    }

    /// The assigned popularity of `uri` (0 if unknown).
    pub fn popularity_of(&self, uri: &Uri) -> Popularity {
        self.popularity.get(uri).copied().unwrap_or(Popularity::MIN)
    }

    /// Updates the assigned popularity of a known URI.
    pub fn set_popularity(&mut self, uri: &Uri, popularity: Popularity) {
        if self.metadata.contains_key(uri) {
            self.popularity.insert(uri.clone(), popularity);
        }
    }

    /// Best-matched metadata for `query`, at most `limit`, ranked by match
    /// count then popularity then URI (all descending except URI).
    pub fn search(&self, query: &Query, limit: usize) -> Vec<&Metadata> {
        let mut ranked: Vec<(&Uri, usize)> = self
            .index
            .lookup_ranked(query.tokens())
            .into_iter()
            .filter(|(uri, _)| {
                self.metadata
                    .get(uri)
                    .is_some_and(|m| m.matches_query(query))
            })
            .map(|(uri, hits)| {
                let uri_ref = self.metadata.get_key_value(&uri).expect("checked above").0;
                (uri_ref, hits)
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| self.cmp_by_popularity(b.0, a.0))
                .then_with(|| a.0.cmp(b.0))
        });
        ranked
            .into_iter()
            .take(limit)
            .map(|(uri, _)| &self.metadata[uri])
            .collect()
    }

    /// The single best match for `query`, if any.
    pub fn best_match(&self, query: &Query) -> Option<&Metadata> {
        self.search(query, 1).into_iter().next()
    }

    /// The `limit` most popular unexpired metadata at `now`.
    pub fn most_popular(&self, limit: usize, now: SimTime) -> Vec<&Metadata> {
        let mut all: Vec<&Uri> = self
            .metadata
            .iter()
            .filter(|(_, m)| !m.is_expired(now))
            .map(|(u, _)| u)
            .collect();
        all.sort_by(|a, b| self.cmp_by_popularity(b, a).then_with(|| a.cmp(b)));
        all.into_iter()
            .take(limit)
            .map(|u| &self.metadata[u])
            .collect()
    }

    /// Records a download request (feeds the 24-hour popularity estimator).
    pub fn record_request(&mut self, uri: &Uri, node: NodeId, now: SimTime) {
        self.estimator.record_request(uri, node, now);
    }

    /// The estimated popularity from the 24-hour request window.
    pub fn estimated_popularity(&self, uri: &Uri, now: SimTime) -> Popularity {
        self.estimator.popularity(uri, now)
    }

    /// Refreshes every assigned popularity from the estimator (the paper's
    /// daily popularity update) — via the original full-keyspace clone.
    pub fn refresh_popularities(&mut self, now: SimTime) {
        let uris: Vec<Uri> = self.metadata.keys().cloned().collect();
        for uri in uris {
            let p = self.estimator.popularity(&uri, now);
            self.popularity.insert(uri, p);
        }
        self.estimator.prune(now);
    }

    /// Removes metadata expired at `now`; returns how many were dropped.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let expired: Vec<Uri> = self
            .metadata
            .iter()
            .filter(|(_, m)| m.is_expired(now))
            .map(|(u, _)| u.clone())
            .collect();
        for uri in &expired {
            self.metadata.remove(uri);
            self.index.remove(uri);
            self.popularity.remove(uri);
        }
        expired.len()
    }

    /// Iterates over all published metadata in URI order.
    pub fn iter(&self) -> impl Iterator<Item = &Metadata> {
        self.metadata.values()
    }

    fn cmp_by_popularity(&self, a: &Uri, b: &Uri) -> Ordering {
        cmp_popularity(self.popularity_of(a), self.popularity_of(b))
    }
}
