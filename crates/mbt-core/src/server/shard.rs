//! Partitioning primitives for the sharded metadata server.
//!
//! Two independent hash partitions cover the server's state, following the
//! token-sharded keyword indexes and ID-space partitioning of Grunthal's
//! *Efficient Indexing of the BitTorrent DHT*:
//!
//! - the **keyword index** is split by token hash: a token's full posting
//!   list lives in exactly one `TokenShard`, so a query fans out to at most
//!   one shard per query token;
//! - the **URI space** (metadata records and their popularities) is
//!   ring-partitioned by URI hash: each `UriShard` owns a contiguous arc of
//!   the `u64` hash ring, so record lookups, expiry passes, and popularity
//!   refreshes are independent per-shard walks.
//!
//! Both use the same stable FNV-1a hash — deterministic across processes and
//! toolchains, unlike `std`'s seeded `RandomState` — so a shard layout is a
//! pure function of `(key, shard count)` and committed bench digests never
//! drift.
//!
//! The query core (`ranked_matches`, `top_popular`) operates on slices of
//! `Arc`-held shards so the mutable [`ShardedMetadataServer`] and its
//! immutable [`ServerSnapshot`] share one implementation — and one proof of
//! equivalence with the linear reference scan.
//!
//! [`ShardedMetadataServer`]: super::ShardedMetadataServer
//! [`ServerSnapshot`]: super::ServerSnapshot

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use dtn_trace::SimTime;

use crate::metadata::Metadata;
use crate::popularity::{cmp_popularity, Popularity};
use crate::query::Query;
use crate::uri::Uri;

/// Stable 64-bit hash of `bytes`: FNV-1a with a splitmix64 finalizer.
///
/// Used for every shard-placement decision; must never change, or committed
/// bench baselines and the golden equivalence of re-opened servers would
/// silently re-partition. The finalizer matters: `ring_index` partitions
/// on the *high* bits, which raw FNV-1a barely stirs for short or
/// near-constant keys.
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Maps a hash onto one of `shards` equal arcs of the `u64` ring.
///
/// The multiply-shift form `(hash * shards) >> 64` assigns shard `i` the
/// interval `[i·2⁶⁴/n, (i+1)·2⁶⁴/n)` — the contiguous ring ranges of a
/// consistent-hashing layout, rather than the scattered residue classes of
/// `hash % n`.
fn ring_index(hash: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    ((u128::from(hash) * shards as u128) >> 64) as usize
}

/// The token shard owning `token`'s posting list.
pub fn shard_of_token(token: &str, shards: usize) -> usize {
    ring_index(stable_hash(token.as_bytes()), shards)
}

/// The URI shard owning `uri`'s metadata record and popularity.
pub fn shard_of_uri(uri: &Uri, shards: usize) -> usize {
    ring_index(stable_hash(uri.as_str().as_bytes()), shards)
}

/// One record of the URI space: the published metadata and its assigned
/// popularity, stored together so a popularity refresh is an in-place value
/// walk that never touches (or re-interns) the key set.
#[derive(Debug, Clone)]
pub(crate) struct UriRecord {
    pub metadata: Metadata,
    pub popularity: Popularity,
}

/// One arc of the URI ring: every record whose URI hashes into this shard.
#[derive(Debug, Clone, Default)]
pub(crate) struct UriShard {
    pub records: BTreeMap<Uri, UriRecord>,
}

/// One slice of the keyword index: the full posting lists of every token
/// that hashes into this shard.
///
/// Unlike [`InvertedIndex`](crate::keyword::InvertedIndex) there is no
/// reverse `tokens_of` map — the publisher removes a record's postings from
/// the record's own cached [`TokenSet`](crate::keyword::TokenSet), so each
/// token string is stored exactly once per shard.
#[derive(Debug, Clone, Default)]
pub(crate) struct TokenShard {
    pub postings: BTreeMap<Box<str>, BTreeSet<Uri>>,
}

impl TokenShard {
    /// Adds `uri` to `token`'s posting list.
    pub fn insert_posting(&mut self, token: &str, uri: &Uri) {
        match self.postings.get_mut(token) {
            Some(set) => {
                set.insert(uri.clone());
            }
            None => {
                self.postings
                    .insert(Box::from(token), BTreeSet::from([uri.clone()]));
            }
        }
    }

    /// Removes `uri` from `token`'s posting list, dropping the list when it
    /// empties.
    pub fn remove_posting(&mut self, token: &str, uri: &Uri) {
        if let Some(set) = self.postings.get_mut(token) {
            set.remove(uri);
            if set.is_empty() {
                self.postings.remove(token);
            }
        }
    }
}

/// Best-matched metadata for `query` across all shards, at most `limit`.
///
/// Accumulates per-URI match counts from each query token's (single) owning
/// token shard, filters to records containing **every** query token, and
/// rank-merges with the exact deterministic ordering of the reference linear
/// scan: match count descending, then popularity descending, then URI
/// ascending. Accumulation order cannot leak into the result — the final
/// comparator is total (URIs are unique) — so a `HashMap` scratch is safe.
pub(crate) fn ranked_matches<'a>(
    uri_shards: &'a [Arc<UriShard>],
    token_shards: &'a [Arc<TokenShard>],
    query: &Query,
    limit: usize,
) -> Vec<&'a Metadata> {
    let mut counts: HashMap<&'a Uri, usize> = HashMap::new();
    for token in query.tokens() {
        let shard = &token_shards[shard_of_token(token, token_shards.len())];
        if let Some(postings) = shard.postings.get(token.as_str()) {
            for uri in postings {
                *counts.entry(uri).or_insert(0) += 1;
            }
        }
    }
    let mut ranked: Vec<(&'a Uri, &'a UriRecord, usize)> = counts
        .into_iter()
        .filter_map(|(uri, hits)| {
            let shard = &uri_shards[shard_of_uri(uri, uri_shards.len())];
            let record = shard.records.get(uri)?;
            record
                .metadata
                .matches_query(query)
                .then_some((uri, record, hits))
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.2.cmp(&a.2)
            .then_with(|| cmp_popularity(b.1.popularity, a.1.popularity))
            .then_with(|| a.0.cmp(b.0))
    });
    ranked
        .into_iter()
        .take(limit)
        .map(|(_, record, _)| &record.metadata)
        .collect()
}

/// The `limit` most popular unexpired records at `now`.
///
/// Each URI shard contributes its own top `limit` (popularity descending,
/// URI ascending); the per-shard winners are rank-merged under the same
/// total order, which provably equals the reference full sort truncated to
/// `limit`.
pub(crate) fn top_popular<'a>(
    uri_shards: &'a [Arc<UriShard>],
    limit: usize,
    now: SimTime,
) -> Vec<&'a Metadata> {
    let by_rank = |a: &(&'a Uri, &'a UriRecord), b: &(&'a Uri, &'a UriRecord)| {
        cmp_popularity(b.1.popularity, a.1.popularity).then_with(|| a.0.cmp(b.0))
    };
    let mut merged: Vec<(&'a Uri, &'a UriRecord)> = Vec::new();
    for shard in uri_shards {
        let mut local: Vec<(&'a Uri, &'a UriRecord)> = shard
            .records
            .iter()
            .filter(|(_, r)| !r.metadata.is_expired(now))
            .collect();
        local.sort_by(by_rank);
        local.truncate(limit);
        merged.extend(local);
    }
    merged.sort_by(by_rank);
    merged
        .into_iter()
        .take(limit)
        .map(|(_, record)| &record.metadata)
        .collect()
}

/// All records across shards in global URI order (the public iteration
/// contract inherited from the reference registry).
pub(crate) fn iter_uri_order<'a>(
    uri_shards: &'a [Arc<UriShard>],
) -> impl Iterator<Item = &'a Metadata> {
    let mut all: Vec<(&'a Uri, &'a Metadata)> = uri_shards
        .iter()
        .flat_map(|s| s.records.iter().map(|(u, r)| (u, &r.metadata)))
        .collect();
    all.sort_by(|a, b| a.0.cmp(b.0));
    all.into_iter().map(|(_, m)| m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_hash_is_fixed() {
        // Pinned values: a silent hash change would re-partition every
        // committed digest.
        assert_eq!(stable_hash(b""), 0xf52a_15e9_a9b5_e89b);
        assert_eq!(stable_hash(b"fox"), stable_hash(b"fox"));
        assert_ne!(stable_hash(b"fox"), stable_hash(b"fax"));
    }

    #[test]
    fn ring_index_covers_all_shards_and_stays_in_range() {
        for shards in [1usize, 2, 7, 16] {
            let mut seen = vec![false; shards];
            for i in 0..10_000u64 {
                let idx = ring_index(stable_hash(&i.to_be_bytes()), shards);
                assert!(idx < shards);
                seen[idx] = true;
            }
            assert!(seen.iter().all(|&s| s), "{shards} shards not all hit");
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        assert_eq!(shard_of_token("anything", 1), 0);
        assert_eq!(shard_of_uri(&Uri::new("mbt://x").unwrap(), 1), 0);
    }

    #[test]
    fn posting_lists_insert_and_remove() {
        let mut shard = TokenShard::default();
        let a = Uri::new("mbt://a").unwrap();
        let b = Uri::new("mbt://b").unwrap();
        shard.insert_posting("fox", &a);
        shard.insert_posting("fox", &b);
        assert_eq!(shard.postings["fox"].len(), 2);
        shard.remove_posting("fox", &a);
        assert_eq!(shard.postings["fox"].len(), 1);
        shard.remove_posting("fox", &b);
        assert!(!shard.postings.contains_key("fox"), "empty list dropped");
        shard.remove_posting("gone", &a); // no-op on absent token
    }
}
