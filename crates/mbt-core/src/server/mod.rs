//! The central metadata server on the Internet.
//!
//! In a hybrid DTN the Internet is the sole source of files; metadata "can be
//! placed on different servers than those of their files" and popularities
//! "can be maintained by a central metadata server" (paper §III, §IV). When a
//! node connects to the Internet it sends its query strings to the server,
//! which returns the best-matched metadata; the server also tracks request
//! popularity over a 24-hour window.
//!
//! The module tree separates the production server from its proof machinery:
//!
//! - [`shard`] — the partitioning primitives: stable FNV-1a placement of
//!   tokens and URIs onto `N` ring shards, and the shared rank-merge query
//!   core both the live server and its snapshots call;
//! - [`ShardedMetadataServer`] — the mutable server itself, every shard
//!   behind a copy-on-write `Arc`;
//! - [`ServerSnapshot`] — a frozen, lock-free view for concurrent readers;
//! - [`ReferenceServer`] — the original single-registry implementation,
//!   kept verbatim as the equivalence oracle for the property suite.
//!
//! [`MetadataServer`] remains the name the rest of the system uses; it is
//! the sharded server, which with the default single shard is byte-identical
//! to the reference.

pub mod shard;

mod reference;
mod sharded;
mod snapshot;

pub use reference::ReferenceServer;
pub use sharded::ShardedMetadataServer;
pub use snapshot::ServerSnapshot;

/// The system-wide name for the central metadata server.
///
/// Constructed via [`ShardedMetadataServer::new`] everywhere the simulation
/// needs one; `new` picks a single shard, which is byte-identical to the
/// pre-sharding registry.
pub type MetadataServer = ShardedMetadataServer;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::Metadata;
    use crate::popularity::Popularity;
    use crate::query::Query;
    use crate::uri::Uri;
    use dtn_trace::{NodeId, SimDuration, SimTime};

    fn meta(name: &str, uri: &str) -> Metadata {
        Metadata::builder(name, "FOX", Uri::new(uri).unwrap()).build()
    }

    fn server_with(entries: &[(&str, &str, f64)]) -> MetadataServer {
        let mut s = MetadataServer::new(10);
        for &(name, uri, pop) in entries {
            s.publish(meta(name, uri), Popularity::new(pop));
        }
        s
    }

    fn sharded_with(shards: usize, entries: &[(&str, &str, f64)]) -> MetadataServer {
        let mut s = MetadataServer::with_shards(10, shards);
        for &(name, uri, pop) in entries {
            s.publish(meta(name, uri), Popularity::new(pop));
        }
        s
    }

    #[test]
    fn publish_and_lookup() {
        let s = server_with(&[("FOX News", "mbt://a", 0.5)]);
        assert_eq!(s.len(), 1);
        let uri = Uri::new("mbt://a").unwrap();
        assert_eq!(s.metadata_of(&uri).unwrap().name(), "FOX News");
        assert_eq!(s.popularity_of(&uri).value(), 0.5);
    }

    #[test]
    fn search_ranks_by_match_then_popularity() {
        for shards in [1, 7] {
            let s = sharded_with(
                shards,
                &[
                    ("fox news tonight", "mbt://a", 0.1),
                    ("fox news", "mbt://b", 0.9),
                    ("fox comedy", "mbt://c", 0.99),
                ],
            );
            let q = Query::new("fox news").unwrap();
            let hits = s.search(&q, 10);
            // Both a and b match fully (AND semantics filter others out).
            assert_eq!(hits.len(), 2);
            // Same match count (2 tokens) → popularity decides: b first.
            assert_eq!(hits[0].uri().as_str(), "mbt://b");
        }
    }

    #[test]
    fn search_respects_limit_and_best_match() {
        let s = server_with(&[("news one", "mbt://a", 0.2), ("news two", "mbt://b", 0.8)]);
        let q = Query::new("news").unwrap();
        assert_eq!(s.search(&q, 1).len(), 1);
        assert_eq!(s.best_match(&q).unwrap().uri().as_str(), "mbt://b");
    }

    #[test]
    fn search_requires_all_tokens() {
        for shards in [1, 16] {
            let s = sharded_with(shards, &[("fox comedy", "mbt://c", 0.9)]);
            assert!(s.search(&Query::new("fox news").unwrap(), 10).is_empty());
        }
    }

    #[test]
    fn most_popular_sorted_desc() {
        for shards in [1, 2, 7] {
            let s = sharded_with(
                shards,
                &[
                    ("a", "mbt://a", 0.2),
                    ("b", "mbt://b", 0.9),
                    ("c", "mbt://c", 0.5),
                ],
            );
            let top: Vec<&str> = s
                .most_popular(2, SimTime::ZERO)
                .iter()
                .map(|m| m.uri().as_str())
                .collect();
            assert_eq!(top, vec!["mbt://b", "mbt://c"]);
        }
    }

    #[test]
    fn most_popular_skips_expired() {
        let mut s = MetadataServer::new(10);
        let m = Metadata::builder("old", "FOX", Uri::new("mbt://old").unwrap())
            .ttl(SimDuration::from_secs(10))
            .build();
        s.publish(m, Popularity::MAX);
        assert!(s.most_popular(5, SimTime::from_secs(20)).is_empty());
    }

    #[test]
    fn expire_removes_records() {
        for shards in [1, 7] {
            let mut s = MetadataServer::with_shards(10, shards);
            let m = Metadata::builder("old", "FOX", Uri::new("mbt://old").unwrap())
                .ttl(SimDuration::from_secs(10))
                .build();
            s.publish(m, Popularity::MAX);
            s.publish(meta("fresh", "mbt://fresh"), Popularity::MAX);
            assert_eq!(s.expire(SimTime::from_secs(20)), 1);
            assert_eq!(s.len(), 1);
            assert!(s.search(&Query::new("old").unwrap(), 5).is_empty());
        }
    }

    #[test]
    fn estimator_integration() {
        let mut s = server_with(&[("a", "mbt://a", 0.0)]);
        let uri = Uri::new("mbt://a").unwrap();
        let t = SimTime::from_secs(100);
        s.record_request(&uri, NodeId::new(0), t);
        s.record_request(&uri, NodeId::new(1), t);
        assert!((s.estimated_popularity(&uri, t).value() - 0.2).abs() < 1e-12);
        s.refresh_popularities(t);
        assert!((s.popularity_of(&uri).value() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn republish_replaces() {
        for shards in [1, 7] {
            let mut s = sharded_with(shards, &[("first title", "mbt://a", 0.1)]);
            s.publish(meta("second title", "mbt://a"), Popularity::new(0.7));
            assert_eq!(s.len(), 1);
            assert!(s.search(&Query::new("first").unwrap(), 5).is_empty());
            assert_eq!(s.search(&Query::new("second").unwrap(), 5).len(), 1);
        }
    }

    #[test]
    fn set_popularity_only_for_known() {
        let mut s = server_with(&[("a", "mbt://a", 0.1)]);
        let unknown = Uri::new("mbt://nope").unwrap();
        s.set_popularity(&unknown, Popularity::MAX);
        assert_eq!(s.popularity_of(&unknown), Popularity::MIN);
    }

    #[test]
    fn iter_covers_all() {
        let s = server_with(&[("a", "mbt://a", 0.1), ("b", "mbt://b", 0.2)]);
        assert_eq!(s.iter().count(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn iter_is_uri_ordered_across_shards() {
        let s = sharded_with(
            7,
            &[
                ("c", "mbt://c", 0.1),
                ("a", "mbt://a", 0.2),
                ("b", "mbt://b", 0.3),
            ],
        );
        let order: Vec<&str> = s.iter().map(|m| m.uri().as_str()).collect();
        assert_eq!(order, vec!["mbt://a", "mbt://b", "mbt://c"]);
    }

    #[test]
    fn snapshot_is_frozen_while_writer_mutates() {
        let mut s = sharded_with(
            4,
            &[("fox news", "mbt://a", 0.4), ("fox talk", "mbt://b", 0.6)],
        );
        let frozen = s.snapshot();
        let q = Query::new("fox").unwrap();

        // Writer mutates every shard class after the snapshot was taken.
        s.publish(meta("fox extra", "mbt://c"), Popularity::new(0.9));
        s.set_popularity(&Uri::new("mbt://a").unwrap(), Popularity::MAX);
        s.expire(SimTime::from_days(9999));

        assert_eq!(frozen.len(), 2);
        let hits = frozen.search(&q, 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].uri().as_str(), "mbt://b"); // pre-mutation order
        assert_eq!(
            frozen.popularity_of(&Uri::new("mbt://a").unwrap()),
            Popularity::new(0.4)
        );
        assert_eq!(
            frozen.best_match(&q).map(|m| m.uri().as_str().to_owned()),
            Some("mbt://b".to_owned())
        );
        assert_eq!(frozen.most_popular(1, SimTime::ZERO).len(), 1);
        assert!(frozen.metadata_of(&Uri::new("mbt://c").unwrap()).is_none());
        assert!(!frozen.is_empty());
    }

    #[test]
    fn shard_count_reports_partitioning() {
        assert_eq!(MetadataServer::new(10).shard_count(), 1);
        assert_eq!(MetadataServer::with_shards(10, 7).shard_count(), 7);
        assert_eq!(MetadataServer::with_shards(10, 0).shard_count(), 1);
    }
}
