//! The production sharded metadata server.

use std::sync::Arc;

use dtn_trace::{NodeId, SimTime};

use crate::metadata::Metadata;
use crate::popularity::{Popularity, PopularityEstimator};
use crate::query::Query;
use crate::uri::Uri;

use super::shard::{
    iter_uri_order, ranked_matches, shard_of_token, shard_of_uri, top_popular, TokenShard,
    UriRecord, UriShard,
};
use super::snapshot::ServerSnapshot;

/// The central metadata server, sharded for heavy query traffic.
///
/// Holds every published metadata record, a keyword index over it, and the
/// authoritative popularity of each file — exactly the role of the paper's
/// Internet-side server (§III, §IV) — but split across `N` shards: the
/// keyword index by token hash, the URI/popularity space by URI hash on a
/// ring (see [`super::shard`]). With one shard (the [`new`](Self::new)
/// default) it is byte-identical to the original single-registry server;
/// with more, every answer is still byte-identical — the property suite
/// proves it — while publishes, expiries, and popularity refreshes touch
/// only the shards they must.
///
/// Every shard lives behind an [`Arc`] under the copy-on-write discipline of
/// the node-local stores: [`snapshot`](Self::snapshot) hands out a
/// consistent, immutable [`ServerSnapshot`] for the price of `N` reference
/// counts, and a concurrent query storm reads snapshots lock-free while the
/// writer mutates (and thereby un-shares) its own copies.
///
/// # Example
///
/// ```
/// use mbt_core::{Metadata, MetadataServer, Popularity, Query, Uri};
///
/// let mut server = MetadataServer::new(10);
/// let uri = Uri::new("mbt://fox/news-1")?;
/// let meta = Metadata::builder("FOX Evening News", "FOX", uri).build();
/// server.publish(meta, Popularity::new(0.3));
///
/// let hits = server.search(&Query::new("evening news")?, 5);
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].name(), "FOX Evening News");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ShardedMetadataServer {
    uri_shards: Vec<Arc<UriShard>>,
    token_shards: Vec<Arc<TokenShard>>,
    estimator: PopularityEstimator,
    /// Total record count, maintained incrementally so `len` never walks
    /// the shards.
    len: usize,
}

impl ShardedMetadataServer {
    /// Creates an unsharded (`N = 1`) server; `internet_population` is the
    /// number of Internet-access nodes, used to normalize estimated
    /// popularity.
    pub fn new(internet_population: u32) -> Self {
        Self::with_shards(internet_population, 1)
    }

    /// Creates a server partitioned over `shards` shards (clamped to at
    /// least 1). Every query answer is independent of the shard count.
    pub fn with_shards(internet_population: u32, shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedMetadataServer {
            uri_shards: (0..shards).map(|_| Arc::default()).collect(),
            token_shards: (0..shards).map(|_| Arc::default()).collect(),
            estimator: PopularityEstimator::new(internet_population),
            len: 0,
        }
    }

    /// The number of shards the key spaces are partitioned over.
    pub fn shard_count(&self) -> usize {
        self.uri_shards.len()
    }

    /// Publishes metadata with an assigned popularity (the workload's ground
    /// truth). Re-publishing a URI replaces the record.
    pub fn publish(&mut self, metadata: Metadata, popularity: Popularity) {
        let uri = metadata.uri().clone();
        let shards = self.token_shards.len();
        let uri_shard = Arc::make_mut(&mut self.uri_shards[shard_of_uri(&uri, shards)]);
        if let Some(old) = uri_shard.records.get(&uri) {
            // Replacement: drop the old record's postings first, from its
            // own cached token set.
            let old_tokens = old.metadata.token_set().clone();
            for token in old_tokens.iter() {
                Arc::make_mut(&mut self.token_shards[shard_of_token(token, shards)])
                    .remove_posting(token, &uri);
            }
        } else {
            self.len += 1;
        }
        for token in metadata.token_set().iter() {
            Arc::make_mut(&mut self.token_shards[shard_of_token(token, shards)])
                .insert_posting(token, &uri);
        }
        uri_shard.records.insert(
            uri,
            UriRecord {
                metadata,
                popularity,
            },
        );
    }

    /// Number of published records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is published.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up metadata by URI.
    pub fn metadata_of(&self, uri: &Uri) -> Option<&Metadata> {
        self.uri_shards[shard_of_uri(uri, self.uri_shards.len())]
            .records
            .get(uri)
            .map(|r| &r.metadata)
    }

    /// The assigned popularity of `uri` (0 if unknown).
    pub fn popularity_of(&self, uri: &Uri) -> Popularity {
        self.uri_shards[shard_of_uri(uri, self.uri_shards.len())]
            .records
            .get(uri)
            .map_or(Popularity::MIN, |r| r.popularity)
    }

    /// Updates the assigned popularity (e.g. daily refresh from the
    /// estimator). URIs with no published record are ignored.
    pub fn set_popularity(&mut self, uri: &Uri, popularity: Popularity) {
        let idx = shard_of_uri(uri, self.uri_shards.len());
        if self.uri_shards[idx].records.contains_key(uri) {
            let shard = Arc::make_mut(&mut self.uri_shards[idx]);
            if let Some(record) = shard.records.get_mut(uri) {
                record.popularity = popularity;
            }
        }
    }

    /// Best-matched metadata for `query`, at most `limit`, ranked by match
    /// count then popularity then URI (all descending except URI).
    pub fn search(&self, query: &Query, limit: usize) -> Vec<&Metadata> {
        ranked_matches(&self.uri_shards, &self.token_shards, query, limit)
    }

    /// The single best match for `query`, if any.
    pub fn best_match(&self, query: &Query) -> Option<&Metadata> {
        self.search(query, 1).into_iter().next()
    }

    /// The `limit` most popular unexpired metadata at `now` (the push phase
    /// of metadata distribution).
    pub fn most_popular(&self, limit: usize, now: SimTime) -> Vec<&Metadata> {
        top_popular(&self.uri_shards, limit, now)
    }

    /// Records a download request (feeds the 24-hour popularity estimator).
    pub fn record_request(&mut self, uri: &Uri, node: NodeId, now: SimTime) {
        self.estimator.record_request(uri, node, now);
    }

    /// The estimated popularity from the 24-hour request window.
    pub fn estimated_popularity(&self, uri: &Uri, now: SimTime) -> Popularity {
        self.estimator.popularity(uri, now)
    }

    /// Refreshes every assigned popularity from the estimator (the paper's
    /// daily popularity update).
    ///
    /// A per-shard in-place value walk: no clone of the URI keyspace, no
    /// re-interned keys, no allocation for records the estimator has never
    /// seen (`tests/refresh_alloc.rs` pins this).
    pub fn refresh_popularities(&mut self, now: SimTime) {
        let ShardedMetadataServer {
            uri_shards,
            estimator,
            ..
        } = self;
        for shard in uri_shards {
            let shard = Arc::make_mut(shard);
            for (uri, record) in shard.records.iter_mut() {
                record.popularity = estimator.popularity(uri, now);
            }
        }
        estimator.prune(now);
    }

    /// Removes metadata expired at `now`; returns how many were dropped.
    ///
    /// A per-shard pass: only expired URIs are ever collected, and each
    /// shard is copied (if shared) at most once.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let shards = self.token_shards.len();
        let mut dropped = 0usize;
        for idx in 0..self.uri_shards.len() {
            if !self.uri_shards[idx]
                .records
                .values()
                .any(|r| r.metadata.is_expired(now))
            {
                continue; // nothing expired: leave the shard shared
            }
            let shard = Arc::make_mut(&mut self.uri_shards[idx]);
            let expired: Vec<Uri> = shard
                .records
                .iter()
                .filter(|(_, r)| r.metadata.is_expired(now))
                .map(|(u, _)| u.clone())
                .collect();
            for uri in &expired {
                let record = shard.records.remove(uri).expect("collected above");
                for token in record.metadata.token_set().iter() {
                    Arc::make_mut(&mut self.token_shards[shard_of_token(token, shards)])
                        .remove_posting(token, uri);
                }
            }
            dropped += expired.len();
        }
        self.len -= dropped;
        dropped
    }

    /// Iterates over all published metadata in URI order (rank-merged
    /// across shards).
    pub fn iter(&self) -> impl Iterator<Item = &Metadata> {
        iter_uri_order(&self.uri_shards)
    }

    /// A consistent, immutable view of the current shard set for the
    /// concurrent read path: `N` reference-count bumps, no copying.
    ///
    /// The snapshot keeps answering from the state at the time of the call
    /// while this server keeps mutating — [`Arc::make_mut`] un-shares each
    /// shard the writer touches, so a reader can never observe a torn
    /// in-between state.
    pub fn snapshot(&self) -> ServerSnapshot {
        ServerSnapshot::new(self.uri_shards.clone(), self.token_shards.clone())
    }
}
