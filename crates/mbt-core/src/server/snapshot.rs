//! Immutable, shareable point-in-time views of the sharded server.

use std::sync::Arc;

use dtn_trace::SimTime;

use crate::metadata::Metadata;
use crate::popularity::Popularity;
use crate::query::Query;
use crate::uri::Uri;

use super::shard::{ranked_matches, shard_of_uri, top_popular, TokenShard, UriShard};

/// A consistent, immutable view of a
/// [`ShardedMetadataServer`](super::ShardedMetadataServer) at the moment
/// [`snapshot`](super::ShardedMetadataServer::snapshot) was called.
///
/// Taking one costs `N` reference-count bumps; no shard data is copied. The
/// snapshot is `Send + Sync` and answers the whole read API lock-free, so a
/// rayon query storm can fan out over clones of it while the originating
/// server keeps publishing — the writer's [`Arc::make_mut`] copy-on-write
/// un-shares whatever it touches, leaving every outstanding snapshot frozen
/// at its own instant. Queries return owned [`Metadata`] (an `Arc`-backed
/// cheap clone) rather than borrows, so results outlive the snapshot.
///
/// # Example
///
/// ```
/// use mbt_core::{Metadata, MetadataServer, Popularity, Query, Uri};
///
/// let mut server = MetadataServer::with_shards(10, 4);
/// let uri = Uri::new("mbt://fox/news-1")?;
/// server.publish(
///     Metadata::builder("FOX Evening News", "FOX", uri.clone()).build(),
///     Popularity::new(0.3),
/// );
///
/// let frozen = server.snapshot();
/// server.expire(dtn_trace::SimTime::from_days(400)); // writer moves on…
/// assert_eq!(frozen.len(), 1); // …the snapshot does not
/// assert_eq!(frozen.best_match(&Query::new("evening news")?).unwrap().uri(), &uri);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ServerSnapshot {
    uri_shards: Vec<Arc<UriShard>>,
    token_shards: Vec<Arc<TokenShard>>,
}

impl ServerSnapshot {
    pub(crate) fn new(uri_shards: Vec<Arc<UriShard>>, token_shards: Vec<Arc<TokenShard>>) -> Self {
        ServerSnapshot {
            uri_shards,
            token_shards,
        }
    }

    /// Number of records in the snapshot.
    pub fn len(&self) -> usize {
        self.uri_shards.iter().map(|s| s.records.len()).sum()
    }

    /// True if the snapshot holds no records.
    pub fn is_empty(&self) -> bool {
        self.uri_shards.iter().all(|s| s.records.is_empty())
    }

    /// Looks up metadata by URI.
    pub fn metadata_of(&self, uri: &Uri) -> Option<Metadata> {
        self.uri_shards[shard_of_uri(uri, self.uri_shards.len())]
            .records
            .get(uri)
            .map(|r| r.metadata.clone())
    }

    /// The assigned popularity of `uri` (0 if unknown).
    pub fn popularity_of(&self, uri: &Uri) -> Popularity {
        self.uri_shards[shard_of_uri(uri, self.uri_shards.len())]
            .records
            .get(uri)
            .map_or(Popularity::MIN, |r| r.popularity)
    }

    /// Best-matched metadata for `query`, at most `limit`, in exactly the
    /// order the live server would return.
    pub fn search(&self, query: &Query, limit: usize) -> Vec<Metadata> {
        ranked_matches(&self.uri_shards, &self.token_shards, query, limit)
            .into_iter()
            .cloned()
            .collect()
    }

    /// The single best match for `query`, if any.
    pub fn best_match(&self, query: &Query) -> Option<Metadata> {
        self.search(query, 1).into_iter().next()
    }

    /// The `limit` most popular unexpired metadata at `now`.
    pub fn most_popular(&self, limit: usize, now: SimTime) -> Vec<Metadata> {
        top_popular(&self.uri_shards, limit, now)
            .into_iter()
            .cloned()
            .collect()
    }
}
