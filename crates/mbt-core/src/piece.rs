//! File pieces.
//!
//! Large files are divided into pieces of 256 KB (paper §III-B). Pieces "are
//! stamped with the URI of the file and different offsets in the file" so
//! they "may be downloaded at different times and places".

use std::fmt;

use crate::checksum::{sha1, Digest};
use crate::uri::Uri;

/// The default piece size: 256 KB (paper §III-B). The size can be raised to
/// shrink metadata, which carries one checksum per piece.
pub const PIECE_SIZE: usize = 256 * 1024;

/// Identifies one piece of one file: the file's URI plus the piece index.
///
/// The byte offset of piece `i` is `i * piece_size`.
///
/// # Example
///
/// ```
/// use mbt_core::{PieceId, Uri};
///
/// let uri = Uri::new("mbt://x/y")?;
/// let id = PieceId::new(uri.clone(), 3);
/// assert_eq!(id.offset(mbt_core::piece::PIECE_SIZE as u64), 3 * 256 * 1024);
/// # Ok::<(), mbt_core::uri::InvalidUri>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PieceId {
    uri: Uri,
    index: u32,
}

impl PieceId {
    /// Creates a piece id.
    pub fn new(uri: Uri, index: u32) -> Self {
        PieceId { uri, index }
    }

    /// The file's URI.
    pub fn uri(&self) -> &Uri {
        &self.uri
    }

    /// The piece index within the file.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The byte offset of this piece given a piece size.
    pub fn offset(&self, piece_size: u64) -> u64 {
        u64::from(self.index) * piece_size
    }
}

impl fmt::Display for PieceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.uri, self.index)
    }
}

/// A piece with its payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Piece {
    id: PieceId,
    data: Vec<u8>,
}

impl Piece {
    /// Creates a piece from its id and payload.
    pub fn new(id: PieceId, data: Vec<u8>) -> Self {
        Piece { id, data }
    }

    /// The piece id.
    pub fn id(&self) -> &PieceId {
        &self.id
    }

    /// The payload bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The SHA-1 checksum of the payload.
    pub fn checksum(&self) -> Digest {
        sha1(&self.data)
    }

    /// Consumes the piece, returning its payload.
    pub fn into_data(self) -> Vec<u8> {
        self.data
    }
}

/// Splits `data` into pieces of `piece_size` bytes stamped with `uri`.
///
/// The final piece may be shorter. Empty content yields no pieces.
///
/// # Panics
///
/// Panics if `piece_size` is zero.
///
/// # Example
///
/// ```
/// use mbt_core::{piece::split_into_pieces, Uri};
///
/// let uri = Uri::new("mbt://x")?;
/// let pieces = split_into_pieces(&uri, &[0u8; 600], 256);
/// assert_eq!(pieces.len(), 3);
/// assert_eq!(pieces[2].len(), 88);
/// # Ok::<(), mbt_core::uri::InvalidUri>(())
/// ```
pub fn split_into_pieces(uri: &Uri, data: &[u8], piece_size: usize) -> Vec<Piece> {
    assert!(piece_size > 0, "piece size must be positive");
    data.chunks(piece_size)
        .enumerate()
        .map(|(i, chunk)| Piece::new(PieceId::new(uri.clone(), i as u32), chunk.to_vec()))
        .collect()
}

/// Number of pieces a file of `len` bytes splits into at `piece_size`.
///
/// # Panics
///
/// Panics if `piece_size` is zero.
pub fn piece_count(len: u64, piece_size: u64) -> u32 {
    assert!(piece_size > 0, "piece size must be positive");
    len.div_ceil(piece_size) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uri() -> Uri {
        Uri::new("mbt://pub/file").unwrap()
    }

    #[test]
    fn split_covers_all_bytes() {
        let data: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        let pieces = split_into_pieces(&uri(), &data, 256);
        assert_eq!(pieces.len(), 4);
        let rejoined: Vec<u8> = pieces
            .iter()
            .flat_map(|p| p.data().iter().copied())
            .collect();
        assert_eq!(rejoined, data);
    }

    #[test]
    fn indices_are_sequential() {
        let pieces = split_into_pieces(&uri(), &[0u8; 700], 256);
        let idx: Vec<u32> = pieces.iter().map(|p| p.id().index()).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn empty_content_yields_no_pieces() {
        assert!(split_into_pieces(&uri(), &[], 256).is_empty());
    }

    #[test]
    fn exact_multiple_has_no_short_tail() {
        let pieces = split_into_pieces(&uri(), &[7u8; 512], 256);
        assert_eq!(pieces.len(), 2);
        assert!(pieces.iter().all(|p| p.len() == 256));
    }

    #[test]
    fn piece_count_matches_split() {
        for len in [0u64, 1, 255, 256, 257, 512, 1_000_000] {
            let data = vec![0u8; len as usize];
            let pieces = split_into_pieces(&uri(), &data, 256);
            assert_eq!(pieces.len() as u32, piece_count(len, 256), "len {len}");
        }
    }

    #[test]
    fn offset_computation() {
        let id = PieceId::new(uri(), 5);
        assert_eq!(id.offset(256), 1280);
        assert_eq!(id.uri(), &uri());
    }

    #[test]
    fn checksum_detects_corruption() {
        let p1 = Piece::new(PieceId::new(uri(), 0), vec![1, 2, 3]);
        let p2 = Piece::new(PieceId::new(uri(), 0), vec![1, 2, 4]);
        assert_ne!(p1.checksum(), p2.checksum());
    }

    #[test]
    fn display_includes_index() {
        let id = PieceId::new(uri(), 9);
        assert_eq!(id.to_string(), "mbt://pub/file#9");
    }

    #[test]
    #[should_panic(expected = "piece size")]
    fn zero_piece_size_panics() {
        let _ = split_into_pieces(&uri(), &[1], 0);
    }

    #[test]
    fn default_piece_size_is_256kb() {
        assert_eq!(PIECE_SIZE, 262_144);
    }

    #[test]
    fn into_data_returns_payload() {
        let p = Piece::new(PieceId::new(uri(), 0), vec![9, 9]);
        assert_eq!(p.into_data(), vec![9, 9]);
    }
}
