//! SHA-1 checksums.
//!
//! BitTorrent-style metadata carries "SHA-1 checksums of the data blocks"
//! (paper §II-B, §III-B). This module implements SHA-1 from scratch — no
//! external crypto dependency — sufficient for integrity verification of
//! file pieces in this system. (SHA-1 is cryptographically broken for
//! collision resistance; it is used here for fidelity to the paper, as
//! BitTorrent itself does, not as a security boundary.)

use std::fmt;

/// A 160-bit SHA-1 digest.
///
/// # Example
///
/// ```
/// use mbt_core::checksum::sha1;
///
/// let d = sha1(b"abc");
/// assert_eq!(d.to_hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest(pub [u8; 20]);

impl Digest {
    /// Lowercase hexadecimal rendering of the digest.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(40);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Incremental SHA-1 hasher.
///
/// # Example
///
/// ```
/// use mbt_core::checksum::{sha1, Sha1};
///
/// let mut h = Sha1::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), sha1(b"abc"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    length_bits: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: [
                0x6745_2301,
                0xEFCD_AB89,
                0x98BA_DCFE,
                0x1032_5476,
                0xC3D2_E1F0,
            ],
            buffer: [0u8; 64],
            buffer_len: 0,
            length_bits: 0,
        }
    }

    /// Feeds more input into the hasher.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length_bits = self.length_bits.wrapping_add((data.len() as u64) * 8);
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.process_block(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Consumes the hasher and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let length_bits = self.length_bits;
        // Padding: 0x80 then zeros until 8 bytes remain in the block.
        self.raw_update(&[0x80]);
        while self.buffer_len != 56 {
            self.raw_update(&[0]);
        }
        self.raw_update(&length_bits.to_be_bytes());
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// Update without counting toward the message length (used for padding).
    fn raw_update(&mut self, data: &[u8]) {
        for &b in data {
            self.buffer[self.buffer_len] = b;
            self.buffer_len += 1;
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffer_len = 0;
            }
        }
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
pub fn sha1(data: &[u8]) -> Digest {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors from FIPS 180-1 and RFC 3174.
    #[test]
    fn empty_string() {
        assert_eq!(
            sha1(b"").to_hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            sha1(b"abc").to_hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha1(&data).to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn exact_block_boundary() {
        // 64-byte input exercises the padding-into-new-block path.
        let data = vec![0x61u8; 64];
        let d1 = sha1(&data);
        let mut h = Sha1::new();
        h.update(&data[..31]);
        h.update(&data[31..]);
        assert_eq!(h.finalize(), d1);
    }

    #[test]
    fn incremental_equals_oneshot_many_splits() {
        let data: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        let oneshot = sha1(&data);
        for split in [0usize, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn digest_display_and_bytes() {
        let d = sha1(b"abc");
        assert_eq!(d.to_string(), d.to_hex());
        assert_eq!(d.as_bytes().len(), 20);
        assert_eq!(d.as_ref().len(), 20);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha1(b"a"), sha1(b"b"));
    }

    #[test]
    fn default_hasher_is_fresh() {
        assert_eq!(Sha1::default().finalize(), sha1(b""));
    }
}
