//! Wire messages exchanged among MBT nodes.
//!
//! Paper §III-B: "Messages exchanged among the nodes include: (a) hello
//! messages, (b) metadata, and (c) file pieces." Hello messages carry the
//! sender's ID, the IDs heard in the past 5 seconds, its query strings, and
//! the URIs of the files it is downloading.

use dtn_trace::NodeId;

use crate::metadata::Metadata;
use crate::piece::Piece;
use crate::popularity::Popularity;
use crate::uri::Uri;

/// The MBT-specific payload of a hello beacon (see
/// [`dtn_sim::hello::HelloBeacon`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HelloPayload {
    /// The sender's active query strings.
    pub queries: Vec<String>,
    /// URIs of the files the sender is currently downloading.
    pub downloading: Vec<Uri>,
}

impl HelloPayload {
    /// Creates a payload.
    pub fn new(queries: Vec<String>, downloading: Vec<Uri>) -> Self {
        HelloPayload {
            queries,
            downloading,
        }
    }
}

/// A message on the MBT wire.
#[derive(Debug, Clone, PartialEq)]
pub enum MbtMessage {
    /// A hello beacon: sender, recently-heard IDs, and the MBT payload.
    Hello {
        /// The sending node.
        sender: NodeId,
        /// IDs the sender heard within the hello window.
        heard: Vec<NodeId>,
        /// Queries and downloading URIs.
        payload: HelloPayload,
    },
    /// A standalone metadata record with the sender's popularity estimate.
    Metadata {
        /// The metadata.
        metadata: Metadata,
        /// Popularity as known to the sender.
        popularity: Popularity,
    },
    /// One file piece.
    Piece(Piece),
    /// A query distributed on behalf of another node (full MBT only).
    QueryShare {
        /// The node the query belongs to.
        owner: NodeId,
        /// The query text.
        query: String,
    },
}

impl MbtMessage {
    /// Approximate wire size in bytes, used for bandwidth accounting.
    pub fn wire_size(&self) -> usize {
        match self {
            MbtMessage::Hello { heard, payload, .. } => {
                8 + heard.len() * 4
                    + payload.queries.iter().map(String::len).sum::<usize>()
                    + payload
                        .downloading
                        .iter()
                        .map(|u| u.as_str().len())
                        .sum::<usize>()
            }
            MbtMessage::Metadata { metadata, .. } => metadata.wire_size(),
            MbtMessage::Piece(p) => p.len() + p.id().uri().as_str().len() + 8,
            MbtMessage::QueryShare { query, .. } => 8 + query.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::piece::PieceId;

    #[test]
    fn hello_payload_fields() {
        let p = HelloPayload::new(vec!["fox news".into()], vec![Uri::new("mbt://a").unwrap()]);
        assert_eq!(p.queries.len(), 1);
        assert_eq!(p.downloading.len(), 1);
        assert_eq!(HelloPayload::default().queries.len(), 0);
    }

    #[test]
    fn wire_sizes_ordered_sensibly() {
        let hello = MbtMessage::Hello {
            sender: NodeId::new(0),
            heard: vec![NodeId::new(1)],
            payload: HelloPayload::default(),
        };
        let meta = MbtMessage::Metadata {
            metadata: Metadata::builder("x", "p", Uri::new("mbt://a").unwrap())
                .content(&[0u8; 4096], 1024)
                .build(),
            popularity: Popularity::MIN,
        };
        let piece = MbtMessage::Piece(Piece::new(
            PieceId::new(Uri::new("mbt://a").unwrap(), 0),
            vec![0u8; 4096],
        ));
        // Hello < metadata < piece, the bandwidth hierarchy the paper relies on.
        assert!(hello.wire_size() < meta.wire_size());
        assert!(meta.wire_size() < piece.wire_size());
    }

    #[test]
    fn query_share_size_counts_text() {
        let m = MbtMessage::QueryShare {
            owner: NodeId::new(1),
            query: "abcd".into(),
        };
        assert_eq!(m.wire_size(), 12);
    }
}
