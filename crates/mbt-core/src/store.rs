//! Node-local storage.
//!
//! Each node's file discovery process "collects metadata and stores them in
//! the local storage of the node" (paper §III-B); nodes also store the query
//! strings of their most frequently connected nodes (§IV) and the files they
//! have completed. Everything here is TTL-aware: expired entries are pruned
//! so stale advertisements do not circulate forever.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use dtn_trace::{NodeId, SimTime};

use crate::keyword::InvertedIndex;
use crate::metadata::Metadata;
use crate::query::Query;
use crate::uri::Uri;

/// A node's local metadata collection.
///
/// Records are mirrored into an [`InvertedIndex`] maintained incrementally on
/// insert/remove/prune, so [`matching`](MetadataStore::matching) is a posting
/// -list intersection instead of a full-store scan. A monotonic
/// [`version`](MetadataStore::version) counter bumps on every mutation;
/// [`MbtNode`](crate::MbtNode) uses it to invalidate its cached wanted-URI
/// list.
///
/// # Example
///
/// ```
/// use mbt_core::{Metadata, MetadataStore, Query, Uri};
///
/// let mut store = MetadataStore::new();
/// let meta = Metadata::builder("FOX News", "FOX", Uri::new("mbt://a")?).build();
/// assert!(store.insert(meta.clone()));
/// assert!(!store.insert(meta), "duplicates are ignored");
/// assert_eq!(store.matching(&Query::new("news")?).len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetadataStore {
    map: BTreeMap<Uri, Metadata>,
    /// Copy-on-write: cloning a store (benchmark fixtures, experiment
    /// replication) shares the index until the clone next mutates.
    index: Arc<InvertedIndex>,
    version: u64,
}

impl MetadataStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MetadataStore::default()
    }

    /// Inserts metadata; returns `true` if it was new (an existing record for
    /// the same URI is kept unchanged).
    pub fn insert(&mut self, metadata: Metadata) -> bool {
        match self.map.entry(metadata.uri().clone()) {
            std::collections::btree_map::Entry::Vacant(v) => {
                Arc::make_mut(&mut self.index)
                    .insert_tokens(metadata.uri(), metadata.token_set().iter());
                self.version += 1;
                v.insert(metadata);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// Looks up metadata by URI.
    pub fn get(&self, uri: &Uri) -> Option<&Metadata> {
        self.map.get(uri)
    }

    /// True if metadata for `uri` is stored.
    pub fn contains(&self, uri: &Uri) -> bool {
        self.map.contains_key(uri)
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over stored metadata in URI order.
    pub fn iter(&self) -> impl Iterator<Item = &Metadata> {
        self.map.values()
    }

    /// All stored metadata matching `query`, in URI order.
    ///
    /// Answered from the inverted index; returns exactly the records whose
    /// token set contains every query token, like the linear
    /// `matches_query` scan it replaced (the property suite checks the
    /// equivalence).
    pub fn matching(&self, query: &Query) -> Vec<&Metadata> {
        self.index
            .lookup_all_ref(query.tokens())
            .into_iter()
            .map(|uri| {
                self.map
                    .get(uri)
                    .expect("index entry without a stored record")
            })
            .collect()
    }

    /// URIs of stored metadata matching `query`, in URI order (index-only;
    /// no record lookups).
    pub fn matching_uris(&self, query: &Query) -> Vec<&Uri> {
        self.index.lookup_all_ref(query.tokens())
    }

    /// Removes records expired at `now`; returns how many were dropped.
    pub fn prune_expired(&mut self, now: SimTime) -> usize {
        let expired: Vec<Uri> = self
            .map
            .values()
            .filter(|m| m.is_expired(now))
            .map(|m| m.uri().clone())
            .collect();
        if !expired.is_empty() {
            let index = Arc::make_mut(&mut self.index);
            for uri in &expired {
                self.map.remove(uri);
                index.remove(uri);
            }
            self.version += 1;
        }
        expired.len()
    }

    /// Removes a record by URI; returns it if present.
    pub fn remove(&mut self, uri: &Uri) -> Option<Metadata> {
        let removed = self.map.remove(uri);
        if removed.is_some() {
            Arc::make_mut(&mut self.index).remove(uri);
            self.version += 1;
        }
        removed
    }

    /// Monotonic mutation counter: bumps whenever the stored record set
    /// changes.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// An active query with an optional expiry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryEntry {
    query: Query,
    expires: Option<SimTime>,
}

impl QueryEntry {
    /// Creates an entry.
    pub fn new(query: Query, expires: Option<SimTime>) -> Self {
        QueryEntry { query, expires }
    }

    /// The query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Expiry instant, if any.
    pub fn expires(&self) -> Option<SimTime> {
        self.expires
    }

    /// True if expired at `now`.
    pub fn is_expired(&self, now: SimTime) -> bool {
        self.expires.is_some_and(|e| now >= e)
    }
}

/// A node's query collection: its user's own queries plus queries collected
/// on behalf of other nodes (frequent contacts under MBT; currently-connected
/// peers during a contact).
///
/// # Example
///
/// ```
/// use mbt_core::{Query, QueryStore};
/// use dtn_trace::NodeId;
///
/// let mut store = QueryStore::new();
/// store.add_own(Query::new("fox news")?, None);
/// store.add_foreign(NodeId::new(7), Query::new("abc comedy")?, None);
/// assert_eq!(store.own().count(), 1);
/// assert_eq!(store.foreign().count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryStore {
    own: Vec<QueryEntry>,
    foreign: Vec<(NodeId, QueryEntry)>,
    /// Dedup keys for `own`, so `add_own` is a set probe instead of an
    /// O(n) text scan. Iteration still goes through the insertion-ordered
    /// vectors.
    own_texts: BTreeSet<Box<str>>,
    /// Dedup keys for `foreign`. `Query` equality is by text (tokens are a
    /// pure function of it) and cloning is a reference-count bump, so the
    /// probe allocates nothing.
    foreign_keys: BTreeSet<(NodeId, Query)>,
    own_version: u64,
}

impl QueryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        QueryStore::default()
    }

    /// Adds one of the user's own queries (deduplicated by text).
    /// Returns `true` if it was new.
    pub fn add_own(&mut self, query: Query, expires: Option<SimTime>) -> bool {
        if self.own_texts.contains(query.text()) {
            return false;
        }
        self.own_texts.insert(query.text().into());
        self.own.push(QueryEntry::new(query, expires));
        self.own_version += 1;
        true
    }

    /// Adds a query on behalf of `owner` (deduplicated by owner + text).
    /// Returns `true` if it was new.
    pub fn add_foreign(&mut self, owner: NodeId, query: Query, expires: Option<SimTime>) -> bool {
        if !self.foreign_keys.insert((owner, query.clone())) {
            return false;
        }
        self.foreign.push((owner, QueryEntry::new(query, expires)));
        true
    }

    /// The user's own queries.
    pub fn own(&self) -> impl Iterator<Item = &QueryEntry> {
        self.own.iter()
    }

    /// Queries held for other nodes.
    pub fn foreign(&self) -> impl Iterator<Item = (NodeId, &QueryEntry)> {
        self.foreign.iter().map(|(o, e)| (*o, e))
    }

    /// All queries with their owners; `me` is reported as the owner of own
    /// queries.
    pub fn all_with_owner(&self, me: NodeId) -> Vec<(NodeId, &Query)> {
        let mut out: Vec<(NodeId, &Query)> = self.own.iter().map(|e| (me, &e.query)).collect();
        out.extend(self.foreign.iter().map(|(o, e)| (*o, &e.query)));
        out
    }

    /// Removes a satisfied own query by text; returns `true` if found.
    pub fn remove_own(&mut self, text: &str) -> bool {
        let before = self.own.len();
        self.own.retain(|e| e.query.text() != text);
        let found = self.own.len() != before;
        if found {
            self.own_texts.remove(text);
            self.own_version += 1;
        }
        found
    }

    /// Drops expired queries; returns how many were dropped.
    pub fn prune_expired(&mut self, now: SimTime) -> usize {
        let before = self.own.len() + self.foreign.len();
        let own_before = self.own.len();
        let own_texts = &mut self.own_texts;
        self.own.retain(|e| {
            let keep = !e.is_expired(now);
            if !keep {
                own_texts.remove(e.query.text());
            }
            keep
        });
        let foreign_keys = &mut self.foreign_keys;
        self.foreign.retain(|(o, e)| {
            let keep = !e.is_expired(now);
            if !keep {
                foreign_keys.remove(&(*o, e.query.clone()));
            }
            keep
        });
        if self.own.len() != own_before {
            self.own_version += 1;
        }
        before - (self.own.len() + self.foreign.len())
    }

    /// Monotonic mutation counter for the **own** query set (the input to
    /// wanted-URI computation); foreign-query changes do not bump it.
    pub fn own_version(&self) -> u64 {
        self.own_version
    }

    /// Total number of stored queries (own + foreign).
    pub fn len(&self) -> usize {
        self.own.len() + self.foreign.len()
    }

    /// True if no queries are stored.
    pub fn is_empty(&self) -> bool {
        self.own.is_empty() && self.foreign.is_empty()
    }
}

/// The set of complete files a node holds (file-level granularity, as used by
/// the paper's evaluation model).
#[derive(Debug, Clone, Default)]
pub struct FileStore {
    files: BTreeMap<Uri, Option<SimTime>>,
    version: u64,
}

impl FileStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        FileStore::default()
    }

    /// Records that the node holds the complete file at `uri`, expiring at
    /// `expires`. Returns `true` if it was new.
    pub fn insert(&mut self, uri: Uri, expires: Option<SimTime>) -> bool {
        self.version += 1;
        self.files.insert(uri, expires).is_none()
    }

    /// True if the node holds `uri`.
    pub fn contains(&self, uri: &Uri) -> bool {
        self.files.contains_key(uri)
    }

    /// Iterates over held URIs in order.
    pub fn iter(&self) -> impl Iterator<Item = &Uri> {
        self.files.keys()
    }

    /// Number of held files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True if no files are held.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Drops expired files; returns how many were dropped.
    pub fn prune_expired(&mut self, now: SimTime) -> usize {
        let before = self.files.len();
        self.files
            .retain(|_, expires| !expires.is_some_and(|e| now >= e));
        let dropped = before - self.files.len();
        if dropped > 0 {
            self.version += 1;
        }
        dropped
    }

    /// Evicts a held file (bounded-buffer cache policies); returns `true` if
    /// it was present.
    pub fn remove(&mut self, uri: &Uri) -> bool {
        let removed = self.files.remove(uri).is_some();
        if removed {
            self.version += 1;
        }
        removed
    }

    /// Monotonic mutation counter: bumps on every insert or prune.
    pub fn version(&self) -> u64 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_trace::SimDuration;

    fn meta(name: &str, uri: &str) -> Metadata {
        Metadata::builder(name, "FOX", Uri::new(uri).unwrap()).build()
    }

    fn expiring_meta(uri: &str, ttl_secs: u64) -> Metadata {
        Metadata::builder("x", "FOX", Uri::new(uri).unwrap())
            .ttl(SimDuration::from_secs(ttl_secs))
            .build()
    }

    #[test]
    fn metadata_store_dedups() {
        let mut s = MetadataStore::new();
        assert!(s.insert(meta("a", "mbt://a")));
        assert!(!s.insert(meta("a-again", "mbt://a")));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&Uri::new("mbt://a").unwrap()).unwrap().name(), "a");
    }

    #[test]
    fn metadata_store_matching() {
        let mut s = MetadataStore::new();
        s.insert(meta("fox news", "mbt://a"));
        s.insert(meta("abc comedy", "mbt://b"));
        let q = Query::new("news").unwrap();
        assert_eq!(s.matching(&q).len(), 1);
    }

    #[test]
    fn metadata_store_prunes_expired() {
        let mut s = MetadataStore::new();
        s.insert(expiring_meta("mbt://old", 10));
        s.insert(meta("fresh", "mbt://fresh"));
        assert_eq!(s.prune_expired(SimTime::from_secs(20)), 1);
        assert_eq!(s.len(), 1);
        assert!(s.contains(&Uri::new("mbt://fresh").unwrap()));
    }

    #[test]
    fn metadata_store_remove() {
        let mut s = MetadataStore::new();
        s.insert(meta("a", "mbt://a"));
        assert!(s.remove(&Uri::new("mbt://a").unwrap()).is_some());
        assert!(s.is_empty());
        assert!(s.remove(&Uri::new("mbt://a").unwrap()).is_none());
    }

    #[test]
    fn query_store_dedups_own_by_text() {
        let mut s = QueryStore::new();
        assert!(s.add_own(Query::new("fox news").unwrap(), None));
        assert!(!s.add_own(Query::new("fox news").unwrap(), None));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn query_store_foreign_per_owner() {
        let mut s = QueryStore::new();
        let q = Query::new("x").unwrap();
        assert!(s.add_foreign(NodeId::new(1), q.clone(), None));
        assert!(!s.add_foreign(NodeId::new(1), q.clone(), None));
        assert!(s.add_foreign(NodeId::new(2), q, None));
        assert_eq!(s.foreign().count(), 2);
    }

    #[test]
    fn query_store_all_with_owner() {
        let mut s = QueryStore::new();
        s.add_own(Query::new("mine").unwrap(), None);
        s.add_foreign(NodeId::new(3), Query::new("theirs").unwrap(), None);
        let all = s.all_with_owner(NodeId::new(0));
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, NodeId::new(0));
        assert_eq!(all[1].0, NodeId::new(3));
    }

    #[test]
    fn query_store_remove_own() {
        let mut s = QueryStore::new();
        s.add_own(Query::new("fox news").unwrap(), None);
        assert!(s.remove_own("fox news"));
        assert!(!s.remove_own("fox news"));
        assert!(s.is_empty());
    }

    #[test]
    fn query_store_prunes_expired() {
        let mut s = QueryStore::new();
        s.add_own(Query::new("a").unwrap(), Some(SimTime::from_secs(10)));
        s.add_foreign(
            NodeId::new(1),
            Query::new("b").unwrap(),
            Some(SimTime::from_secs(5)),
        );
        s.add_own(Query::new("keep").unwrap(), None);
        assert_eq!(s.prune_expired(SimTime::from_secs(10)), 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn file_store_basics() {
        let mut s = FileStore::new();
        let uri = Uri::new("mbt://f").unwrap();
        assert!(s.insert(uri.clone(), None));
        assert!(!s.insert(uri.clone(), None));
        assert!(s.contains(&uri));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn file_store_remove_bumps_version() {
        let mut s = FileStore::new();
        let uri = Uri::new("mbt://f").unwrap();
        s.insert(uri.clone(), None);
        let v = s.version();
        assert!(s.remove(&uri));
        assert!(!s.contains(&uri));
        assert!(s.version() > v);
        let v = s.version();
        assert!(!s.remove(&uri), "removing a missing file is a no-op");
        assert_eq!(s.version(), v);
    }

    #[test]
    fn file_store_prunes_expired() {
        let mut s = FileStore::new();
        s.insert(Uri::new("mbt://old").unwrap(), Some(SimTime::from_secs(10)));
        s.insert(Uri::new("mbt://keep").unwrap(), None);
        assert_eq!(s.prune_expired(SimTime::from_secs(10)), 1);
        assert_eq!(s.iter().next().unwrap().as_str(), "mbt://keep");
    }

    #[test]
    fn query_entry_expiry() {
        let e = QueryEntry::new(Query::new("x").unwrap(), Some(SimTime::from_secs(5)));
        assert!(!e.is_expired(SimTime::from_secs(4)));
        assert!(e.is_expired(SimTime::from_secs(5)));
        assert_eq!(e.expires(), Some(SimTime::from_secs(5)));
    }
}
