//! Mobile BitTorrent (MBT): cooperative file sharing in hybrid delay
//! tolerant networks.
//!
//! This crate reproduces the system of *"Cooperative File Sharing in Hybrid
//! Delay Tolerant Networks"* (Liu, Wu, Guan, Chen — ICDCS 2011): a
//! peer-to-peer file-sharing system for DTNs formed solely by mobile devices,
//! surrounding the Internet (a *hybrid DTN*). Files originate on the
//! Internet; nodes with Internet access download them directly, and every
//! node — connected or not — can discover and download files through
//! cooperation with its DTN peers.
//!
//! The two contributions of the paper, and of this crate:
//!
//! 1. **Cooperative file discovery** ([`discovery`]): keyword search inside
//!    the DTN via distribution of [`Metadata`] — advertisements carrying
//!    name, publisher, description, URI, piece checksums, and publisher
//!    authentication ([`auth`]) — ordered by query matches and
//!    [`Popularity`], with a credit-based tit-for-tat variant
//!    ([`CreditLedger`]).
//! 2. **Broadcast-based file download** ([`download`]): clique-structured,
//!    one-sender-at-a-time broadcast with per-node capacity `(n-1)/n`
//!    instead of pair-wise `1/n`, coordinated either by an elected
//!    coordinator or by a shared cyclic order under tit-for-tat.
//!
//! [`MbtNode`] ties everything together into the per-device state machine,
//! [`node::run_contact`] executes a contact among a clique of nodes, and
//! [`MetadataServer`] plays the Internet side.
//!
//! # Quickstart
//!
//! ```
//! use mbt_core::{MbtConfig, MbtNode, MetadataServer, Metadata, Popularity, ProtocolKind, Query, Uri};
//! use mbt_core::node::run_pairwise_contact;
//! use dtn_trace::{NodeId, SimDuration, SimTime};
//!
//! // The Internet publishes a file.
//! let mut server = MetadataServer::new(1);
//! let uri = Uri::new("mbt://fox/evening-news")?;
//! server.publish(
//!     Metadata::builder("FOX Evening News", "FOX", uri.clone()).build(),
//!     Popularity::new(0.5),
//! );
//!
//! // Node 0 has Internet access and queries for the file; node 1 does not.
//! let mut nodes = vec![
//!     MbtNode::new(NodeId::new(0), ProtocolKind::Mbt, MbtConfig::new()),
//!     MbtNode::new(NodeId::new(1), ProtocolKind::Mbt, MbtConfig::new()),
//! ];
//! nodes[0].set_internet_access(true);
//! nodes[0].add_query(Query::new("evening news")?, None);
//! nodes[0].internet_session(&mut server, SimTime::ZERO);
//!
//! // Node 1 wants the same file but can only get it from node 0, later.
//! nodes[1].add_query(Query::new("evening news")?, None);
//! run_pairwise_contact(&mut nodes, 0, 1, SimTime::from_secs(3600), SimDuration::from_secs(120));
//! assert!(nodes[1].has_file(&uri));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod auth;
pub mod checksum;
pub mod config;
pub mod credit;
pub mod discovery;
pub mod download;
pub mod file;
pub mod keyword;
pub mod messages;
pub mod metadata;
pub mod node;
pub mod piece;
pub mod popularity;
pub mod protocol;
pub mod query;
pub mod selection;
pub mod server;
pub mod store;
pub mod transport;
pub mod uri;

pub use config::{BroadcastOrdering, CooperationMode, MbtConfig};
pub use credit::CreditLedger;
pub use file::FileAssembler;
pub use metadata::Metadata;
pub use node::{ColdNodeState, MbtNode, NodeEvent, Source};
pub use piece::{Piece, PieceId};
pub use popularity::Popularity;
pub use protocol::{
    CachePolicy, PopularityScope, ProtocolKind, ProtocolSpec, ReplicationPolicy, UnknownProtocol,
};
pub use query::Query;
pub use server::MetadataServer;
pub use store::{FileStore, MetadataStore, QueryStore};
pub use transport::{BusTransport, Carried, SimTransport, Transport, TransportKind, WireMessage};
pub use uri::Uri;
