//! File metadata.
//!
//! Each file is associated with a metadata record containing (a) the file
//! name, (b) the file publisher, (c) the file description, (d) the URI of
//! the file, (e) the checksums of its pieces, and (f) authentication
//! information against fake publishers (paper §III-B). Unlike BitTorrent
//! metadata, MBT metadata carries enough descriptive information for users to
//! decide *which* file to download — metadata acts as an advertisement and
//! can be distributed even before the file itself is produced.

use std::fmt;
use std::sync::Arc;

use dtn_trace::{SimDuration, SimTime};

use crate::checksum::{sha1, Digest};
use crate::keyword::{tokenize, TokenSet};
use crate::piece::{piece_count, Piece, PIECE_SIZE};
use crate::query::Query;
use crate::uri::Uri;

/// A file's metadata record.
///
/// Construct with [`Metadata::builder`]; sign with
/// [`auth::sign`](crate::auth::sign) to fill the authentication tag.
///
/// The record lives behind a shared allocation: cloning — which the contact
/// loop does for every catalog entry and every snapshot at every contact —
/// is a reference-count bump. The only post-build mutation,
/// [`auth::sign`](crate::auth::sign), copies on write.
///
/// # Example
///
/// ```
/// use mbt_core::{Metadata, Query, Uri};
///
/// let uri = Uri::new("mbt://fox/evening-news/2011-04-01")?;
/// let meta = Metadata::builder("FOX Evening News April 1", "FOX", uri)
///     .description("Nightly news broadcast")
///     .content(b"...video bytes...", 16)
///     .build();
/// let q = Query::new("evening news")?;
/// assert!(meta.matches_query(&q));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metadata {
    inner: Arc<MetadataInner>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct MetadataInner {
    name: String,
    publisher: String,
    description: String,
    uri: Uri,
    size: u64,
    piece_size: u64,
    piece_checksums: Vec<Digest>,
    created: SimTime,
    expires: Option<SimTime>,
    auth_tag: Option<Digest>,
    /// Token set of name + publisher + description, computed once at build
    /// time. Derived from the text fields, so it never disagrees with
    /// [`Metadata::tokens`] and does not perturb equality.
    tokens: TokenSet,
}

/// Builder for [`Metadata`].
#[derive(Debug, Clone)]
pub struct MetadataBuilder {
    name: String,
    publisher: String,
    description: String,
    uri: Uri,
    size: u64,
    piece_size: u64,
    piece_checksums: Vec<Digest>,
    created: SimTime,
    expires: Option<SimTime>,
}

impl MetadataBuilder {
    /// Sets the free-text description / advertisement.
    pub fn description<S: Into<String>>(mut self, d: S) -> Self {
        self.description = d.into();
        self
    }

    /// Derives size and per-piece checksums from the actual content bytes.
    ///
    /// # Panics
    ///
    /// Panics if `piece_size` is zero.
    pub fn content(mut self, data: &[u8], piece_size: usize) -> Self {
        assert!(piece_size > 0, "piece size must be positive");
        self.size = data.len() as u64;
        self.piece_size = piece_size as u64;
        self.piece_checksums = data.chunks(piece_size).map(sha1).collect();
        self
    }

    /// Declares size and checksums directly (for simulations where payloads
    /// are virtual).
    pub fn sized(mut self, size: u64, piece_size: u64, checksums: Vec<Digest>) -> Self {
        self.size = size;
        self.piece_size = piece_size.max(1);
        self.piece_checksums = checksums;
        self
    }

    /// Sets the creation instant (default: time zero).
    pub fn created(mut self, at: SimTime) -> Self {
        self.created = at;
        self
    }

    /// Sets a time-to-live; the metadata (and its file) expire at
    /// `created + ttl`.
    pub fn ttl(mut self, ttl: SimDuration) -> Self {
        self.expires = Some(self.created + ttl);
        self
    }

    /// Sets the absolute expiry instant directly (`None` clears it).
    ///
    /// Wire decoding uses this: frames carry the expiry as an instant, not a
    /// TTL, so reconstruction must not re-derive it from `created`.
    pub fn expires_at(mut self, at: Option<SimTime>) -> Self {
        self.expires = at;
        self
    }

    /// Finishes the metadata (unsigned; see [`crate::auth::sign`]).
    pub fn build(self) -> Metadata {
        let tokens = TokenSet::from_text(&format!(
            "{} {} {}",
            self.name, self.publisher, self.description
        ));
        Metadata {
            inner: Arc::new(MetadataInner {
                name: self.name,
                publisher: self.publisher,
                description: self.description,
                uri: self.uri,
                size: self.size,
                piece_size: self.piece_size,
                piece_checksums: self.piece_checksums,
                created: self.created,
                expires: self.expires,
                auth_tag: None,
                tokens,
            }),
        }
    }
}

impl Metadata {
    /// Starts building metadata for the file at `uri`.
    pub fn builder<N, P>(name: N, publisher: P, uri: Uri) -> MetadataBuilder
    where
        N: Into<String>,
        P: Into<String>,
    {
        MetadataBuilder {
            name: name.into(),
            publisher: publisher.into(),
            description: String::new(),
            uri,
            size: 0,
            piece_size: PIECE_SIZE as u64,
            piece_checksums: Vec::new(),
            created: SimTime::ZERO,
            expires: None,
        }
    }

    /// The file name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The publisher (e.g. "FOX", "ABC").
    pub fn publisher(&self) -> &str {
        &self.inner.publisher
    }

    /// The description / advertisement text.
    pub fn description(&self) -> &str {
        &self.inner.description
    }

    /// The file URI.
    pub fn uri(&self) -> &Uri {
        &self.inner.uri
    }

    /// File size in bytes.
    pub fn size(&self) -> u64 {
        self.inner.size
    }

    /// Piece size in bytes.
    pub fn piece_size(&self) -> u64 {
        self.inner.piece_size
    }

    /// Per-piece SHA-1 checksums.
    pub fn piece_checksums(&self) -> &[Digest] {
        &self.inner.piece_checksums
    }

    /// Number of pieces the file divides into.
    pub fn piece_count(&self) -> u32 {
        if self.inner.piece_checksums.is_empty() {
            piece_count(self.inner.size, self.inner.piece_size)
        } else {
            self.inner.piece_checksums.len() as u32
        }
    }

    /// Creation instant.
    pub fn created(&self) -> SimTime {
        self.inner.created
    }

    /// Expiry instant, if a TTL was set.
    pub fn expires(&self) -> Option<SimTime> {
        self.inner.expires
    }

    /// True if the metadata has expired at `now`.
    pub fn is_expired(&self, now: SimTime) -> bool {
        self.inner.expires.is_some_and(|e| now >= e)
    }

    /// The authentication tag, if signed.
    pub fn auth_tag(&self) -> Option<Digest> {
        self.inner.auth_tag
    }

    /// Sets the authentication tag (used by [`crate::auth::sign`]).
    /// Copies on write if the record is shared.
    pub(crate) fn set_auth_tag(&mut self, tag: Digest) {
        Arc::make_mut(&mut self.inner).auth_tag = Some(tag);
    }

    /// The searchable tokens of this metadata (name + publisher +
    /// description), tokenized afresh in first-occurrence order.
    ///
    /// This is the uncached reference path; hot loops should probe
    /// [`token_set`](Self::token_set) instead. The property suite checks
    /// that the two always agree.
    pub fn tokens(&self) -> Vec<String> {
        tokenize(&format!(
            "{} {} {}",
            self.inner.name, self.inner.publisher, self.inner.description
        ))
    }

    /// The cached, sorted token set computed once at build time.
    pub fn token_set(&self) -> &TokenSet {
        &self.inner.tokens
    }

    /// The concatenated searchable text.
    pub fn search_text(&self) -> String {
        format!(
            "{} {} {}",
            self.inner.name, self.inner.publisher, self.inner.description
        )
    }

    /// True if `query` matches this metadata's searchable text.
    ///
    /// Allocation-free: probes the cached [`token_set`](Self::token_set).
    pub fn matches_query(&self, query: &Query) -> bool {
        query.matches_token_set(&self.inner.tokens)
    }

    /// Verifies a piece's payload against the recorded checksum.
    ///
    /// Returns `false` for a piece of another file, an out-of-range index, or
    /// a checksum mismatch.
    pub fn verify_piece(&self, piece: &Piece) -> bool {
        if piece.id().uri() != &self.inner.uri {
            return false;
        }
        let idx = piece.id().index() as usize;
        match self.inner.piece_checksums.get(idx) {
            Some(&expected) => piece.checksum() == expected,
            None => false,
        }
    }

    /// The bytes covered by the authentication tag: every field except the
    /// tag itself, length-prefixed so field boundaries cannot be confused.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let push_str = |out: &mut Vec<u8>, s: &str| {
            out.extend_from_slice(&(s.len() as u64).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        };
        push_str(&mut out, &self.inner.name);
        push_str(&mut out, &self.inner.publisher);
        push_str(&mut out, &self.inner.description);
        push_str(&mut out, self.inner.uri.as_str());
        out.extend_from_slice(&self.inner.size.to_be_bytes());
        out.extend_from_slice(&self.inner.piece_size.to_be_bytes());
        out.extend_from_slice(&(self.inner.piece_checksums.len() as u64).to_be_bytes());
        for d in &self.inner.piece_checksums {
            out.extend_from_slice(d.as_bytes());
        }
        out.extend_from_slice(&self.inner.created.as_secs().to_be_bytes());
        match self.inner.expires {
            Some(e) => {
                out.push(1);
                out.extend_from_slice(&e.as_secs().to_be_bytes());
            }
            None => out.push(0),
        }
        out
    }

    /// Approximate wire size in bytes (text fields + checksums + fixed
    /// overhead). Metadata "use little bandwidth because they are much
    /// smaller than files" — this lets simulations account for it.
    pub fn wire_size(&self) -> usize {
        self.inner.name.len()
            + self.inner.publisher.len()
            + self.inner.description.len()
            + self.inner.uri.as_str().len()
            + self.inner.piece_checksums.len() * 20
            + 64
    }
}

impl fmt::Display for Metadata {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} by {} ({}, {} bytes, {} pieces)",
            self.inner.name,
            self.inner.publisher,
            self.inner.uri,
            self.inner.size,
            self.piece_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::piece::split_into_pieces;

    fn uri() -> Uri {
        Uri::new("mbt://fox/news-1").unwrap()
    }

    fn meta_with_content(data: &[u8]) -> Metadata {
        Metadata::builder("FOX Evening News", "FOX", uri())
            .description("nightly broadcast")
            .content(data, 16)
            .build()
    }

    #[test]
    fn builder_populates_fields() {
        let m = meta_with_content(&[1u8; 40]);
        assert_eq!(m.name(), "FOX Evening News");
        assert_eq!(m.publisher(), "FOX");
        assert_eq!(m.size(), 40);
        assert_eq!(m.piece_size(), 16);
        assert_eq!(m.piece_count(), 3);
        assert_eq!(m.piece_checksums().len(), 3);
        assert!(m.auth_tag().is_none());
    }

    #[test]
    fn query_matching() {
        let m = meta_with_content(&[0u8; 4]);
        assert!(m.matches_query(&Query::new("fox news").unwrap()));
        assert!(m.matches_query(&Query::new("nightly").unwrap()));
        assert!(!m.matches_query(&Query::new("cbs news").unwrap()));
    }

    #[test]
    fn verify_piece_accepts_real_pieces() {
        let data: Vec<u8> = (0..50u8).collect();
        let m = meta_with_content(&data);
        for p in split_into_pieces(&uri(), &data, 16) {
            assert!(m.verify_piece(&p));
        }
    }

    #[test]
    fn verify_piece_rejects_corruption() {
        let data = vec![7u8; 32];
        let m = meta_with_content(&data);
        let bad = Piece::new(crate::piece::PieceId::new(uri(), 0), vec![8u8; 16]);
        assert!(!m.verify_piece(&bad));
    }

    #[test]
    fn verify_piece_rejects_wrong_file_and_index() {
        let data = vec![7u8; 32];
        let m = meta_with_content(&data);
        let other = Uri::new("mbt://other").unwrap();
        let pieces = split_into_pieces(&other, &data, 16);
        assert!(!m.verify_piece(&pieces[0]));
        let out_of_range = Piece::new(crate::piece::PieceId::new(uri(), 9), vec![7u8; 16]);
        assert!(!m.verify_piece(&out_of_range));
    }

    #[test]
    fn expiry() {
        let m = Metadata::builder("x", "p", uri())
            .created(SimTime::from_secs(100))
            .ttl(SimDuration::from_secs(50))
            .build();
        assert!(!m.is_expired(SimTime::from_secs(149)));
        assert!(m.is_expired(SimTime::from_secs(150)));
        assert_eq!(m.expires(), Some(SimTime::from_secs(150)));
    }

    #[test]
    fn no_ttl_never_expires() {
        let m = Metadata::builder("x", "p", uri()).build();
        assert!(!m.is_expired(SimTime::from_secs(u64::MAX / 2)));
    }

    #[test]
    fn canonical_bytes_change_with_fields() {
        let a = Metadata::builder("x", "p", uri()).build();
        let b = Metadata::builder("y", "p", uri()).build();
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
    }

    #[test]
    fn canonical_bytes_unambiguous_across_field_boundaries() {
        // "ab" + "c" vs "a" + "bc" must differ thanks to length prefixes.
        let a = Metadata::builder("ab", "c", uri()).build();
        let b = Metadata::builder("a", "bc", uri()).build();
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
    }

    #[test]
    fn sized_builder_for_virtual_content() {
        let m = Metadata::builder("x", "p", uri())
            .sized(1_000_000, 256 * 1024, Vec::new())
            .build();
        assert_eq!(m.piece_count(), 4);
    }

    #[test]
    fn wire_size_is_much_smaller_than_file() {
        let data = vec![0u8; 100_000];
        let m = Metadata::builder("x", "p", uri())
            .content(&data, 4096)
            .build();
        assert!((m.wire_size() as u64) < m.size() / 10);
    }

    #[test]
    fn display_mentions_name_and_uri() {
        let m = meta_with_content(&[0u8; 4]);
        let s = m.to_string();
        assert!(s.contains("FOX Evening News"));
        assert!(s.contains("mbt://fox/news-1"));
    }
}
