//! The MBT node state machine and contact-time exchange.
//!
//! Each node runs a file discovery process and a file download process
//! (paper §III-B). [`MbtNode`] holds one device's state — queries, metadata,
//! files, credits, popularity knowledge — and implements the Internet-session
//! behaviour of the hybrid DTN. [`run_contact`] implements what happens when
//! a clique of nodes meets: query distribution (full MBT), the two-phase
//! metadata broadcast (§IV), and the two-phase file broadcast (§V), under
//! either the cooperative or the tit-for-tat scheduler.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use dtn_routing::{AvailabilityDiffusion, EvictLowestScore, EvictionPolicy};
use dtn_sim::channel::frame_bytes;
use dtn_sim::telemetry::{Phase, PhaseTimes};
use dtn_trace::{NodeId, SimDuration, SimTime};

use crate::auth::KeyRegistry;
use crate::config::{CooperationMode, MbtConfig};
use crate::credit::CreditLedger;
use crate::discovery::receive_metadata;
use crate::download::{cooperative as dl_coop, tft as dl_tft, Broadcast, Offer};
use crate::metadata::Metadata;
use crate::popularity::Popularity;
use crate::protocol::{CachePolicy, PopularityScope, ProtocolSpec, ReplicationPolicy};
use crate::query::Query;
use crate::server::MetadataServer;
use crate::store::{FileStore, MetadataStore, QueryStore};
use crate::transport::{Carried, HelloFrame, SimTransport, Transport, WireMessage};
use crate::uri::Uri;

/// Where a stored item came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Downloaded directly from the Internet.
    Internet,
    /// Received from a DTN peer.
    Peer(NodeId),
}

/// Events a node emits as its stores change; the experiment runner drains
/// these to compute delivery ratios.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeEvent {
    /// New metadata entered the local store.
    MetadataStored {
        /// The metadata's URI.
        uri: Uri,
        /// Where it came from.
        from: Source,
    },
    /// A complete file entered the local store.
    FileCompleted {
        /// The file's URI.
        uri: Uri,
        /// Where it came from.
        from: Source,
    },
}

/// One mobile device participating in the hybrid DTN.
///
/// # Example
///
/// ```
/// use mbt_core::{MbtConfig, MbtNode, MetadataServer, Metadata, Popularity, ProtocolKind, Query, Uri};
/// use dtn_trace::{NodeId, SimTime};
///
/// let mut server = MetadataServer::new(1);
/// let uri = Uri::new("mbt://fox/news")?;
/// server.publish(Metadata::builder("FOX News", "FOX", uri.clone()).build(), Popularity::new(0.5));
///
/// let mut node = MbtNode::new(NodeId::new(0), ProtocolKind::Mbt, MbtConfig::new());
/// node.set_internet_access(true);
/// node.add_query(Query::new("fox news")?, None);
/// node.internet_session(&mut server, SimTime::ZERO);
/// assert!(node.has_metadata(&uri));
/// assert!(node.has_file(&uri));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MbtNode {
    id: NodeId,
    protocol: ProtocolSpec,
    config: MbtConfig,
    internet_access: bool,
    frequent_contacts: BTreeSet<NodeId>,
    queries: QueryStore,
    metadata: MetadataStore,
    files: FileStore,
    credits: CreditLedger,
    /// Best popularity observed per URI, with the URI's global expiry when
    /// the observation rode metadata (so dead URIs can be pruned).
    popularity: BTreeMap<Uri, (Popularity, Option<SimTime>)>,
    /// Locally-observed demand: how many times peers met in contacts have
    /// announced wanting each URI. Only populated under
    /// [`PopularityScope::Local`] cache ranking; always empty on the
    /// paper's triad.
    local_demand: BTreeMap<Uri, u32>,
    /// Smoothed per-URI availability estimates. Only populated under
    /// [`ReplicationPolicy::Diffusion`]; always empty on the paper's triad.
    availability: BTreeMap<Uri, f64>,
    key_registry: Option<KeyRegistry>,
    /// URIs whose metadata failed authentication, with their claimed expiry:
    /// never re-requested, so fakes cannot burn a broadcast slot at every
    /// contact.
    rejected: BTreeMap<Uri, Option<SimTime>>,
    events: Vec<NodeEvent>,
    /// Memoized [`wanted_uris`](MbtNode::wanted_uris) result, keyed by the
    /// store versions it was computed from. `RefCell` so reads stay `&self`;
    /// the node is never shared across threads while a contact mutates it.
    wanted_cache: RefCell<WantedCache>,
}

/// Cache cell for [`MbtNode::wanted_uris`]: valid while the metadata, file,
/// and own-query store versions all still match.
#[derive(Debug, Clone, Default)]
struct WantedCache {
    valid: bool,
    versions: (u64, u64, u64),
    uris: Vec<Uri>,
}

/// The compact residue of a node whose stores have fully decayed — see
/// [`MbtNode::extract_cold_state`]. A few dozen bytes instead of a resident
/// [`MbtNode`], which is what lets city-scale simulations keep only active
/// nodes in memory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColdNodeState {
    /// The node's own queries, in insertion order, with their expiries.
    pub queries: Vec<(Query, Option<SimTime>)>,
    /// The credit ledger's `(peer, credit)` entries in ascending peer id.
    pub credits: Vec<(NodeId, f64)>,
}

impl MbtNode {
    /// Creates a node without Internet access.
    ///
    /// `protocol` takes anything convertible to a [`ProtocolSpec`] — a spec
    /// itself, or a legacy [`ProtocolKind`](crate::ProtocolKind) (mapped to
    /// its canned spec).
    pub fn new(id: NodeId, protocol: impl Into<ProtocolSpec>, config: MbtConfig) -> Self {
        MbtNode {
            id,
            protocol: protocol.into(),
            config,
            internet_access: false,
            frequent_contacts: BTreeSet::new(),
            queries: QueryStore::new(),
            metadata: MetadataStore::new(),
            files: FileStore::new(),
            credits: CreditLedger::new(),
            popularity: BTreeMap::new(),
            local_demand: BTreeMap::new(),
            availability: BTreeMap::new(),
            key_registry: None,
            rejected: BTreeMap::new(),
            events: Vec::new(),
            wanted_cache: RefCell::new(WantedCache::default()),
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The protocol variant this node runs.
    pub fn protocol(&self) -> ProtocolSpec {
        self.protocol
    }

    /// The node's configuration.
    pub fn config(&self) -> &MbtConfig {
        &self.config
    }

    /// Whether this node can reach the Internet.
    pub fn is_internet_access(&self) -> bool {
        self.internet_access
    }

    /// Marks the node as an Internet-access node.
    pub fn set_internet_access(&mut self, access: bool) {
        self.internet_access = access;
    }

    /// Declares the node's frequent contacting nodes (paper §VI-A), whose
    /// queries it will collect metadata for under full MBT.
    pub fn set_frequent_contacts<I: IntoIterator<Item = NodeId>>(&mut self, peers: I) {
        self.frequent_contacts = peers.into_iter().collect();
    }

    /// The node's frequent contacting nodes.
    pub fn frequent_contacts(&self) -> &BTreeSet<NodeId> {
        &self.frequent_contacts
    }

    /// Installs a publisher key registry: metadata received from DTN peers
    /// that fails authentication (paper §III-B item f — "authentication
    /// information of the metadata against fake publishers") is rejected on
    /// receipt. Metadata from the trusted Internet server is not re-checked.
    pub fn set_key_registry(&mut self, registry: KeyRegistry) {
        self.key_registry = Some(registry);
    }

    /// The installed key registry, if any.
    pub fn key_registry(&self) -> Option<&KeyRegistry> {
        self.key_registry.as_ref()
    }

    /// True if `metadata` is acceptable under this node's authentication
    /// policy (always true without a registry).
    pub fn accepts_metadata(&self, metadata: &Metadata) -> bool {
        match &self.key_registry {
            None => true,
            Some(registry) => registry.verify(metadata).is_ok(),
        }
    }

    /// True if the node has blacklisted `uri` after an authentication
    /// failure.
    pub fn has_rejected(&self, uri: &Uri) -> bool {
        self.rejected.contains_key(uri)
    }

    fn reject(&mut self, metadata: &Metadata) {
        self.rejected
            .insert(metadata.uri().clone(), metadata.expires());
    }

    /// Seeds the node with content obtained out-of-band: the metadata (and,
    /// when `with_file` is set, the complete file). Authentication is *not*
    /// checked — this models content the device already has, including the
    /// forged advertisements a malicious node plants.
    pub fn seed_content(&mut self, metadata: Metadata, popularity: Popularity, with_file: bool) {
        let uri = metadata.uri().clone();
        let expires = metadata.expires();
        self.note_popularity_until(&uri, popularity, expires);
        if self.metadata.insert(metadata) {
            self.events.push(NodeEvent::MetadataStored {
                uri: uri.clone(),
                from: Source::Internet,
            });
        }
        if with_file && self.try_store_file(uri.clone(), expires) {
            self.events.push(NodeEvent::FileCompleted {
                uri,
                from: Source::Internet,
            });
        }
    }

    /// Adds a user query with an optional expiry; returns `true` if new.
    pub fn add_query(&mut self, query: Query, expires: Option<SimTime>) -> bool {
        self.queries.add_own(query, expires)
    }

    /// The node's own active query strings.
    pub fn own_queries(&self) -> Vec<Query> {
        self.queries.own().map(|e| e.query().clone()).collect()
    }

    /// Number of stored queries (own + collected for others).
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// True if metadata for `uri` is stored.
    pub fn has_metadata(&self, uri: &Uri) -> bool {
        self.metadata.contains(uri)
    }

    /// True if the complete file at `uri` is stored.
    pub fn has_file(&self, uri: &Uri) -> bool {
        self.files.contains(uri)
    }

    /// Number of stored metadata records.
    pub fn metadata_count(&self) -> usize {
        self.metadata.len()
    }

    /// Number of stored complete files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// The node's credit ledger (tit-for-tat state).
    pub fn credits(&self) -> &CreditLedger {
        &self.credits
    }

    /// The popularity the node believes `uri` has (0 if unknown).
    pub fn known_popularity(&self, uri: &Uri) -> Popularity {
        self.popularity
            .get(uri)
            .map(|&(p, _)| p)
            .unwrap_or(Popularity::MIN)
    }

    /// Records a popularity observation with no known expiry, keeping the
    /// maximum seen. The entry is never pruned; prefer
    /// [`note_popularity_until`](Self::note_popularity_until) when the
    /// observation rides metadata carrying the URI's lifetime.
    pub fn note_popularity(&mut self, uri: &Uri, p: Popularity) {
        self.note_popularity_until(uri, p, None);
    }

    /// Records a popularity observation for a URI that expires at
    /// `expires`, keeping the maximum popularity (and the latest expiry)
    /// seen. Once every observation's expiry has passed,
    /// [`prune`](Self::prune) drops the entry: an expired URI is never advertised,
    /// requested, or ranked again, so forgetting its popularity is
    /// unobservable — and it is what lets long simulations evict nodes
    /// whose state has fully decayed.
    pub fn note_popularity_until(&mut self, uri: &Uri, p: Popularity, expires: Option<SimTime>) {
        let entry = self
            .popularity
            .entry(uri.clone())
            .or_insert((Popularity::MIN, expires));
        if p > entry.0 {
            entry.0 = p;
        }
        entry.1 = match (entry.1, expires) {
            (Some(a), Some(b)) => Some(a.max(b)),
            // `None` means "no known lifetime": never prune.
            _ => None,
        };
    }

    /// URIs the node wants to download: it has metadata matching one of its
    /// own queries but not the file (the "downloading files" of the hello
    /// message, §III-B).
    ///
    /// Answered from a memoized cache that stays valid until one of the
    /// metadata, file, or own-query stores mutates; a recompute is one
    /// inverted-index lookup per own query instead of a full-store scan.
    pub fn wanted_uris(&self) -> Vec<Uri> {
        self.wanted_uris_cached().0
    }

    /// [`wanted_uris`](Self::wanted_uris) plus whether the memoized list was
    /// served without recomputation (the contact loop counts hits).
    fn wanted_uris_cached(&self) -> (Vec<Uri>, bool) {
        let versions = (
            self.metadata.version(),
            self.files.version(),
            self.queries.own_version(),
        );
        let mut cache = self.wanted_cache.borrow_mut();
        if cache.valid && cache.versions == versions {
            return (cache.uris.clone(), true);
        }
        let mut wanted: BTreeSet<Uri> = BTreeSet::new();
        for entry in self.queries.own() {
            for uri in self.metadata.matching_uris(entry.query()) {
                if !self.files.contains(uri) {
                    wanted.insert(uri.clone());
                }
            }
        }
        cache.uris = wanted.into_iter().collect();
        cache.versions = versions;
        cache.valid = true;
        (cache.uris.clone(), false)
    }

    /// Drops expired metadata, files, queries, popularity observations, and
    /// rejection records.
    pub fn prune(&mut self, now: SimTime) {
        self.metadata.prune_expired(now);
        self.files.prune_expired(now);
        self.queries.prune_expired(now);
        self.popularity
            .retain(|_, &mut (_, expires)| expires.is_none_or(|e| now < e));
        self.rejected
            .retain(|_, expires| !expires.is_some_and(|e| now >= e));
    }

    /// Drains accumulated [`NodeEvent`]s.
    pub fn drain_events(&mut self) -> Vec<NodeEvent> {
        std::mem::take(&mut self.events)
    }

    /// If the node's state has decayed to nothing beyond its own queries
    /// and credit history — no stored metadata or files, no popularity
    /// observations, no rejection records, no collected foreign queries, no
    /// undrained events — returns that compact residue; otherwise `None`.
    ///
    /// A cold node is behaviourally identical to a fresh [`MbtNode`] (with
    /// the same access flag, frequent contacts, and key registry) that
    /// re-adds the returned queries in order and restores the ledger via
    /// [`restore_credits`](Self::restore_credits): construction draws no
    /// randomness, [`add_query`](Self::add_query) dedups by text keeping
    /// the first entry, [`CreditLedger::from_entries`] round-trips
    /// [`CreditLedger::entries`] exactly, and both contacts and Internet
    /// sessions prune before acting, so even an expired entry is dropped at
    /// the same observable instant either way. Large simulations rely on
    /// this to evict cold nodes (keeping only this residue) and rebuild
    /// them on demand.
    pub fn extract_cold_state(&self) -> Option<ColdNodeState> {
        let cold = self.metadata.is_empty()
            && self.files.is_empty()
            && self.popularity.is_empty()
            && self.local_demand.is_empty()
            && self.availability.is_empty()
            && self.rejected.is_empty()
            && self.events.is_empty()
            && self.queries.foreign().next().is_none();
        cold.then(|| ColdNodeState {
            queries: self
                .queries
                .own()
                .map(|e| (e.query().clone(), e.expires()))
                .collect(),
            credits: self.credits.entries().collect(),
        })
    }

    /// Overwrites the credit ledger — the restore half of the
    /// [`extract_cold_state`](Self::extract_cold_state) contract.
    pub fn restore_credits(&mut self, entries: Vec<(NodeId, f64)>) {
        self.credits = CreditLedger::from_entries(entries);
    }

    /// True if the node holds metadata for `uri` matching one of its own
    /// queries — such a file is *protected*: a bounded cache never evicts it
    /// and always admits it.
    fn matches_own_query(&self, uri: &Uri) -> bool {
        self.metadata.get(uri).is_some_and(|m| {
            self.queries
                .own()
                .any(|e| e.query().matches_token_set(m.token_set()))
        })
    }

    /// The ranking score a bounded cache uses for `uri` under `scope`.
    fn cache_score(&self, uri: &Uri, scope: PopularityScope) -> f64 {
        match scope {
            PopularityScope::Global => self.known_popularity(uri).value(),
            PopularityScope::Local => f64::from(self.local_demand.get(uri).copied().unwrap_or(0)),
        }
    }

    /// Stores a complete file through the cache policy; returns `true` if it
    /// was newly stored.
    ///
    /// Under [`CachePolicy::Unbounded`] this is exactly a
    /// [`FileStore::insert`]. Under [`CachePolicy::PopularityRanked`] a full
    /// buffer first picks a victim (via the shared
    /// [`dtn_routing::EvictLowestScore`] seam) among the held files *not*
    /// matching the node's own queries: if there is none, or the incoming
    /// file is unwanted and scores no higher than the victim, the incoming
    /// file is refused instead. A file the node's own user wants is always
    /// admitted over the victim; a file being downloaded (wanted) is never
    /// the victim — which is what the crate's proptests pin.
    pub fn try_store_file(&mut self, uri: Uri, expires: Option<SimTime>) -> bool {
        if let CachePolicy::PopularityRanked { capacity, scope } = self.protocol.cache() {
            if !self.files.contains(&uri) && self.files.len() >= capacity as usize {
                let candidates: Vec<(Uri, f64)> = self
                    .files
                    .iter()
                    .filter(|held| !self.matches_own_query(held))
                    .map(|held| (held.clone(), self.cache_score(held, scope)))
                    .collect();
                let Some(victim) = EvictLowestScore.pick_victim(&candidates) else {
                    return false;
                };
                if !self.matches_own_query(&uri) {
                    let victim_score = self.cache_score(&victim, scope);
                    if self.cache_score(&uri, scope) <= victim_score {
                        return false;
                    }
                }
                self.files.remove(&victim);
            }
        }
        self.files.insert(uri, expires)
    }

    /// Stores metadata received from the Internet; returns `true` if new.
    fn store_metadata_from_internet(
        &mut self,
        metadata: &Metadata,
        popularity: Popularity,
    ) -> bool {
        self.note_popularity_until(metadata.uri(), popularity, metadata.expires());
        if self.metadata.insert(metadata.clone()) {
            self.events.push(NodeEvent::MetadataStored {
                uri: metadata.uri().clone(),
                from: Source::Internet,
            });
            true
        } else {
            false
        }
    }

    /// Runs one Internet session (paper §III-A, §IV): the node connects —
    /// e.g. through a free WiFi access point — sends its query strings to the
    /// metadata server, downloads the best-matched metadata and the files it
    /// needs, collects metadata for the queries it holds on behalf of its
    /// frequent contacts (full MBT), and pulls popular metadata for later
    /// push-distribution (MBT and MBT-Q).
    ///
    /// Does nothing unless [`MbtNode::is_internet_access`] is true.
    pub fn internet_session(&mut self, server: &mut MetadataServer, now: SimTime) {
        if !self.internet_access {
            return;
        }
        self.prune(now);
        let limit = self.config.internet_search_limit_value() as usize;

        // Own queries: fetch matching metadata, then download the files.
        let own: Vec<Query> = self.own_queries();
        for query in &own {
            let matches: Vec<(Metadata, Popularity)> = server
                .search(query, limit)
                .into_iter()
                .filter(|m| !m.is_expired(now))
                .map(|m| (m.clone(), server.popularity_of(m.uri())))
                .collect();
            for (meta, pop) in &matches {
                self.store_metadata_from_internet(meta, *pop);
            }
            // The user selects the best match and downloads it; the request
            // feeds the server's popularity estimator.
            if let Some((best, _)) = matches.first() {
                let uri = best.uri().clone();
                server.record_request(&uri, self.id, now);
                let expires = best.expires();
                if self.try_store_file(uri.clone(), expires) {
                    self.events.push(NodeEvent::FileCompleted {
                        uri,
                        from: Source::Internet,
                    });
                }
            }
        }

        // Queries collected for frequent contacts (full MBT): fetch their
        // metadata to carry into the DTN. Files are not downloaded for them.
        if self.protocol.distributes_queries() {
            let foreign: Vec<Query> = self
                .queries
                .foreign()
                .map(|(_, e)| e.query().clone())
                .collect();
            for query in &foreign {
                let matches: Vec<(Metadata, Popularity)> = server
                    .search(query, limit)
                    .into_iter()
                    .filter(|m| !m.is_expired(now))
                    .map(|m| (m.clone(), server.popularity_of(m.uri())))
                    .collect();
                for (meta, pop) in &matches {
                    self.store_metadata_from_internet(meta, *pop);
                }
            }
        }

        // Push phase: pull the most popular metadata for later distribution.
        if self.protocol.distributes_metadata() {
            let popular: Vec<(Metadata, Popularity)> = server
                .most_popular(self.config.internet_push_metadata_value() as usize, now)
                .into_iter()
                .map(|m| (m.clone(), server.popularity_of(m.uri())))
                .collect();
            for (meta, pop) in &popular {
                self.store_metadata_from_internet(meta, *pop);
            }
        }

        // Refresh popularity knowledge for everything we hold.
        let held: Vec<(Uri, Option<SimTime>)> = self
            .metadata
            .iter()
            .map(|m| (m.uri().clone(), m.expires()))
            .collect();
        for (uri, expires) in held {
            let p = server.popularity_of(&uri);
            self.note_popularity_until(&uri, p, expires);
        }
    }
}

/// Summary of one contact's broadcasts.
///
/// Every field is a deterministic count of the contact's event stream — the
/// observability layer (`dtn_sim::telemetry`) aggregates these into run- and
/// sweep-level [`dtn_sim::telemetry::Counters`] without perturbing the
/// simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContactReport {
    /// Metadata broadcasts transmitted.
    pub metadata_broadcasts: usize,
    /// File broadcasts transmitted.
    pub file_broadcasts: usize,
    /// Queries newly stored for frequent contacts.
    pub queries_distributed: usize,
    /// Receptions that failed because the broadcast frame was lost
    /// (fault injection; 0 without a loss plan).
    pub frames_lost: usize,
    /// File receptions discarded because checksum verification caught
    /// corrupted pieces (fault injection; 0 without a corruption plan).
    pub corrupt_receptions: usize,
    /// Hello beacons exchanged: one per participating member (the snapshot
    /// each member advertises at contact start).
    pub hello_exchanges: usize,
    /// Metadata records newly stored by receivers during this contact,
    /// including metadata riding along with file broadcasts.
    pub metadata_received: usize,
    /// File pieces successfully received as parts of completed file
    /// broadcasts.
    pub pieces_received: usize,
    /// Application bytes successfully moved to receivers (metadata wire
    /// bytes plus file content bytes, plus per-frame overhead).
    pub bytes_moved: u64,
    /// Hello snapshots whose wanted-URI list was served from the node's
    /// memoized cache without recomputation. Purely observational: the list
    /// itself is identical either way.
    pub wanted_cache_hits: usize,
    /// Inverted-index lookups performed during the contact: one per own
    /// query when a wanted-URI list is recomputed on a cache miss, plus one
    /// per (member store, relevant query) pair when the metadata phase
    /// resolves requesters. Deterministic — a pure function of the contact's
    /// inputs, never of timing.
    pub index_lookups: usize,
}

impl ContactReport {
    /// Broadcast frames transmitted in this contact (metadata plus file
    /// broadcasts).
    pub fn frames_sent(&self) -> usize {
        self.metadata_broadcasts + self.file_broadcasts
    }
}

/// Per-member snapshot taken at the start of a contact.
#[derive(Debug, Clone)]
struct MemberSnapshot {
    id: NodeId,
    own_queries: Vec<(Query, Option<SimTime>)>,
    relevant_queries: Vec<Query>,
    wanted: BTreeSet<Uri>,
    /// URIs this member blacklisted after authentication failures (carried
    /// in its hello so peers stop offering them).
    rejected: BTreeSet<Uri>,
    frequent: BTreeSet<NodeId>,
    ledger: CreditLedger,
}

/// Runs one contact among the nodes at `members` (indices into `nodes`).
///
/// Implements the paper's contact behaviour: hello exchange (implicit in the
/// snapshot), query distribution to frequent contacts (full MBT), the
/// two-phase metadata broadcast (unless the protocol disables standalone
/// metadata), and the two-phase file broadcast — in that order when
/// `discovery_first` is set, since short pedestrian contacts should be spent
/// on small metadata first (§V).
///
/// All members must run the same protocol variant and cooperation mode.
///
/// # Panics
///
/// Panics if `members` contains an out-of-range or duplicate index, or if
/// members disagree on protocol/cooperation mode.
pub fn run_contact(
    nodes: &mut [MbtNode],
    members: &[usize],
    now: SimTime,
    duration: SimDuration,
) -> ContactReport {
    let mut scratch = PhaseTimes::default();
    run_contact_timed(nodes, members, now, duration, &mut scratch)
}

/// [`run_contact`] with phase timing: the metadata-broadcast phase is charged
/// to [`Phase::Discovery`] and the file-broadcast phase to
/// [`Phase::Download`] in `phases`. Timing is observational only — the
/// returned report and every node's state are byte-identical to an untimed
/// [`run_contact`].
///
/// # Panics
///
/// Same conditions as [`run_contact`].
pub fn run_contact_timed(
    nodes: &mut [MbtNode],
    members: &[usize],
    now: SimTime,
    duration: SimDuration,
    phases: &mut PhaseTimes,
) -> ContactReport {
    let mut transport = SimTransport::new();
    run_contact_via(&mut transport, nodes, members, now, duration, phases)
}

/// [`run_contact_timed`] over an explicit [`Transport`] backend.
///
/// The contact's message flow — hello exchange to the clique coordinator
/// (§V elects one; the lowest id here), query shares, metadata broadcasts,
/// file broadcasts — goes through `transport` as [`WireMessage`]s. With
/// [`SimTransport`] every carry is an in-process move and this function is
/// byte-identical to the pre-seam contact loop; with
/// [`BusTransport`](crate::transport::BusTransport) every message
/// round-trips its serialized frame. A [`Carried::Dropped`] outcome counts
/// as a lost frame (a dropped hello removes that member from the contact),
/// and frames left in flight at contact close are added to the same counter
/// by [`leave`](Transport::leave).
///
/// Frame emission order is deterministic: every collection iterated on this
/// path — member snapshots, the metadata/file catalogs, broadcast schedules
/// — is a `Vec`, `BTreeMap`, or `BTreeSet`, never a hash map, so the carry
/// sequence is a pure function of member state. (Audited 2026-08: the only
/// `HashMap` near the contact path is documented scratch space in
/// `server/shard.rs` that never reaches iteration order into results.)
/// `tests/transport_equivalence.rs` pins the exact sequence.
///
/// # Panics
///
/// Same conditions as [`run_contact`].
pub fn run_contact_via(
    transport: &mut dyn Transport,
    nodes: &mut [MbtNode],
    members: &[usize],
    now: SimTime,
    duration: SimDuration,
    phases: &mut PhaseTimes,
) -> ContactReport {
    let mut report = ContactReport::default();
    if members.len() < 2 {
        return report;
    }
    {
        let mut seen = BTreeSet::new();
        for &idx in members {
            assert!(idx < nodes.len(), "member index {idx} out of range");
            assert!(seen.insert(idx), "duplicate member index {idx}");
        }
    }
    let protocol = nodes[members[0]].protocol;
    let config = nodes[members[0]].config.clone();
    for &idx in members {
        assert_eq!(
            nodes[idx].protocol, protocol,
            "mixed protocols in one contact"
        );
        assert_eq!(
            nodes[idx].config.cooperation_value(),
            config.cooperation_value(),
            "mixed cooperation modes in one contact"
        );
        nodes[idx].prune(now);
    }

    // --- Hello: every member advertises its state to the clique
    // coordinator (§V: the lowest id). The coordinator's own hello is
    // local; every other member's is carried as a frame, and a dropped
    // hello removes that member from the contact. ---
    let all_ids: Vec<NodeId> = members.iter().map(|&idx| nodes[idx].id).collect();
    transport.join(now, &all_ids);
    let coordinator = *all_ids.iter().min().expect("members is non-empty");

    let mut alive: Vec<usize> = Vec::with_capacity(members.len());
    let mut snapshots: Vec<MemberSnapshot> = Vec::with_capacity(members.len());
    for &idx in members {
        let hello = build_hello(&nodes[idx], protocol, &mut report);
        let sender = nodes[idx].id;
        let delivered = if sender == coordinator {
            Some(hello)
        } else {
            match transport.carry(now, sender, coordinator, WireMessage::Hello(hello)) {
                Carried::Delivered(WireMessage::Hello(h)) => Some(h),
                Carried::Delivered(_) | Carried::Dropped => None,
            }
        };
        match delivered {
            Some(h) => {
                alive.push(idx);
                snapshots.push(snapshot_from_hello(h));
            }
            None => report.frames_lost += 1,
        }
    }
    let members = &alive[..];
    report.hello_exchanges = snapshots.len();
    if members.len() < 2 {
        report.frames_lost += transport.leave(now, &all_ids);
        return report;
    }

    // Clique-wide catalogs (metadata and complete files), with holders.
    let mut metadata_catalog: BTreeMap<Uri, (Metadata, Popularity, Vec<NodeId>)> = BTreeMap::new();
    let mut file_catalog: BTreeMap<Uri, Vec<NodeId>> = BTreeMap::new();
    for &idx in members {
        let n = &nodes[idx];
        for m in n.metadata.iter() {
            let pop = n.known_popularity(m.uri());
            let entry = metadata_catalog
                .entry(m.uri().clone())
                .or_insert_with(|| (m.clone(), pop, Vec::new()));
            if pop > entry.1 {
                entry.1 = pop;
            }
            entry.2.push(n.id);
        }
        for uri in n.files.iter() {
            file_catalog.entry(uri.clone()).or_default().push(n.id);
        }
    }

    let member_ids: Vec<NodeId> = snapshots.iter().map(|s| s.id).collect();
    let index_of = |id: NodeId| -> usize {
        members[member_ids
            .iter()
            .position(|&m| m == id)
            .expect("sender is a member")]
    };

    // --- Locally-observed demand (PopCache's Local scope only): each member
    // counts how often the peers it meets announce wanting a URI. On any
    // other cache policy this block is a no-op, keeping the paper's triad
    // structurally untouched. ---
    if let CachePolicy::PopularityRanked {
        scope: PopularityScope::Local,
        ..
    } = protocol.cache()
    {
        for &idx in members {
            let me = nodes[idx].id;
            for snap in &snapshots {
                if snap.id == me {
                    continue;
                }
                for uri in &snap.wanted {
                    *nodes[idx].local_demand.entry(uri.clone()).or_insert(0) += 1;
                }
            }
        }
    }

    // --- Availability diffusion (DiffuseRep only): every member smooths its
    // per-URI availability estimate toward the fraction of clique members
    // holding the file, then files observed scarce gain proactive
    // requesters — members lacking them whose estimate sits below the
    // threshold. The file phase folds these into its offers, so the
    // existing requested-before-popular scheduler prioritises scarce files
    // with no scheduler changes. Empty on every other replication policy.
    // ---
    let mut proactive: BTreeMap<Uri, Vec<NodeId>> = BTreeMap::new();
    if let ReplicationPolicy::Diffusion {
        smoothing_pct,
        threshold_pct,
    } = protocol.replication()
    {
        let diffusion = AvailabilityDiffusion::new(
            f64::from(smoothing_pct.max(1)) / 100.0,
            f64::from(threshold_pct) / 100.0,
        );
        let clique = members.len() as f64;
        let observed: Vec<(Uri, f64)> = metadata_catalog
            .keys()
            .chain(file_catalog.keys())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .map(|uri| {
                let holders = file_catalog.get(uri).map_or(0, Vec::len) as f64;
                (uri.clone(), holders / clique)
            })
            .collect();
        for &idx in members {
            for (uri, seen) in &observed {
                let estimate = nodes[idx].availability.entry(uri.clone()).or_insert(0.0);
                *estimate = diffusion.update(*estimate, *seen);
            }
        }
        for (uri, holders) in &file_catalog {
            let requesters: Vec<NodeId> = members
                .iter()
                .zip(&snapshots)
                .filter(|(_, s)| !holders.contains(&s.id) && !s.rejected.contains(uri))
                .filter(|(&idx, _)| {
                    let estimate = nodes[idx].availability.get(uri).copied().unwrap_or(0.0);
                    diffusion.is_scarce(estimate)
                })
                .map(|(_, s)| s.id)
                .collect();
            if !requesters.is_empty() {
                proactive.insert(uri.clone(), requesters);
            }
        }
    }
    let proactive = proactive;

    // --- Query distribution (full MBT, §IV): frequent contacts store each
    // other's queries so they can collect metadata while apart. ---
    if protocol.distributes_queries() {
        for (i, &idx) in members.iter().enumerate() {
            for (j, snap) in snapshots.iter().enumerate() {
                if i == j || !snapshots[i].frequent.contains(&snap.id) {
                    continue;
                }
                for (query, expires) in &snap.own_queries {
                    let share = WireMessage::QueryShare {
                        owner: snap.id,
                        query: query.clone(),
                        expires: *expires,
                    };
                    match transport.carry(now, snap.id, snapshots[i].id, share) {
                        Carried::Delivered(WireMessage::QueryShare {
                            owner,
                            query,
                            expires,
                        }) => {
                            if nodes[idx].queries.add_foreign(owner, query, expires) {
                                report.queries_distributed += 1;
                            }
                        }
                        Carried::Delivered(_) => {}
                        Carried::Dropped => report.frames_lost += 1,
                    }
                }
            }
        }
    }

    // Failure injection (see `dtn_sim::faults`): every roll is a pure
    // function of the plan seed and the event's coordinates. Truncation
    // shrinks both the contact's effective duration (the file-phase gate)
    // and its transfer budgets by the same surviving fraction; a plan with
    // truncation off keeps both exactly as configured.
    let faults = config.faults_value();
    let keep = faults.contact_keep(now, &member_ids);
    let effective_duration = faults.truncated_duration(now, &member_ids, duration);
    let metadata_slots =
        dtn_sim::channel::truncated_budget(config.metadata_per_contact_value(), keep) as usize;
    let file_slots =
        dtn_sim::channel::truncated_budget(config.files_per_contact_value(), keep) as usize;
    let frame_lost = |sender: NodeId, receiver: NodeId, item: &Uri| -> bool {
        faults.frame_lost(now, sender, receiver, item.as_str())
    };

    // --- Phase closures. ---
    let metadata_phase =
        |transport: &mut dyn Transport, nodes: &mut [MbtNode], report: &mut ContactReport| {
            if !protocol.distributes_metadata() {
                return;
            }
            // Index-backed requester matching (the §IV-A hot loop): probe each
            // member store's inverted index once per relevant query instead of
            // re-matching every catalog record against every query string. The
            // catalog is a union of the member stores, and stores only grow
            // between the hello snapshot and this phase, so membership of a
            // catalog URI in the union of lookups is exactly "some member holds
            // a record whose tokens satisfy the query".
            let matched: Vec<BTreeSet<Uri>> = snapshots
                .iter()
                .map(|s| {
                    let mut set = BTreeSet::new();
                    for q in &s.relevant_queries {
                        for &idx in members {
                            report.index_lookups += 1;
                            for uri in nodes[idx].metadata.matching_uris(q) {
                                set.insert(uri.clone());
                            }
                        }
                    }
                    set
                })
                .collect();
            let offers: Vec<Offer<Uri>> = metadata_catalog
                .iter()
                .filter(|(uri, (_, _, holders))| {
                    // Skip metadata every member already holds or has rejected.
                    // A member holds a catalog record iff it is listed as a
                    // holder, so the probe is a scan of at most `members` ids.
                    snapshots
                        .iter()
                        .any(|s| !holders.contains(&s.id) && !s.rejected.contains(uri))
                })
                .map(|(uri, (_, pop, holders))| {
                    let requesters: Vec<NodeId> = snapshots
                        .iter()
                        .zip(&matched)
                        .filter(|(s, m)| {
                            m.contains(uri) && !holders.contains(&s.id) && !s.rejected.contains(uri)
                        })
                        .map(|(s, _)| s.id)
                        .collect();
                    Offer::new(uri.clone(), *pop, requesters, holders.clone())
                })
                .collect();
            let schedule =
                schedule_broadcasts(&config, &member_ids, &snapshots, offers, metadata_slots);
            for b in &schedule {
                let (meta, pop, _) = &metadata_catalog[&b.item];
                report.metadata_broadcasts += 1;
                for &idx in members {
                    let receiver_id = nodes[idx].id;
                    if receiver_id == b.sender {
                        continue;
                    }
                    if frame_lost(b.sender, receiver_id, &b.item) {
                        report.frames_lost += 1;
                        continue;
                    }
                    let carried = transport.carry(
                        now,
                        b.sender,
                        receiver_id,
                        WireMessage::Metadata {
                            metadata: meta.clone(),
                            popularity: *pop,
                        },
                    );
                    let (metadata, popularity) = match carried {
                        Carried::Delivered(WireMessage::Metadata {
                            metadata,
                            popularity,
                        }) => (metadata, popularity),
                        Carried::Delivered(_) => continue,
                        Carried::Dropped => {
                            report.frames_lost += 1;
                            continue;
                        }
                    };
                    let receiver = &mut nodes[idx];
                    if !receiver.accepts_metadata(&metadata) {
                        // Fake-publisher rejection (§III-B item f): blacklist the
                        // URI so it is never requested again.
                        receiver.reject(&metadata);
                        continue;
                    }
                    receiver.note_popularity_until(metadata.uri(), popularity, metadata.expires());
                    report.bytes_moved += frame_bytes(metadata.wire_size() as u64);
                    let own = receiver.own_queries();
                    let outcome = receive_metadata(
                        &mut receiver.metadata,
                        &own,
                        &metadata,
                        popularity,
                        b.sender,
                        Some(&mut receiver.credits),
                    );
                    if outcome != crate::discovery::ReceiveOutcome::Duplicate {
                        report.metadata_received += 1;
                        receiver.events.push(NodeEvent::MetadataStored {
                            uri: metadata.uri().clone(),
                            from: Source::Peer(b.sender),
                        });
                    }
                }
            }
        };

    let file_phase = |transport: &mut dyn Transport,
                      nodes: &mut [MbtNode],
                      report: &mut ContactReport| {
        if effective_duration.as_secs() < config.min_download_contact_secs_value() {
            return;
        }
        let offers: Vec<Offer<Uri>> = file_catalog
            .iter()
            .filter(|(uri, holders)| {
                // Skip files every member already holds or refuses (holder
                // lists play the role the hello's URI inventory used to).
                snapshots
                    .iter()
                    .any(|s| !holders.contains(&s.id) && !s.rejected.contains(uri))
            })
            .map(|(uri, holders)| {
                // A member requests a file it wants (announced as a
                // "downloading URI" in its hello) and does not hold. Under
                // MBT-QM nobody can announce wants — nodes have no standalone
                // metadata — so all offers fall to the popularity phase.
                let mut requesters: Vec<NodeId> = if protocol.distributes_metadata() {
                    snapshots
                        .iter()
                        .filter(|s| s.wanted.contains(uri) && !holders.contains(&s.id))
                        .map(|s| s.id)
                        .collect()
                } else {
                    Vec::new()
                };
                if requesters.is_empty() {
                    // Diffusion seeding: scarce files nobody asked for are
                    // still pulled by the members estimating them scarce.
                    if let Some(extra) = proactive.get(uri) {
                        requesters = extra.clone();
                    }
                }
                let pop = metadata_catalog
                    .get(uri)
                    .map(|(_, p, _)| *p)
                    .unwrap_or(Popularity::MIN);
                Offer::new(uri.clone(), pop, requesters, holders.clone())
            })
            .collect();
        let schedule = schedule_broadcasts(&config, &member_ids, &snapshots, offers, file_slots);
        for b in &schedule {
            report.file_broadcasts += 1;
            // The file's metadata rides along with the file (as in prior
            // content-distribution systems, and necessary for verification).
            let meta_entry = metadata_catalog.get(&b.item).cloned().or_else(|| {
                let holder = &nodes[index_of(b.sender)];
                holder
                    .metadata
                    .get(&b.item)
                    .map(|m| (m.clone(), holder.known_popularity(&b.item), Vec::new()))
            });
            for &idx in members {
                let receiver_id = nodes[idx].id;
                if receiver_id == b.sender || nodes[idx].files.contains(&b.item) {
                    continue;
                }
                if frame_lost(b.sender, receiver_id, &b.item) {
                    report.frames_lost += 1;
                    continue;
                }
                if faults.corrupts(now, b.sender, receiver_id, b.item.as_str()) {
                    // The pieces arrived mangled: checksum verification (see
                    // `Metadata::verify_piece`) catches them, nothing is
                    // stored, and no credit is awarded — the file stays
                    // wanted and is re-fetched at a later contact.
                    report.corrupt_receptions += 1;
                    continue;
                }
                let carried = transport.carry(
                    now,
                    b.sender,
                    receiver_id,
                    WireMessage::FileBroadcast {
                        uri: b.item.clone(),
                        metadata: meta_entry.as_ref().map(|(m, p, _)| (m.clone(), *p)),
                    },
                );
                let (uri, riding) = match carried {
                    Carried::Delivered(WireMessage::FileBroadcast { uri, metadata }) => {
                        (uri, metadata)
                    }
                    Carried::Delivered(_) => continue,
                    Carried::Dropped => {
                        report.frames_lost += 1;
                        continue;
                    }
                };
                let receiver = &mut nodes[idx];
                let mut expires = None;
                if let Some((meta, pop)) = &riding {
                    if !receiver.accepts_metadata(meta) {
                        // A file whose riding metadata fails authentication
                        // is an unverifiable fake: refuse it and blacklist.
                        receiver.reject(meta);
                        continue;
                    }
                    expires = meta.expires();
                    receiver.note_popularity_until(&uri, *pop, expires);
                    if receiver.metadata.insert(meta.clone()) {
                        // Metadata riding a file frame: no extra frame
                        // header, just its wire bytes.
                        report.metadata_received += 1;
                        report.bytes_moved += meta.wire_size() as u64;
                        receiver.events.push(NodeEvent::MetadataStored {
                            uri: uri.clone(),
                            from: Source::Peer(b.sender),
                        });
                    }
                }
                let wanted = {
                    let own = receiver.own_queries();
                    receiver
                        .metadata
                        .get(&uri)
                        .map(|m| own.iter().any(|q| q.matches_token_set(m.token_set())))
                        .unwrap_or(false)
                };
                if receiver.try_store_file(uri.clone(), expires) {
                    let (pieces, content_bytes) = riding
                        .as_ref()
                        .map(|(m, _)| (m.piece_count() as usize, m.size()))
                        .unwrap_or((1, 0));
                    report.pieces_received += pieces;
                    report.bytes_moved += frame_bytes(content_bytes);
                    receiver.events.push(NodeEvent::FileCompleted {
                        uri: uri.clone(),
                        from: Source::Peer(b.sender),
                    });
                    // §V-B: file download reuses the metadata credit rule.
                    if wanted {
                        receiver.credits.reward_matched(b.sender);
                    } else {
                        let pop = receiver.known_popularity(&uri);
                        receiver.credits.reward_unmatched(b.sender, pop);
                    }
                }
            }
        }
    };

    // Wall-clock spans are observational: they are charged to the caller's
    // `phases` and never read back, so timing cannot perturb the contact.
    if config.discovery_first_value() {
        phases.time(Phase::Discovery, || {
            metadata_phase(&mut *transport, nodes, &mut report)
        });
        phases.time(Phase::Download, || {
            file_phase(&mut *transport, nodes, &mut report)
        });
    } else {
        phases.time(Phase::Download, || {
            file_phase(&mut *transport, nodes, &mut report)
        });
        phases.time(Phase::Discovery, || {
            metadata_phase(&mut *transport, nodes, &mut report)
        });
    }
    report.frames_lost += transport.leave(now, &all_ids);
    report
}

/// Builds one member's hello frame, charging the wanted-set lookup to the
/// report exactly as the pre-seam snapshot did.
fn build_hello(n: &MbtNode, protocol: ProtocolSpec, report: &mut ContactReport) -> HelloFrame {
    let own_queries: Vec<(Query, Option<SimTime>)> = n
        .queries
        .own()
        .map(|e| (e.query().clone(), e.expires()))
        .collect();
    let foreign_queries: Vec<Query> = if protocol.distributes_queries() {
        n.queries
            .foreign()
            .map(|(_, e)| e.query().clone())
            .collect()
    } else {
        Vec::new()
    };
    let (wanted, cache_hit) = n.wanted_uris_cached();
    if cache_hit {
        report.wanted_cache_hits += 1;
    } else {
        report.index_lookups += own_queries.len();
    }
    HelloFrame {
        sender: n.id,
        own_queries,
        foreign_queries,
        wanted: wanted.into_iter().collect(),
        rejected: n.rejected.keys().cloned().collect(),
        frequent: n.frequent_contacts.clone(),
        credits: n.credits.entries().collect(),
    }
}

/// Rebuilds the contact-time view of a member from its (possibly decoded)
/// hello frame.
fn snapshot_from_hello(hello: HelloFrame) -> MemberSnapshot {
    let HelloFrame {
        sender,
        own_queries,
        foreign_queries,
        wanted,
        rejected,
        frequent,
        credits,
    } = hello;
    let mut relevant: Vec<Query> = own_queries.iter().map(|(q, _)| q.clone()).collect();
    relevant.extend(foreign_queries);
    MemberSnapshot {
        id: sender,
        own_queries,
        relevant_queries: relevant,
        wanted,
        rejected,
        frequent,
        ledger: CreditLedger::from_entries(credits),
    }
}

/// Dispatches to the cooperative or tit-for-tat scheduler.
fn schedule_broadcasts(
    config: &MbtConfig,
    member_ids: &[NodeId],
    snapshots: &[MemberSnapshot],
    offers: Vec<Offer<Uri>>,
    slots: usize,
) -> Vec<Broadcast<Uri>> {
    match config.cooperation_value() {
        CooperationMode::Cooperative => match config.ordering_value() {
            crate::config::BroadcastOrdering::TwoPhase => dl_coop::schedule(offers, slots),
            crate::config::BroadcastOrdering::RarestFirst => {
                crate::download::strategy::rarest_first_schedule(offers, slots)
            }
        },
        CooperationMode::TitForTat => {
            let ledgers: BTreeMap<NodeId, &CreditLedger> =
                snapshots.iter().map(|s| (s.id, &s.ledger)).collect();
            dl_tft::schedule(member_ids, offers, |id| ledgers[&id], slots)
        }
    }
}

/// Convenience wrapper for a pair-wise contact.
pub fn run_pairwise_contact(
    nodes: &mut [MbtNode],
    a: usize,
    b: usize,
    now: SimTime,
    duration: SimDuration,
) -> ContactReport {
    run_contact(nodes, &[a, b], now, duration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProtocolKind;

    fn uri(s: &str) -> Uri {
        Uri::new(s).unwrap()
    }

    fn meta(name: &str, u: &str) -> Metadata {
        Metadata::builder(name, "FOX", uri(u)).build()
    }

    fn server_with(entries: &[(&str, &str, f64)]) -> MetadataServer {
        let mut s = MetadataServer::new(4);
        for &(name, u, p) in entries {
            s.publish(meta(name, u), Popularity::new(p));
        }
        s
    }

    fn node(i: u32, protocol: ProtocolKind) -> MbtNode {
        MbtNode::new(NodeId::new(i), protocol, MbtConfig::new())
    }

    #[test]
    fn extract_cold_state_returns_own_queries_only_when_cold() {
        let mut n = node(0, ProtocolKind::Mbt);
        let expires = Some(SimTime::from_secs(500));
        n.add_query(Query::new("fox news").unwrap(), expires);
        n.add_query(Query::new("abc show").unwrap(), None);
        n.credits.reward_matched(NodeId::new(7));
        let cold = n
            .extract_cold_state()
            .expect("fresh node + queries is cold");
        assert_eq!(cold.queries.len(), 2);
        assert_eq!(cold.queries[0].0.text(), "fox news");
        assert_eq!(cold.queries[0].1, expires);
        assert_eq!(cold.credits.len(), 1, "credit history rides along");

        // Replaying into a fresh node reproduces the query + credit state.
        let mut rebuilt = node(0, ProtocolKind::Mbt);
        for (q, e) in cold.queries {
            rebuilt.add_query(q, e);
        }
        rebuilt.restore_credits(cold.credits);
        assert_eq!(rebuilt.own_queries(), n.own_queries());
        assert_eq!(rebuilt.query_count(), n.query_count());
        assert_eq!(
            rebuilt.credits().entries().collect::<Vec<_>>(),
            n.credits().entries().collect::<Vec<_>>()
        );

        // Any store content, foreign query, or undrained event is warmth.
        let mut warm = node(1, ProtocolKind::Mbt);
        warm.seed_content(meta("fox news", "mbt://a"), Popularity::new(0.5), false);
        assert!(warm.extract_cold_state().is_none(), "metadata + event");
        let _ = warm.drain_events();
        assert!(warm.extract_cold_state().is_none(), "metadata remains");
        warm.prune(SimTime::from_secs(1));
        assert!(
            warm.extract_cold_state().is_none(),
            "unexpired metadata and popularity observations survive pruning"
        );

        let mut foreign = node(2, ProtocolKind::Mbt);
        foreign
            .queries
            .add_foreign(NodeId::new(9), Query::new("abc show").unwrap(), None);
        assert!(foreign.extract_cold_state().is_none(), "foreign queries");
    }

    #[test]
    fn pruning_expired_popularity_lets_a_node_go_cold() {
        let mut n = node(0, ProtocolKind::Mbt);
        let expiring = Metadata::builder("fox news", "FOX", uri("mbt://a"))
            .expires_at(Some(SimTime::from_secs(100)))
            .build();
        n.seed_content(expiring, Popularity::new(0.5), false);
        let _ = n.drain_events();
        assert_eq!(n.known_popularity(&uri("mbt://a")).value(), 0.5);

        // Past the URI's lifetime, metadata AND its popularity observation
        // decay, so the node is cold again.
        n.prune(SimTime::from_secs(100));
        assert_eq!(
            n.known_popularity(&uri("mbt://a")),
            Popularity::MIN,
            "expired URIs are never ranked again, so the observation goes"
        );
        assert!(
            n.extract_cold_state().is_some(),
            "fully-decayed node must be evictable"
        );

        // An expiry-free observation (no metadata lifetime known) pins the
        // entry forever, even when a bounded observation merges into it.
        let mut pinned = node(1, ProtocolKind::Mbt);
        pinned.note_popularity(&uri("mbt://b"), Popularity::new(0.3));
        pinned.note_popularity_until(
            &uri("mbt://b"),
            Popularity::new(0.7),
            Some(SimTime::from_secs(10)),
        );
        pinned.prune(SimTime::from_secs(1_000_000));
        assert_eq!(pinned.known_popularity(&uri("mbt://b")).value(), 0.7);
        assert!(pinned.extract_cold_state().is_none());
    }

    #[test]
    fn internet_session_requires_access() {
        let mut server = server_with(&[("fox news", "mbt://a", 0.5)]);
        let mut n = node(0, ProtocolKind::Mbt);
        n.add_query(Query::new("fox news").unwrap(), None);
        n.internet_session(&mut server, SimTime::ZERO);
        assert!(!n.has_metadata(&uri("mbt://a")), "no access, no download");
    }

    #[test]
    fn internet_session_downloads_queried_files() {
        let mut server = server_with(&[("fox news", "mbt://a", 0.5), ("abc show", "mbt://b", 0.9)]);
        let mut n = node(0, ProtocolKind::Mbt);
        n.set_internet_access(true);
        n.add_query(Query::new("fox news").unwrap(), None);
        n.internet_session(&mut server, SimTime::ZERO);
        assert!(n.has_metadata(&uri("mbt://a")));
        assert!(n.has_file(&uri("mbt://a")));
        assert!(
            !n.has_file(&uri("mbt://b")),
            "only queried files downloaded"
        );
        // Push phase pulled the popular metadata too.
        assert!(n.has_metadata(&uri("mbt://b")));
        let events = n.drain_events();
        assert!(events.iter().any(|e| matches!(
            e,
            NodeEvent::FileCompleted { uri: u, from: Source::Internet } if u == &uri("mbt://a")
        )));
    }

    #[test]
    fn mbtqm_internet_session_skips_push_metadata() {
        let mut server = server_with(&[("fox news", "mbt://a", 0.5), ("abc show", "mbt://b", 0.9)]);
        let mut n = node(0, ProtocolKind::MbtQm);
        n.set_internet_access(true);
        n.add_query(Query::new("fox news").unwrap(), None);
        n.internet_session(&mut server, SimTime::ZERO);
        assert!(n.has_file(&uri("mbt://a")));
        assert!(
            !n.has_metadata(&uri("mbt://b")),
            "MBT-QM pulls no push metadata"
        );
    }

    #[test]
    fn internet_session_serves_foreign_queries_under_mbt_only() {
        let mut server = server_with(&[("abc comedy", "mbt://c", 0.2)]);
        for (protocol, expect) in [(ProtocolKind::Mbt, true), (ProtocolKind::MbtQ, false)] {
            let mut n = node(0, protocol);
            // Disable the popularity push so only foreign-query service can
            // fetch the metadata.
            n.config = MbtConfig::new().internet_push_metadata(0);
            n.set_internet_access(true);
            n.queries
                .add_foreign(NodeId::new(9), Query::new("abc comedy").unwrap(), None);
            n.internet_session(&mut server, SimTime::ZERO);
            assert_eq!(n.has_metadata(&uri("mbt://c")), expect, "{protocol}");
            assert!(!n.has_file(&uri("mbt://c")), "no file download for others");
        }
    }

    #[test]
    fn contact_distributes_queries_to_frequent_contacts() {
        let mut nodes = vec![node(0, ProtocolKind::Mbt), node(1, ProtocolKind::Mbt)];
        nodes[0].set_frequent_contacts([NodeId::new(1)]);
        nodes[1].add_query(Query::new("fox news").unwrap(), None);
        let report =
            run_pairwise_contact(&mut nodes, 0, 1, SimTime::ZERO, SimDuration::from_secs(60));
        assert_eq!(report.queries_distributed, 1);
        assert_eq!(nodes[0].query_count(), 1);
        // Not symmetric: node 1 did not list node 0 as frequent.
        assert_eq!(nodes[1].query_count(), 1); // its own query only
    }

    #[test]
    fn mbtq_contact_never_distributes_queries() {
        let mut nodes = vec![node(0, ProtocolKind::MbtQ), node(1, ProtocolKind::MbtQ)];
        nodes[0].set_frequent_contacts([NodeId::new(1)]);
        nodes[1].add_query(Query::new("fox news").unwrap(), None);
        let report =
            run_pairwise_contact(&mut nodes, 0, 1, SimTime::ZERO, SimDuration::from_secs(60));
        assert_eq!(report.queries_distributed, 0);
        assert_eq!(nodes[0].query_count(), 0);
    }

    #[test]
    fn contact_transfers_requested_metadata() {
        let mut nodes = vec![node(0, ProtocolKind::Mbt), node(1, ProtocolKind::Mbt)];
        let m = meta("fox evening news", "mbt://a");
        nodes[0].metadata.insert(m);
        nodes[0].note_popularity(&uri("mbt://a"), Popularity::new(0.4));
        nodes[1].add_query(Query::new("evening news").unwrap(), None);
        let report =
            run_pairwise_contact(&mut nodes, 0, 1, SimTime::ZERO, SimDuration::from_secs(60));
        assert_eq!(report.metadata_broadcasts, 1);
        assert!(nodes[1].has_metadata(&uri("mbt://a")));
        // Tit-for-tat bookkeeping ran on the receiver.
        assert_eq!(nodes[1].credits().credit_of(NodeId::new(0)), 5.0);
        let events = nodes[1].drain_events();
        assert!(matches!(
            events[0],
            NodeEvent::MetadataStored { from: Source::Peer(s), .. } if s == NodeId::new(0)
        ));
    }

    #[test]
    fn mbtqm_contact_sends_no_standalone_metadata() {
        let mut nodes = vec![node(0, ProtocolKind::MbtQm), node(1, ProtocolKind::MbtQm)];
        nodes[0].metadata.insert(meta("fox news", "mbt://a"));
        nodes[1].add_query(Query::new("fox news").unwrap(), None);
        let report =
            run_pairwise_contact(&mut nodes, 0, 1, SimTime::ZERO, SimDuration::from_secs(60));
        assert_eq!(report.metadata_broadcasts, 0);
        assert!(!nodes[1].has_metadata(&uri("mbt://a")));
    }

    #[test]
    fn contact_transfers_files_with_metadata_riding_along() {
        let mut nodes = vec![node(0, ProtocolKind::Mbt), node(1, ProtocolKind::Mbt)];
        nodes[0].metadata.insert(meta("fox news", "mbt://a"));
        nodes[0].files.insert(uri("mbt://a"), None);
        nodes[0].note_popularity(&uri("mbt://a"), Popularity::new(0.8));
        let report =
            run_pairwise_contact(&mut nodes, 0, 1, SimTime::ZERO, SimDuration::from_secs(60));
        assert_eq!(report.file_broadcasts, 1);
        assert!(nodes[1].has_file(&uri("mbt://a")));
        assert!(
            nodes[1].has_metadata(&uri("mbt://a")),
            "metadata rides with the file"
        );
    }

    #[test]
    fn mbtqm_receives_files_by_popularity() {
        let mut nodes = vec![node(0, ProtocolKind::MbtQm), node(1, ProtocolKind::MbtQm)];
        nodes[0].metadata.insert(meta("hot show", "mbt://hot"));
        nodes[0].metadata.insert(meta("cold show", "mbt://cold"));
        for (u, p) in [("mbt://hot", 0.9), ("mbt://cold", 0.1)] {
            nodes[0].files.insert(uri(u), None);
            nodes[0].note_popularity(&uri(u), Popularity::new(p));
        }
        // Budget of 1 file per contact: the popular one must win.
        for n in nodes.iter_mut() {
            n.config = MbtConfig::new().files_per_contact(1);
        }
        run_pairwise_contact(&mut nodes, 0, 1, SimTime::ZERO, SimDuration::from_secs(60));
        assert!(nodes[1].has_file(&uri("mbt://hot")));
        assert!(!nodes[1].has_file(&uri("mbt://cold")));
    }

    #[test]
    fn clique_broadcast_reaches_all_members() {
        let mut nodes: Vec<MbtNode> = (0..4).map(|i| node(i, ProtocolKind::Mbt)).collect();
        nodes[0].metadata.insert(meta("fox news", "mbt://a"));
        nodes[0].files.insert(uri("mbt://a"), None);
        let report = run_contact(
            &mut nodes,
            &[0, 1, 2, 3],
            SimTime::ZERO,
            SimDuration::from_secs(3600),
        );
        // One metadata broadcast + one file broadcast serve all three peers.
        assert_eq!(report.metadata_broadcasts, 1);
        assert_eq!(report.file_broadcasts, 1);
        for n in &nodes[1..] {
            assert!(n.has_file(&uri("mbt://a")));
        }
    }

    #[test]
    fn short_contact_skips_file_phase_when_configured() {
        let mut nodes = vec![node(0, ProtocolKind::Mbt), node(1, ProtocolKind::Mbt)];
        for n in nodes.iter_mut() {
            n.config = MbtConfig::new().min_download_contact_secs(120);
        }
        nodes[0].metadata.insert(meta("fox news", "mbt://a"));
        nodes[0].files.insert(uri("mbt://a"), None);
        let report =
            run_pairwise_contact(&mut nodes, 0, 1, SimTime::ZERO, SimDuration::from_secs(30));
        assert!(report.metadata_broadcasts > 0, "metadata still flows");
        assert_eq!(report.file_broadcasts, 0, "file phase skipped");
    }

    #[test]
    fn metadata_budget_respected() {
        let mut nodes = vec![node(0, ProtocolKind::Mbt), node(1, ProtocolKind::Mbt)];
        for i in 0..50 {
            let u = format!("mbt://f{i:02}");
            nodes[0].metadata.insert(meta(&format!("show {i}"), &u));
        }
        for n in nodes.iter_mut() {
            n.config = MbtConfig::new().metadata_per_contact(5);
        }
        let report =
            run_pairwise_contact(&mut nodes, 0, 1, SimTime::ZERO, SimDuration::from_secs(60));
        assert_eq!(report.metadata_broadcasts, 5);
        assert_eq!(nodes[1].metadata_count(), 5);
    }

    #[test]
    fn expired_content_dropped_before_exchange() {
        let mut nodes = vec![node(0, ProtocolKind::Mbt), node(1, ProtocolKind::Mbt)];
        let m = Metadata::builder("old news", "FOX", uri("mbt://old"))
            .ttl(SimDuration::from_secs(10))
            .build();
        nodes[0].metadata.insert(m);
        run_pairwise_contact(
            &mut nodes,
            0,
            1,
            SimTime::from_secs(100),
            SimDuration::from_secs(60),
        );
        assert!(!nodes[1].has_metadata(&uri("mbt://old")));
        assert_eq!(nodes[0].metadata_count(), 0, "expired metadata pruned");
    }

    #[test]
    fn tit_for_tat_mode_runs() {
        let mut nodes = vec![node(0, ProtocolKind::Mbt), node(1, ProtocolKind::Mbt)];
        for n in nodes.iter_mut() {
            n.config = MbtConfig::new().cooperation(CooperationMode::TitForTat);
        }
        nodes[0].metadata.insert(meta("fox news", "mbt://a"));
        nodes[1].add_query(Query::new("fox news").unwrap(), None);
        let report =
            run_pairwise_contact(&mut nodes, 0, 1, SimTime::ZERO, SimDuration::from_secs(60));
        assert_eq!(report.metadata_broadcasts, 1);
        assert!(nodes[1].has_metadata(&uri("mbt://a")));
    }

    #[test]
    fn forged_metadata_rejected_and_blacklisted() {
        use crate::auth::{sign, PublisherKey};
        let registry = {
            let mut r = crate::auth::KeyRegistry::new();
            r.register("FOX", PublisherKey::derive(b"master", "FOX"));
            r
        };
        let mut nodes = vec![node(0, ProtocolKind::Mbt), node(1, ProtocolKind::Mbt)];
        nodes[1].set_key_registry(registry);

        // Node 0 (no registry — could itself be the adversary) carries a
        // forged record matching node 1's query.
        let mut forged = meta("fox breaking news", "mbt://fake");
        sign(&mut forged, &PublisherKey::derive(b"attacker", "FOX"));
        nodes[0].seed_content(forged, Popularity::MAX, false);
        let _ = nodes[0].drain_events();
        nodes[1].add_query(Query::new("breaking news").unwrap(), None);

        run_pairwise_contact(&mut nodes, 0, 1, SimTime::ZERO, SimDuration::from_secs(60));
        assert!(!nodes[1].has_metadata(&uri("mbt://fake")), "forgery stored");
        assert!(
            nodes[1].has_rejected(&uri("mbt://fake")),
            "forgery not blacklisted"
        );

        // A second contact no longer offers the fake: no metadata broadcast.
        let report = run_pairwise_contact(
            &mut nodes,
            0,
            1,
            SimTime::from_secs(100),
            SimDuration::from_secs(60),
        );
        assert_eq!(report.metadata_broadcasts, 0, "blacklisted item re-offered");
    }

    #[test]
    fn authentic_metadata_passes_verification_path() {
        use crate::auth::{sign, PublisherKey};
        let key = PublisherKey::derive(b"master", "FOX");
        let registry = {
            let mut r = crate::auth::KeyRegistry::new();
            r.register("FOX", key.clone());
            r
        };
        let mut nodes = vec![node(0, ProtocolKind::Mbt), node(1, ProtocolKind::Mbt)];
        nodes[1].set_key_registry(registry);
        let mut real = meta("fox breaking news", "mbt://real");
        sign(&mut real, &key);
        nodes[0].seed_content(real, Popularity::new(0.5), true);
        let _ = nodes[0].drain_events();
        nodes[1].add_query(Query::new("breaking news").unwrap(), None);
        run_pairwise_contact(&mut nodes, 0, 1, SimTime::ZERO, SimDuration::from_secs(60));
        assert!(nodes[1].has_metadata(&uri("mbt://real")));
        assert!(nodes[1].has_file(&uri("mbt://real")));
        assert!(!nodes[1].has_rejected(&uri("mbt://real")));
    }

    #[test]
    fn seed_content_populates_stores_and_events() {
        let mut n0 = node(0, ProtocolKind::Mbt);
        n0.seed_content(meta("x", "mbt://x"), Popularity::new(0.7), true);
        assert!(n0.has_metadata(&uri("mbt://x")));
        assert!(n0.has_file(&uri("mbt://x")));
        assert_eq!(n0.known_popularity(&uri("mbt://x")).value(), 0.7);
        assert_eq!(n0.drain_events().len(), 2);
        // Idempotent: re-seeding emits nothing new.
        n0.seed_content(meta("x", "mbt://x"), Popularity::new(0.7), true);
        assert!(n0.drain_events().is_empty());
    }

    #[test]
    fn total_loss_blocks_all_transfers() {
        let mut nodes = vec![node(0, ProtocolKind::Mbt), node(1, ProtocolKind::Mbt)];
        for n in nodes.iter_mut() {
            n.config = MbtConfig::new().broadcast_loss_rate(1.0);
        }
        nodes[0].metadata.insert(meta("fox news", "mbt://a"));
        nodes[0].files.insert(uri("mbt://a"), None);
        nodes[1].add_query(Query::new("fox news").unwrap(), None);
        run_pairwise_contact(&mut nodes, 0, 1, SimTime::ZERO, SimDuration::from_secs(60));
        assert!(!nodes[1].has_metadata(&uri("mbt://a")));
        assert!(!nodes[1].has_file(&uri("mbt://a")));
    }

    #[test]
    fn zero_loss_is_lossless_and_rolls_are_deterministic() {
        let run_once = |loss: f64, seed: u64| {
            let mut nodes = vec![node(0, ProtocolKind::Mbt), node(1, ProtocolKind::Mbt)];
            for n in nodes.iter_mut() {
                n.config = MbtConfig::new().broadcast_loss_rate(loss).loss_seed(seed);
            }
            for i in 0..10 {
                let u = format!("mbt://f{i}");
                nodes[0].metadata.insert(meta(&format!("show {i}"), &u));
                nodes[0].files.insert(uri(&u), None);
            }
            run_pairwise_contact(&mut nodes, 0, 1, SimTime::ZERO, SimDuration::from_secs(60));
            nodes[1].file_count()
        };
        assert_eq!(run_once(0.0, 0), 4, "default budget of 4 files, no loss");
        let lossy_a = run_once(0.5, 7);
        let lossy_b = run_once(0.5, 7);
        assert_eq!(lossy_a, lossy_b, "loss rolls must be deterministic");
        assert!(lossy_a <= 4);
    }

    #[test]
    fn rarest_first_ordering_prefers_rare_files() {
        // Node 0 and node 1 both hold "common"; only node 0 holds "rare".
        // With one file slot, rarest-first broadcasts "rare" even though
        // "common" is more popular — two-phase would pick by popularity.
        let mk = |i: u32| {
            let mut n = node(i, ProtocolKind::MbtQm);
            n.config = MbtConfig::new()
                .files_per_contact(1)
                .ordering(crate::config::BroadcastOrdering::RarestFirst);
            n
        };
        let mut nodes = vec![mk(0), mk(1), mk(2)];
        for idx in [0usize, 1] {
            nodes[idx]
                .metadata
                .insert(meta("common show", "mbt://common"));
            nodes[idx].files.insert(uri("mbt://common"), None);
            nodes[idx].note_popularity(&uri("mbt://common"), Popularity::new(0.9));
        }
        nodes[0].metadata.insert(meta("rare show", "mbt://rare"));
        nodes[0].files.insert(uri("mbt://rare"), None);
        nodes[0].note_popularity(&uri("mbt://rare"), Popularity::new(0.1));
        run_contact(
            &mut nodes,
            &[0, 1, 2],
            SimTime::ZERO,
            SimDuration::from_secs(600),
        );
        assert!(nodes[2].has_file(&uri("mbt://rare")));
        assert!(!nodes[2].has_file(&uri("mbt://common")));
    }

    #[test]
    #[should_panic(expected = "mixed protocols")]
    fn mixed_protocols_panic() {
        let mut nodes = vec![node(0, ProtocolKind::Mbt), node(1, ProtocolKind::MbtQ)];
        run_pairwise_contact(&mut nodes, 0, 1, SimTime::ZERO, SimDuration::from_secs(60));
    }

    #[test]
    #[should_panic(expected = "duplicate member")]
    fn duplicate_member_panics() {
        let mut nodes = vec![node(0, ProtocolKind::Mbt), node(1, ProtocolKind::Mbt)];
        run_contact(
            &mut nodes,
            &[0, 0],
            SimTime::ZERO,
            SimDuration::from_secs(60),
        );
    }

    #[test]
    fn single_member_contact_is_noop() {
        let mut nodes = vec![node(0, ProtocolKind::Mbt)];
        let report = run_contact(&mut nodes, &[0], SimTime::ZERO, SimDuration::from_secs(60));
        assert_eq!(report, ContactReport::default());
    }

    fn pop_cache_node(i: u32, capacity: u32) -> MbtNode {
        let spec = ProtocolSpec::POP_CACHE.with_cache(
            "PopCache-test",
            CachePolicy::PopularityRanked {
                capacity,
                scope: PopularityScope::Global,
            },
        );
        MbtNode::new(NodeId::new(i), spec, MbtConfig::new())
    }

    #[test]
    fn popcache_evicts_lowest_popularity_when_full() {
        let mut n = pop_cache_node(0, 2);
        n.seed_content(meta("low show", "mbt://low"), Popularity::new(0.2), true);
        n.seed_content(meta("mid show", "mbt://mid"), Popularity::new(0.5), true);
        assert_eq!(n.file_count(), 2);
        // A more popular file displaces the lowest-ranked one.
        n.seed_content(meta("hot show", "mbt://hot"), Popularity::new(0.9), true);
        assert_eq!(n.file_count(), 2, "bound holds");
        assert!(!n.has_file(&uri("mbt://low")), "lowest-ranked evicted");
        assert!(n.has_file(&uri("mbt://mid")));
        assert!(n.has_file(&uri("mbt://hot")));
        // A less popular file than every resident is refused.
        n.seed_content(meta("dud show", "mbt://dud"), Popularity::new(0.1), true);
        assert!(!n.has_file(&uri("mbt://dud")), "unwanted low-score refused");
        assert_eq!(n.file_count(), 2);
    }

    #[test]
    fn popcache_never_evicts_own_wanted_files() {
        let mut n = pop_cache_node(0, 2);
        n.add_query(Query::new("fox news").unwrap(), None);
        // "mbt://want" matches the node's own query: protected despite its
        // rock-bottom popularity.
        n.seed_content(
            meta("fox news tonight", "mbt://want"),
            Popularity::MIN,
            true,
        );
        n.seed_content(
            meta("other show", "mbt://other"),
            Popularity::new(0.4),
            true,
        );
        n.seed_content(meta("hot show", "mbt://hot"), Popularity::new(0.9), true);
        assert!(n.has_file(&uri("mbt://want")), "wanted file survives");
        assert!(!n.has_file(&uri("mbt://other")), "unprotected file evicted");
        assert!(n.has_file(&uri("mbt://hot")));
    }

    #[test]
    fn popcache_refuses_when_every_resident_is_protected() {
        let mut n = pop_cache_node(0, 2);
        n.add_query(Query::new("fox news").unwrap(), None);
        n.seed_content(meta("fox news morning", "mbt://m"), Popularity::MIN, true);
        n.seed_content(meta("fox news evening", "mbt://e"), Popularity::MIN, true);
        n.seed_content(meta("hot show", "mbt://hot"), Popularity::MAX, true);
        assert!(
            !n.has_file(&uri("mbt://hot")),
            "no evictable victim: refuse"
        );
        assert!(n.has_file(&uri("mbt://m")));
        assert!(n.has_file(&uri("mbt://e")));
        assert_eq!(n.file_count(), 2);
    }

    #[test]
    fn popcache_contact_respects_bound() {
        let mut nodes = vec![pop_cache_node(0, 3), pop_cache_node(1, 3)];
        for i in 0..8 {
            let u = format!("mbt://f{i}");
            nodes[0].seed_content(
                meta(&format!("show {i}"), &u),
                Popularity::new(0.1 * f64::from(i)),
                true,
            );
        }
        assert_eq!(nodes[0].file_count(), 3, "seeding already bounded");
        run_pairwise_contact(&mut nodes, 0, 1, SimTime::ZERO, SimDuration::from_secs(600));
        assert!(nodes[1].file_count() <= 3, "receiver bound holds");
    }

    #[test]
    fn diffuserep_prioritises_scarce_files_over_popular() {
        // Clique of 4: "common" is held by three members (availability 0.75,
        // smoothed estimate 0.375 ≥ threshold 0.35 → not scarce), "rare" by
        // one (estimate 0.125 → scarce). With one file slot, diffusion
        // seeding pulls the rare file; plain MBT broadcasts the popular one.
        let run = |spec: ProtocolSpec| {
            let mut nodes: Vec<MbtNode> = (0..4)
                .map(|i| {
                    let mut n = MbtNode::new(NodeId::new(i), spec, MbtConfig::new());
                    n.config = MbtConfig::new()
                        .files_per_contact(1)
                        .metadata_per_contact(0);
                    n
                })
                .collect();
            for idx in [0usize, 1, 2] {
                nodes[idx].seed_content(
                    meta("common show", "mbt://common"),
                    Popularity::new(0.9),
                    true,
                );
            }
            nodes[0].seed_content(meta("rare show", "mbt://rare"), Popularity::new(0.1), true);
            run_contact(
                &mut nodes,
                &[0, 1, 2, 3],
                SimTime::ZERO,
                SimDuration::from_secs(600),
            );
            (
                nodes[3].has_file(&uri("mbt://rare")),
                nodes[3].has_file(&uri("mbt://common")),
            )
        };
        assert_eq!(
            run(ProtocolSpec::MBT),
            (false, true),
            "MBT: popularity wins"
        );
        assert_eq!(
            run(ProtocolSpec::DIFFUSE_REP),
            (true, false),
            "DiffuseRep: scarcity wins"
        );
    }

    #[test]
    fn triad_spec_nodes_leave_new_state_empty() {
        let mut nodes = vec![node(0, ProtocolKind::Mbt), node(1, ProtocolKind::Mbt)];
        nodes[0].seed_content(meta("fox news", "mbt://a"), Popularity::new(0.8), true);
        nodes[1].add_query(Query::new("fox news").unwrap(), None);
        run_pairwise_contact(&mut nodes, 0, 1, SimTime::ZERO, SimDuration::from_secs(600));
        for n in &nodes {
            assert!(n.local_demand.is_empty(), "triad never tracks demand");
            assert!(
                n.availability.is_empty(),
                "triad never estimates availability"
            );
        }
    }

    #[test]
    fn wanted_uris_reflect_query_matches() {
        let mut n = node(0, ProtocolKind::Mbt);
        n.metadata.insert(meta("fox news", "mbt://a"));
        n.metadata.insert(meta("abc comedy", "mbt://b"));
        n.add_query(Query::new("fox news").unwrap(), None);
        assert_eq!(n.wanted_uris(), vec![uri("mbt://a")]);
        n.files.insert(uri("mbt://a"), None);
        assert!(
            n.wanted_uris().is_empty(),
            "held files are no longer wanted"
        );
    }
}
