//! File assembly from pieces.
//!
//! The pieces of a file "may be downloaded at different times and places"
//! (paper §III-B): a node accumulates verified pieces across many contacts
//! and reassembles the file once every piece has arrived.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::metadata::Metadata;
use crate::piece::Piece;
use crate::uri::Uri;

/// Error returned when adding a piece to a [`FileAssembler`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssembleError {
    /// The piece belongs to a different file.
    WrongFile {
        /// The URI the assembler is collecting.
        expected: Uri,
        /// The URI the piece was stamped with.
        actual: Uri,
    },
    /// The piece index is outside the file.
    IndexOutOfRange {
        /// The offending index.
        index: u32,
        /// Number of pieces in the file.
        count: u32,
    },
    /// The piece payload does not match the metadata checksum.
    ChecksumMismatch {
        /// The offending index.
        index: u32,
    },
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssembleError::WrongFile { expected, actual } => {
                write!(f, "piece belongs to {actual}, assembling {expected}")
            }
            AssembleError::IndexOutOfRange { index, count } => {
                write!(
                    f,
                    "piece index {index} out of range (file has {count} pieces)"
                )
            }
            AssembleError::ChecksumMismatch { index } => {
                write!(f, "piece {index} failed checksum verification")
            }
        }
    }
}

impl Error for AssembleError {}

/// Accumulates verified pieces of one file until it can be reassembled.
///
/// # Example
///
/// ```
/// use mbt_core::{FileAssembler, Metadata, Uri};
/// use mbt_core::piece::split_into_pieces;
///
/// let uri = Uri::new("mbt://fox/clip")?;
/// let data = vec![42u8; 700];
/// let meta = Metadata::builder("Clip", "FOX", uri.clone())
///     .content(&data, 256)
///     .build();
///
/// let mut assembler = FileAssembler::new(meta);
/// for piece in split_into_pieces(&uri, &data, 256) {
///     assembler.add_piece(piece)?;
/// }
/// assert_eq!(assembler.assemble().unwrap(), data);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct FileAssembler {
    metadata: Metadata,
    pieces: BTreeMap<u32, Piece>,
}

impl FileAssembler {
    /// Creates an assembler for the file described by `metadata`.
    pub fn new(metadata: Metadata) -> Self {
        FileAssembler {
            metadata,
            pieces: BTreeMap::new(),
        }
    }

    /// The metadata being assembled against.
    pub fn metadata(&self) -> &Metadata {
        &self.metadata
    }

    /// Adds a verified piece. Duplicate pieces are accepted idempotently.
    ///
    /// # Errors
    ///
    /// Rejects pieces from other files, out-of-range indices, and payloads
    /// failing checksum verification.
    pub fn add_piece(&mut self, piece: Piece) -> Result<(), AssembleError> {
        if piece.id().uri() != self.metadata.uri() {
            return Err(AssembleError::WrongFile {
                expected: self.metadata.uri().clone(),
                actual: piece.id().uri().clone(),
            });
        }
        let index = piece.id().index();
        if index >= self.metadata.piece_count() {
            return Err(AssembleError::IndexOutOfRange {
                index,
                count: self.metadata.piece_count(),
            });
        }
        if !self.metadata.verify_piece(&piece) {
            return Err(AssembleError::ChecksumMismatch { index });
        }
        self.pieces.insert(index, piece);
        Ok(())
    }

    /// True if the assembler already holds piece `index`.
    pub fn has_piece(&self, index: u32) -> bool {
        self.pieces.contains_key(&index)
    }

    /// Indices still missing, ascending.
    pub fn missing(&self) -> Vec<u32> {
        (0..self.metadata.piece_count())
            .filter(|i| !self.pieces.contains_key(i))
            .collect()
    }

    /// Number of pieces held.
    pub fn have_count(&self) -> u32 {
        self.pieces.len() as u32
    }

    /// Download progress in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        let total = self.metadata.piece_count();
        if total == 0 {
            return 1.0;
        }
        f64::from(self.have_count()) / f64::from(total)
    }

    /// True once every piece is held.
    pub fn is_complete(&self) -> bool {
        self.have_count() == self.metadata.piece_count()
    }

    /// Reassembles the file, or `None` if pieces are missing.
    pub fn assemble(&self) -> Option<Vec<u8>> {
        if !self.is_complete() {
            return None;
        }
        let mut out = Vec::with_capacity(self.metadata.size() as usize);
        for piece in self.pieces.values() {
            out.extend_from_slice(piece.data());
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::piece::{split_into_pieces, PieceId};

    fn setup(len: usize) -> (Uri, Vec<u8>, Metadata) {
        let uri = Uri::new("mbt://fox/clip").unwrap();
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let meta = Metadata::builder("Clip", "FOX", uri.clone())
            .content(&data, 64)
            .build();
        (uri, data, meta)
    }

    #[test]
    fn assembles_in_order() {
        let (uri, data, meta) = setup(300);
        let mut asm = FileAssembler::new(meta);
        for p in split_into_pieces(&uri, &data, 64) {
            asm.add_piece(p).unwrap();
        }
        assert!(asm.is_complete());
        assert_eq!(asm.assemble().unwrap(), data);
    }

    #[test]
    fn assembles_out_of_order() {
        let (uri, data, meta) = setup(300);
        let mut asm = FileAssembler::new(meta);
        let mut pieces = split_into_pieces(&uri, &data, 64);
        pieces.reverse();
        for p in pieces {
            asm.add_piece(p).unwrap();
        }
        assert_eq!(asm.assemble().unwrap(), data);
    }

    #[test]
    fn tracks_missing_and_progress() {
        let (uri, data, meta) = setup(300);
        let mut asm = FileAssembler::new(meta);
        let pieces = split_into_pieces(&uri, &data, 64);
        assert_eq!(asm.missing().len(), 5);
        asm.add_piece(pieces[2].clone()).unwrap();
        assert!(asm.has_piece(2));
        assert_eq!(asm.missing(), vec![0, 1, 3, 4]);
        assert!((asm.progress() - 0.2).abs() < 1e-12);
        assert_eq!(asm.assemble(), None);
    }

    #[test]
    fn duplicate_pieces_idempotent() {
        let (uri, data, meta) = setup(100);
        let mut asm = FileAssembler::new(meta);
        let pieces = split_into_pieces(&uri, &data, 64);
        asm.add_piece(pieces[0].clone()).unwrap();
        asm.add_piece(pieces[0].clone()).unwrap();
        assert_eq!(asm.have_count(), 1);
    }

    #[test]
    fn rejects_wrong_file() {
        let (_, data, meta) = setup(100);
        let other = Uri::new("mbt://other").unwrap();
        let mut asm = FileAssembler::new(meta);
        let err = asm
            .add_piece(split_into_pieces(&other, &data, 64)[0].clone())
            .unwrap_err();
        assert!(matches!(err, AssembleError::WrongFile { .. }));
    }

    #[test]
    fn rejects_out_of_range() {
        let (uri, _, meta) = setup(100);
        let mut asm = FileAssembler::new(meta);
        let bogus = Piece::new(PieceId::new(uri, 99), vec![0u8; 64]);
        let err = asm.add_piece(bogus).unwrap_err();
        assert!(matches!(
            err,
            AssembleError::IndexOutOfRange { index: 99, .. }
        ));
    }

    #[test]
    fn rejects_corrupted_piece() {
        let (uri, _, meta) = setup(100);
        let mut asm = FileAssembler::new(meta);
        let corrupted = Piece::new(PieceId::new(uri, 0), vec![0xFF; 64]);
        let err = asm.add_piece(corrupted).unwrap_err();
        assert_eq!(err, AssembleError::ChecksumMismatch { index: 0 });
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = AssembleError::ChecksumMismatch { index: 3 };
        assert!(e.to_string().contains("checksum"));
    }

    #[test]
    fn empty_file_is_trivially_complete() {
        let uri = Uri::new("mbt://empty").unwrap();
        let meta = Metadata::builder("Empty", "FOX", uri)
            .content(&[], 64)
            .build();
        let asm = FileAssembler::new(meta);
        assert!(asm.is_complete());
        assert_eq!(asm.assemble().unwrap(), Vec::<u8>::new());
        assert_eq!(asm.progress(), 1.0);
    }
}
