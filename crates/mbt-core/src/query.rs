//! Query strings.
//!
//! When a user wants to search for a file, he or she inputs a *query string*;
//! the file discovery process returns a sorted list of matched metadata
//! (paper §III-B). Queries travel in hello messages and — under the full MBT
//! protocol — are also stored by frequent contacting nodes so they can
//! collect metadata on the querier's behalf (§IV).

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use crate::keyword::{tokenize, TokenSet};

/// A keyword query.
///
/// A query matches a piece of text when **all** of its tokens occur in the
/// text (AND semantics); ranking uses the match count.
///
/// The text and token list live behind a shared allocation (`Arc`), so the
/// per-contact snapshots that clone query vectors for every clique member
/// bump a reference count instead of deep-copying strings. Equality,
/// ordering, and hashing remain content-based.
///
/// # Example
///
/// ```
/// use mbt_core::Query;
///
/// let q = Query::new("FOX evening news")?;
/// assert!(q.matches_text("the FOX channel evening news broadcast"));
/// assert!(!q.matches_text("CBS evening news"));
/// # Ok::<(), mbt_core::query::EmptyQuery>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Query {
    inner: Arc<QueryInner>,
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct QueryInner {
    text: String,
    tokens: Vec<String>,
}

/// Error returned when a query contains no indexable tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyQuery;

impl fmt::Display for EmptyQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query contains no searchable keywords")
    }
}

impl Error for EmptyQuery {}

impl Query {
    /// Creates a query from user text.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyQuery`] if the text tokenizes to nothing.
    pub fn new<S: Into<String>>(text: S) -> Result<Self, EmptyQuery> {
        let text = text.into();
        let tokens = tokenize(&text);
        if tokens.is_empty() {
            return Err(EmptyQuery);
        }
        Ok(Query {
            inner: Arc::new(QueryInner { text, tokens }),
        })
    }

    /// The original query text.
    pub fn text(&self) -> &str {
        &self.inner.text
    }

    /// The query's tokens (lowercase, deduplicated).
    pub fn tokens(&self) -> &[String] {
        &self.inner.tokens
    }

    /// True if all query tokens occur in `text`.
    pub fn matches_text(&self, text: &str) -> bool {
        let hay = tokenize(text);
        self.inner.tokens.iter().all(|t| hay.contains(t))
    }

    /// True if all query tokens occur in the pre-tokenized `tokens` set.
    pub fn matches_tokens(&self, tokens: &[String]) -> bool {
        self.inner.tokens.iter().all(|t| tokens.contains(t))
    }

    /// True if all query tokens occur in the cached token `set`.
    ///
    /// The allocation-free hot-path variant of
    /// [`matches_tokens`](Self::matches_tokens): each probe is a binary
    /// search on the record's prebuilt [`TokenSet`].
    pub fn matches_token_set(&self, set: &TokenSet) -> bool {
        self.inner.tokens.iter().all(|t| set.contains(t))
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.inner.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_all_tokens() {
        let q = Query::new("fox news").unwrap();
        assert!(q.matches_text("FOX Evening News"));
        assert!(!q.matches_text("fox comedy"));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Query::new("").unwrap_err(), EmptyQuery);
        assert_eq!(Query::new("!!!").unwrap_err(), EmptyQuery);
    }

    #[test]
    fn case_insensitive() {
        let q = Query::new("NeWs").unwrap();
        assert!(q.matches_text("breaking news"));
    }

    #[test]
    fn matches_tokens_directly() {
        let q = Query::new("a b").unwrap();
        assert!(q.matches_tokens(&["a".into(), "b".into(), "c".into()]));
        assert!(!q.matches_tokens(&["a".into()]));
    }

    #[test]
    fn display_preserves_text() {
        let q = Query::new("Fox News!").unwrap();
        assert_eq!(q.to_string(), "Fox News!");
        assert_eq!(q.text(), "Fox News!");
        assert_eq!(q.tokens(), &["fox".to_string(), "news".to_string()]);
    }

    #[test]
    fn error_display() {
        assert!(EmptyQuery.to_string().contains("keywords"));
    }
}
