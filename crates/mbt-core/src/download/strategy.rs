//! Alternative broadcast orderings (extensions beyond the paper).
//!
//! The paper's §V-A orders broadcasts by request count then popularity.
//! BitTorrent — the system MBT adapts (§II-B) — instead transmits the
//! *rarest* block first, maximizing swarm diversity. This module provides a
//! rarest-first scheduler over the same [`Offer`] type so the two policies
//! can be compared head-to-head (see the `ablations` experiment), plus the
//! availability bookkeeping it relies on.

use std::collections::BTreeMap;

use crate::download::{Broadcast, Offer};
use crate::popularity::cmp_popularity;

/// Holder counts per item within a clique — the "availability" a
/// rarest-first policy minimizes on.
#[derive(Debug, Clone, Default)]
pub struct Availability<I> {
    counts: BTreeMap<I, usize>,
}

impl<I: Clone + Ord> Availability<I> {
    /// Creates empty availability.
    pub fn new() -> Self {
        Availability {
            counts: BTreeMap::new(),
        }
    }

    /// Builds availability from a set of offers.
    pub fn from_offers(offers: &[Offer<I>]) -> Self {
        let mut a = Availability::new();
        for o in offers {
            a.counts.insert(o.item.clone(), o.holders.len());
        }
        a
    }

    /// Records that one more clique member holds `item`.
    pub fn add_holder(&mut self, item: &I) {
        *self.counts.entry(item.clone()).or_insert(0) += 1;
    }

    /// The number of holders of `item` (0 if unknown).
    pub fn holders_of(&self, item: &I) -> usize {
        self.counts.get(item).copied().unwrap_or(0)
    }

    /// Items sorted rarest-first (ties by item order).
    pub fn rarest_first(&self) -> Vec<I> {
        let mut items: Vec<(&I, usize)> = self.counts.iter().map(|(i, &c)| (i, c)).collect();
        items.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(b.0)));
        items.into_iter().map(|(i, _)| i.clone()).collect()
    }
}

/// Schedules broadcasts rarest-first: fewest holders first, ties broken by
/// request count (descending), popularity (descending), then item order.
/// Sender selection and slot semantics match
/// [`cooperative::schedule`](crate::download::cooperative::schedule).
///
/// # Example
///
/// ```
/// use mbt_core::download::{strategy, Offer};
/// use mbt_core::{Popularity, Uri};
/// use dtn_trace::NodeId;
///
/// let n = NodeId::new;
/// let common = Offer::new(Uri::new("mbt://common")?, Popularity::MAX,
///     vec![n(5)], vec![n(0), n(1), n(2)]);
/// let rare = Offer::new(Uri::new("mbt://rare")?, Popularity::MIN,
///     vec![n(5)], vec![n(0)]);
/// let schedule = strategy::rarest_first_schedule(vec![common, rare], 2);
/// assert_eq!(schedule[0].item.as_str(), "mbt://rare");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn rarest_first_schedule<I: Clone + Ord>(
    offers: Vec<Offer<I>>,
    slots: usize,
) -> Vec<Broadcast<I>> {
    let mut sendable: Vec<Offer<I>> = offers.into_iter().filter(Offer::sendable).collect();
    sendable.sort_by(|a, b| {
        a.holders
            .len()
            .cmp(&b.holders.len())
            .then_with(|| b.request_count().cmp(&a.request_count()))
            .then_with(|| cmp_popularity(b.popularity, a.popularity))
            .then_with(|| a.item.cmp(&b.item))
    });
    sendable
        .into_iter()
        .take(slots)
        .map(|o| Broadcast {
            sender: o.holders[0],
            item: o.item,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popularity::Popularity;
    use crate::uri::Uri;
    use dtn_trace::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn uri(s: &str) -> Uri {
        Uri::new(s).unwrap()
    }

    fn offer(u: &str, pop: f64, req: &[u32], hold: &[u32]) -> Offer<Uri> {
        Offer::new(
            uri(u),
            Popularity::new(pop),
            req.iter().copied().map(n).collect(),
            hold.iter().copied().map(n).collect(),
        )
    }

    #[test]
    fn rarest_goes_first() {
        let s = rarest_first_schedule(
            vec![
                offer("mbt://common", 0.9, &[5], &[0, 1, 2, 3]),
                offer("mbt://rare", 0.1, &[5], &[0]),
            ],
            10,
        );
        assert_eq!(s[0].item, uri("mbt://rare"));
        assert_eq!(s[1].item, uri("mbt://common"));
    }

    #[test]
    fn ties_broken_by_requests_then_popularity() {
        let s = rarest_first_schedule(
            vec![
                offer("mbt://a", 0.1, &[5, 6], &[0]),
                offer("mbt://b", 0.9, &[5], &[1]),
            ],
            10,
        );
        assert_eq!(s[0].item, uri("mbt://a"), "more requesters wins the tie");
        let s2 = rarest_first_schedule(
            vec![
                offer("mbt://a", 0.1, &[5], &[0]),
                offer("mbt://b", 0.9, &[6], &[1]),
            ],
            10,
        );
        assert_eq!(
            s2[0].item,
            uri("mbt://b"),
            "popularity breaks equal-request ties"
        );
    }

    #[test]
    fn unsendable_skipped_and_slots_respected() {
        let s = rarest_first_schedule(
            vec![
                offer("mbt://ghost", 0.9, &[5], &[]),
                offer("mbt://a", 0.5, &[], &[0]),
                offer("mbt://b", 0.5, &[], &[1]),
            ],
            1,
        );
        assert_eq!(s.len(), 1);
        assert_ne!(s[0].item, uri("mbt://ghost"));
    }

    #[test]
    fn availability_tracks_holders() {
        let offers = vec![
            offer("mbt://a", 0.5, &[], &[0, 1]),
            offer("mbt://b", 0.5, &[], &[0]),
        ];
        let mut a = Availability::from_offers(&offers);
        assert_eq!(a.holders_of(&uri("mbt://a")), 2);
        assert_eq!(a.holders_of(&uri("mbt://b")), 1);
        assert_eq!(a.holders_of(&uri("mbt://c")), 0);
        assert_eq!(a.rarest_first()[0], uri("mbt://b"));
        a.add_holder(&uri("mbt://b"));
        a.add_holder(&uri("mbt://b"));
        assert_eq!(a.rarest_first()[0], uri("mbt://a"));
    }

    #[test]
    fn deterministic() {
        let mk = || {
            vec![
                offer("mbt://b", 0.5, &[5], &[0]),
                offer("mbt://a", 0.5, &[5], &[1]),
            ]
        };
        assert_eq!(
            rarest_first_schedule(mk(), 10),
            rarest_first_schedule(mk(), 10)
        );
        assert_eq!(rarest_first_schedule(mk(), 10)[0].item, uri("mbt://a"));
    }
}
