//! Broadcast-based file download (paper §V).
//!
//! All previous DTN content distribution uses pair-wise transmission, which
//! contends between geometrically close links and reaches exactly one
//! receiver per transmission. MBT instead divides nodes into *cliques* in
//! which each node can receive from every other; within a clique only one
//! node sends at a time while all others are silent receivers, giving
//! per-node capacity `(n-1)/n` instead of `1/n` (see
//! [`dtn_sim::channel`]).
//!
//! The schedulers here are generic over the broadcast *item*: [`crate::piece::PieceId`]
//! for real piece-level transfers, or [`crate::uri::Uri`] for the
//! file-level granularity of the paper's evaluation model.
//!
//! - [`cooperative`]: a coordinator (deterministically elected) orders the
//!   broadcasts — requested items first, most-requested first (§V-A);
//! - [`tft`]: no coordinator can be trusted, so members broadcast in an
//!   agreed-upon cyclic order derived from a PRNG seeded with the sum of
//!   their IDs, each choosing what to send by credit weight (§V-B).

pub mod cooperative;
pub mod strategy;
pub mod swarm;
pub mod tft;

use dtn_trace::NodeId;

use crate::popularity::Popularity;

/// An item (file or piece) available for broadcast within a clique.
#[derive(Debug, Clone, PartialEq)]
pub struct Offer<I> {
    /// The item to broadcast.
    pub item: I,
    /// The item's popularity.
    pub popularity: Popularity,
    /// Clique members requesting the item (and not holding it).
    pub requesters: Vec<NodeId>,
    /// Clique members holding the item (candidate senders).
    pub holders: Vec<NodeId>,
}

impl<I> Offer<I> {
    /// Creates an offer; requester/holder lists are sorted and deduplicated.
    pub fn new(
        item: I,
        popularity: Popularity,
        mut requesters: Vec<NodeId>,
        mut holders: Vec<NodeId>,
    ) -> Self {
        requesters.sort_unstable();
        requesters.dedup();
        holders.sort_unstable();
        holders.dedup();
        Offer {
            item,
            popularity,
            requesters,
            holders,
        }
    }

    /// Number of distinct requesters.
    pub fn request_count(&self) -> usize {
        self.requesters.len()
    }

    /// True if at least one clique member can send this item.
    pub fn sendable(&self) -> bool {
        !self.holders.is_empty()
    }
}

/// One scheduled broadcast: `sender` transmits `item` to the whole clique.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Broadcast<I> {
    /// The transmitting node.
    pub sender: NodeId,
    /// The item transmitted.
    pub item: I,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uri::Uri;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn offer_dedups_and_sorts() {
        let o = Offer::new(
            Uri::new("mbt://a").unwrap(),
            Popularity::new(0.5),
            vec![n(3), n(1), n(3)],
            vec![n(2), n(2)],
        );
        assert_eq!(o.requesters, vec![n(1), n(3)]);
        assert_eq!(o.holders, vec![n(2)]);
        assert_eq!(o.request_count(), 2);
        assert!(o.sendable());
    }

    #[test]
    fn offer_without_holders_not_sendable() {
        let o = Offer::new(
            Uri::new("mbt://a").unwrap(),
            Popularity::MIN,
            vec![n(1)],
            vec![],
        );
        assert!(!o.sendable());
    }
}
