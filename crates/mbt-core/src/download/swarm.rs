//! Piece-level swarm state for one clique.
//!
//! While the paper's evaluation works at file granularity, the protocol
//! itself transfers 256 KB pieces "downloaded at different times and places"
//! (§III-B). [`Swarm`] tracks which clique member holds which piece of one
//! file and drives broadcast rounds under a chosen ordering until every
//! member completes — the building block behind the `piece_swarm` example
//! and the ordering benchmarks.

use std::collections::BTreeSet;

use dtn_trace::NodeId;

use crate::config::BroadcastOrdering;
use crate::download::{cooperative, strategy, Broadcast, Offer};
use crate::metadata::Metadata;
use crate::piece::PieceId;
use crate::popularity::Popularity;

/// Piece holdings of one clique downloading one file.
///
/// # Example
///
/// ```
/// use mbt_core::download::swarm::Swarm;
/// use mbt_core::{BroadcastOrdering, Metadata, Uri};
/// use dtn_trace::NodeId;
///
/// let uri = Uri::new("mbt://f")?;
/// let meta = Metadata::builder("f", "FOX", uri).sized(4 * 256 * 1024, 256 * 1024, vec![]).build();
/// let mut swarm = Swarm::new(meta, vec![NodeId::new(0), NodeId::new(1)]);
/// swarm.grant(NodeId::new(0), 0);
/// swarm.grant(NodeId::new(0), 1);
/// swarm.grant(NodeId::new(0), 2);
/// swarm.grant(NodeId::new(0), 3);
/// let rounds = swarm.run_to_completion(BroadcastOrdering::TwoPhase, 100);
/// assert_eq!(rounds, Some(4), "one broadcast per piece serves everyone");
/// assert!(swarm.all_complete());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Swarm {
    metadata: Metadata,
    members: Vec<NodeId>,
    holdings: Vec<BTreeSet<u32>>,
}

impl Swarm {
    /// Creates a swarm with no pieces held.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or contains duplicates.
    pub fn new(metadata: Metadata, members: Vec<NodeId>) -> Self {
        assert!(!members.is_empty(), "swarm needs at least one member");
        let mut dedup = members.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), members.len(), "duplicate swarm member");
        let holdings = vec![BTreeSet::new(); members.len()];
        Swarm {
            metadata,
            members,
            holdings,
        }
    }

    /// The file's metadata.
    pub fn metadata(&self) -> &Metadata {
        &self.metadata
    }

    /// The clique members.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of pieces in the file.
    pub fn piece_count(&self) -> u32 {
        self.metadata.piece_count()
    }

    fn slot_of(&self, member: NodeId) -> usize {
        self.members
            .iter()
            .position(|&m| m == member)
            .expect("member belongs to the swarm")
    }

    /// Grants `member` piece `index` (e.g. obtained in an earlier contact).
    ///
    /// # Panics
    ///
    /// Panics if `member` is not in the swarm or `index` is out of range.
    pub fn grant(&mut self, member: NodeId, index: u32) {
        assert!(index < self.piece_count(), "piece index out of range");
        let slot = self.slot_of(member);
        self.holdings[slot].insert(index);
    }

    /// True if `member` holds piece `index`.
    pub fn holds(&self, member: NodeId, index: u32) -> bool {
        self.holdings[self.slot_of(member)].contains(&index)
    }

    /// Pieces `member` still misses.
    pub fn missing(&self, member: NodeId) -> Vec<u32> {
        let held = &self.holdings[self.slot_of(member)];
        (0..self.piece_count())
            .filter(|i| !held.contains(i))
            .collect()
    }

    /// True if `member` has every piece.
    pub fn is_complete(&self, member: NodeId) -> bool {
        self.holdings[self.slot_of(member)].len() as u32 == self.piece_count()
    }

    /// True if every member has every piece.
    pub fn all_complete(&self) -> bool {
        self.members.iter().all(|&m| self.is_complete(m))
    }

    /// Builds the current piece offers: holders and requesters per piece,
    /// skipping pieces nobody needs or nobody has.
    pub fn offers(&self) -> Vec<Offer<PieceId>> {
        (0..self.piece_count())
            .filter_map(|idx| {
                let holders: Vec<NodeId> = self
                    .members
                    .iter()
                    .copied()
                    .filter(|&m| self.holds(m, idx))
                    .collect();
                let requesters: Vec<NodeId> = self
                    .members
                    .iter()
                    .copied()
                    .filter(|&m| !self.holds(m, idx))
                    .collect();
                if holders.is_empty() || requesters.is_empty() {
                    return None;
                }
                Some(Offer::new(
                    PieceId::new(self.metadata.uri().clone(), idx),
                    Popularity::new(0.5),
                    requesters,
                    holders,
                ))
            })
            .collect()
    }

    /// Runs one broadcast round under `ordering`: schedules a single
    /// broadcast and applies it (every member receives). Returns the
    /// broadcast, or `None` if nothing useful remains to send.
    pub fn step(&mut self, ordering: BroadcastOrdering) -> Option<Broadcast<PieceId>> {
        let offers = self.offers();
        if offers.is_empty() {
            return None;
        }
        let schedule = match ordering {
            BroadcastOrdering::TwoPhase => cooperative::schedule(offers, 1),
            BroadcastOrdering::RarestFirst => strategy::rarest_first_schedule(offers, 1),
        };
        let broadcast = schedule.into_iter().next()?;
        let idx = broadcast.item.index();
        for slot in 0..self.members.len() {
            self.holdings[slot].insert(idx);
        }
        Some(broadcast)
    }

    /// Runs rounds until every member completes or `max_rounds` is hit;
    /// returns the number of rounds taken, or `None` on timeout or if
    /// completion is impossible (a piece nobody holds).
    pub fn run_to_completion(
        &mut self,
        ordering: BroadcastOrdering,
        max_rounds: usize,
    ) -> Option<usize> {
        for round in 0..max_rounds {
            if self.all_complete() {
                return Some(round);
            }
            if self.step(ordering).is_none() {
                return if self.all_complete() {
                    Some(round)
                } else {
                    None
                };
            }
        }
        if self.all_complete() {
            Some(max_rounds)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uri::Uri;

    fn meta(pieces: u64) -> Metadata {
        Metadata::builder("f", "FOX", Uri::new("mbt://f").unwrap())
            .sized(pieces * 256 * 1024, 256 * 1024, vec![])
            .build()
    }

    fn members(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn seeded_swarm_completes_in_piece_count_rounds() {
        let mut swarm = Swarm::new(meta(6), members(4));
        for i in 0..6 {
            swarm.grant(NodeId::new(0), i);
        }
        let rounds = swarm.run_to_completion(BroadcastOrdering::TwoPhase, 100);
        assert_eq!(rounds, Some(6));
        assert!(swarm.all_complete());
    }

    #[test]
    fn broadcast_beats_pairwise_round_count() {
        // With n members and p pieces all seeded at one node, broadcast needs
        // p rounds; pair-wise would need p * (n - 1) transfers.
        let n = 5u32;
        let p = 8u64;
        let mut swarm = Swarm::new(meta(p), members(n));
        for i in 0..p as u32 {
            swarm.grant(NodeId::new(0), i);
        }
        let rounds = swarm
            .run_to_completion(BroadcastOrdering::TwoPhase, 1000)
            .unwrap();
        assert_eq!(rounds as u64, p);
        assert!(rounds < (p as usize) * (n as usize - 1));
    }

    #[test]
    fn scattered_pieces_still_complete() {
        let mut swarm = Swarm::new(meta(4), members(4));
        // Each member starts with exactly one distinct piece.
        for i in 0..4u32 {
            swarm.grant(NodeId::new(i), i);
        }
        let rounds = swarm.run_to_completion(BroadcastOrdering::RarestFirst, 100);
        assert_eq!(rounds, Some(4));
    }

    #[test]
    fn impossible_swarm_reports_none() {
        let mut swarm = Swarm::new(meta(2), members(2));
        swarm.grant(NodeId::new(0), 0); // piece 1 exists nowhere
        assert_eq!(
            swarm.run_to_completion(BroadcastOrdering::TwoPhase, 100),
            None
        );
        assert!(!swarm.all_complete());
        // Member 1 received piece 0 during the attempt but piece 1 is gone.
        assert_eq!(swarm.missing(NodeId::new(1)), vec![1]);
    }

    #[test]
    fn missing_and_holds_track_state() {
        let mut swarm = Swarm::new(meta(3), members(2));
        assert_eq!(swarm.missing(NodeId::new(0)), vec![0, 1, 2]);
        swarm.grant(NodeId::new(0), 1);
        assert!(swarm.holds(NodeId::new(0), 1));
        assert!(!swarm.holds(NodeId::new(1), 1));
        assert_eq!(swarm.missing(NodeId::new(0)), vec![0, 2]);
        assert!(!swarm.is_complete(NodeId::new(0)));
    }

    #[test]
    fn offers_exclude_unneeded_and_unheld() {
        let mut swarm = Swarm::new(meta(2), members(2));
        swarm.grant(NodeId::new(0), 0);
        swarm.grant(NodeId::new(1), 0); // piece 0 fully replicated
        let offers = swarm.offers();
        assert!(
            offers.is_empty(),
            "piece 0 needs nobody, piece 1 has nobody"
        );
    }

    #[test]
    fn rarest_first_spreads_rare_piece_first() {
        let mut swarm = Swarm::new(meta(2), members(3));
        // Piece 0 held by two members, piece 1 by one.
        swarm.grant(NodeId::new(0), 0);
        swarm.grant(NodeId::new(1), 0);
        swarm.grant(NodeId::new(2), 1);
        let b = swarm.step(BroadcastOrdering::RarestFirst).unwrap();
        assert_eq!(b.item.index(), 1);
        assert_eq!(b.sender, NodeId::new(2));
    }

    #[test]
    #[should_panic(expected = "duplicate swarm member")]
    fn rejects_duplicate_members() {
        let _ = Swarm::new(meta(1), vec![NodeId::new(0), NodeId::new(0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_grant() {
        let mut swarm = Swarm::new(meta(2), members(2));
        swarm.grant(NodeId::new(0), 5);
    }
}
