//! Cooperative (coordinator-driven) broadcast scheduling (paper §V-A).
//!
//! "To prevent collisions and facilitate cooperation, a coordinator is
//! selected in each clique. The coordinator determines the order in which
//! file pieces are broadcasted ... In the first phase, file pieces requested
//! by the nodes in the clique are sent. Those requested by more nodes are
//! sent first. File pieces requested by equal numbers of nodes are broadcast
//! in decreasing file popularity. In the second phase, other file pieces are
//! sent in decreasing popularity."

use dtn_trace::NodeId;

use crate::download::{Broadcast, Offer};
use crate::popularity::cmp_popularity;

/// Elects the clique coordinator: the lowest node ID, so every member agrees
/// without communication. Returns `None` for an empty clique.
pub fn elect_coordinator(members: &[NodeId]) -> Option<NodeId> {
    members.iter().copied().min()
}

/// Produces the coordinator's broadcast schedule, at most `slots` entries.
///
/// Only sendable offers (with at least one holder) are scheduled, each at
/// most once; the sender is the lowest-ID holder. Offers nobody requests are
/// still scheduled in phase 2 (receivers may want them later), popularity
/// descending.
///
/// # Example
///
/// ```
/// use mbt_core::download::{cooperative, Offer};
/// use mbt_core::{Popularity, Uri};
/// use dtn_trace::NodeId;
///
/// let hot = Offer::new(Uri::new("mbt://hot")?, Popularity::new(0.2),
///     vec![NodeId::new(1), NodeId::new(2)], vec![NodeId::new(0)]);
/// let cold = Offer::new(Uri::new("mbt://cold")?, Popularity::new(0.9),
///     vec![NodeId::new(1)], vec![NodeId::new(0)]);
/// let schedule = cooperative::schedule(vec![cold, hot], 2);
/// assert_eq!(schedule[0].item.as_str(), "mbt://hot", "two requesters beat one");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn schedule<I: Clone + Ord>(offers: Vec<Offer<I>>, slots: usize) -> Vec<Broadcast<I>> {
    let mut phase1: Vec<Offer<I>> = Vec::new();
    let mut phase2: Vec<Offer<I>> = Vec::new();
    for offer in offers {
        if !offer.sendable() {
            continue;
        }
        if offer.request_count() > 0 {
            phase1.push(offer);
        } else {
            phase2.push(offer);
        }
    }
    phase1.sort_by(|a, b| {
        b.request_count()
            .cmp(&a.request_count())
            .then_with(|| cmp_popularity(b.popularity, a.popularity))
            .then_with(|| a.item.cmp(&b.item))
    });
    phase2.sort_by(|a, b| {
        cmp_popularity(b.popularity, a.popularity).then_with(|| a.item.cmp(&b.item))
    });
    phase1
        .into_iter()
        .chain(phase2)
        .take(slots)
        .map(|offer| Broadcast {
            sender: offer.holders[0],
            item: offer.item,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popularity::Popularity;
    use crate::uri::Uri;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn uri(s: &str) -> Uri {
        Uri::new(s).unwrap()
    }

    #[test]
    fn coordinator_is_lowest_id() {
        assert_eq!(elect_coordinator(&[n(4), n(2), n(9)]), Some(n(2)));
        assert_eq!(elect_coordinator(&[]), None);
    }

    #[test]
    fn requested_by_more_first() {
        let offers = vec![
            Offer::new(uri("mbt://one"), Popularity::MAX, vec![n(1)], vec![n(0)]),
            Offer::new(
                uri("mbt://two"),
                Popularity::MIN,
                vec![n(1), n(2)],
                vec![n(0)],
            ),
        ];
        let s = schedule(offers, 10);
        assert_eq!(s[0].item, uri("mbt://two"));
        assert_eq!(s[1].item, uri("mbt://one"));
    }

    #[test]
    fn popularity_breaks_request_ties() {
        let offers = vec![
            Offer::new(uri("mbt://a"), Popularity::new(0.1), vec![n(1)], vec![n(0)]),
            Offer::new(uri("mbt://b"), Popularity::new(0.9), vec![n(2)], vec![n(0)]),
        ];
        let s = schedule(offers, 10);
        assert_eq!(s[0].item, uri("mbt://b"));
    }

    #[test]
    fn unrequested_items_fill_phase_two() {
        let offers = vec![
            Offer::new(uri("mbt://req"), Popularity::MIN, vec![n(1)], vec![n(0)]),
            Offer::new(uri("mbt://pop"), Popularity::MAX, vec![], vec![n(0)]),
        ];
        let s = schedule(offers, 10);
        assert_eq!(s[0].item, uri("mbt://req"));
        assert_eq!(s[1].item, uri("mbt://pop"));
    }

    #[test]
    fn unsendable_offers_skipped() {
        let offers = vec![Offer::new(
            uri("mbt://ghost"),
            Popularity::MAX,
            vec![n(1)],
            vec![],
        )];
        assert!(schedule(offers, 10).is_empty());
    }

    #[test]
    fn sender_is_lowest_id_holder() {
        let offers = vec![Offer::new(
            uri("mbt://a"),
            Popularity::MAX,
            vec![n(1)],
            vec![n(5), n(3)],
        )];
        let s = schedule(offers, 10);
        assert_eq!(s[0].sender, n(3));
    }

    #[test]
    fn slots_truncate_schedule() {
        let offers: Vec<Offer<Uri>> = (0..5)
            .map(|i| {
                Offer::new(
                    uri(&format!("mbt://{i}")),
                    Popularity::new(0.5),
                    vec![n(1)],
                    vec![n(0)],
                )
            })
            .collect();
        assert_eq!(schedule(offers, 3).len(), 3);
    }

    #[test]
    fn deterministic_ordering() {
        let mk = || {
            vec![
                Offer::new(uri("mbt://b"), Popularity::new(0.5), vec![n(1)], vec![n(0)]),
                Offer::new(uri("mbt://a"), Popularity::new(0.5), vec![n(2)], vec![n(0)]),
            ]
        };
        assert_eq!(schedule(mk(), 10), schedule(mk(), 10));
        // Equal count + popularity → item order decides.
        assert_eq!(schedule(mk(), 10)[0].item, uri("mbt://a"));
    }
}
