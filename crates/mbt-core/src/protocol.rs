//! Protocol variants: the paper's MBT triad (§VI-A) plus an open
//! [`ProtocolSpec`] API for new variants.
//!
//! The paper compares three closed variants ([`ProtocolKind`]). Everything
//! else in the crate now runs on [`ProtocolSpec`], an open description of a
//! variant: the two behaviour flags the triad toggles, plus pluggable
//! [`CachePolicy`] and [`ReplicationPolicy`] seams. The triad maps onto specs
//! with the default (no-op) policies — those paths are byte-identical to the
//! old enum dispatch — while two new variants slot in without touching any
//! match arm:
//!
//! - [`ProtocolSpec::POP_CACHE`] — cooperative cache eviction ranked by file
//!   popularity under a bounded per-node file buffer, after Wang & Kulkarni,
//!   *Cooperative Caching based on File Popularity Ranking in DTNs*.
//! - [`ProtocolSpec::DIFFUSE_REP`] — proactive seeding driven by a diffusion
//!   model of file availability, after Napoli et al., *Improving files
//!   availability for BitTorrent using a diffusion model*.

use std::fmt;

/// Which MBT variant a node runs.
///
/// - [`ProtocolKind::Mbt`] — the full protocol: queries are distributed to
///   frequent contacting nodes, metadata are distributed standalone, files
///   are downloaded by request and popularity.
/// - [`ProtocolKind::MbtQ`] — "without distribution of queries": a node can
///   only pull metadata from currently-connected peers; it cannot ask its
///   frequent contacting nodes to collect metadata it is interested in.
/// - [`ProtocolKind::MbtQm`] — "without distribution of both queries and
///   metadata": a node can only pull files from other nodes; metadata travel
///   only together with their files (as in prior content-distribution
///   systems) and file selection is purely popularity-driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProtocolKind {
    /// Full mobile BitTorrent.
    #[default]
    Mbt,
    /// MBT without query distribution.
    MbtQ,
    /// MBT without query and metadata distribution.
    MbtQm,
}

impl ProtocolKind {
    /// All variants, in the order the paper's figures list them.
    pub const ALL: [ProtocolKind; 3] = [ProtocolKind::Mbt, ProtocolKind::MbtQ, ProtocolKind::MbtQm];

    /// True if nodes store and serve the queries of their frequent
    /// contacting nodes (MBT only).
    pub fn distributes_queries(self) -> bool {
        matches!(self, ProtocolKind::Mbt)
    }

    /// True if metadata circulate standalone, ahead of files (MBT and
    /// MBT-Q).
    pub fn distributes_metadata(self) -> bool {
        !matches!(self, ProtocolKind::MbtQm)
    }

    /// Short label used in experiment output ("MBT", "MBT-Q", "MBT-QM").
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Mbt => "MBT",
            ProtocolKind::MbtQ => "MBT-Q",
            ProtocolKind::MbtQm => "MBT-QM",
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Whose observations rank a file's popularity under
/// [`CachePolicy::PopularityRanked`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PopularityScope {
    /// Rank by the globally-gossiped popularity counters every node already
    /// carries (the paper's §IV counters).
    #[default]
    Global,
    /// Rank by locally-observed demand: how often peers met in contacts have
    /// asked for the file.
    Local,
}

/// How a node's bounded file buffer decides what to keep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CachePolicy {
    /// No bound: every completed file is kept until its TTL expires (the
    /// paper's model; all three MBT variants).
    #[default]
    Unbounded,
    /// At most `capacity` files; when full, the lowest-ranked *unwanted*
    /// file (one matching none of the node's own queries) is evicted to
    /// admit a better one. Files the node itself wants are never evicted.
    PopularityRanked {
        /// Maximum number of complete files held at once.
        capacity: u32,
        /// Whether ranking uses global gossip or local observation.
        scope: PopularityScope,
    },
}

/// How a node proactively replicates files beyond request-driven download.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplicationPolicy {
    /// Request-driven only (the paper's model; all three MBT variants).
    #[default]
    None,
    /// Availability-diffusion seeding: during a contact, each member keeps an
    /// exponentially-smoothed estimate of every known file's availability
    /// (fraction of clique members holding it) and proactively pulls files
    /// whose estimated availability sits below a threshold.
    Diffusion {
        /// Smoothing weight of the newest observation, in percent (0–100).
        smoothing_pct: u8,
        /// Availability threshold below which a file is considered scarce
        /// and proactively replicated, in percent (0–100).
        threshold_pct: u8,
    },
}

/// An open description of a protocol variant.
///
/// A spec is plain data: two behaviour flags (the axes the paper's triad
/// toggles) plus a [`CachePolicy`] and a [`ReplicationPolicy`]. The canned
/// triad specs use the default policies and are byte-identical to the
/// [`ProtocolKind`] paths they replace (pinned by the repo's equivalence
/// tests); new variants change only the policy fields.
///
/// # Example
///
/// ```
/// use mbt_core::{ProtocolKind, ProtocolSpec};
///
/// assert_eq!(ProtocolSpec::from(ProtocolKind::Mbt), ProtocolSpec::MBT);
/// assert_eq!(ProtocolSpec::by_name("popcache").unwrap().name(), "PopCache");
/// assert!(ProtocolSpec::by_name("carrier-pigeon").is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProtocolSpec {
    name: &'static str,
    distributes_queries: bool,
    distributes_metadata: bool,
    cache: CachePolicy,
    replication: ReplicationPolicy,
}

impl ProtocolSpec {
    /// The full protocol (canned spec for [`ProtocolKind::Mbt`]).
    pub const MBT: ProtocolSpec = ProtocolSpec {
        name: "MBT",
        distributes_queries: true,
        distributes_metadata: true,
        cache: CachePolicy::Unbounded,
        replication: ReplicationPolicy::None,
    };

    /// MBT without query distribution (canned spec for
    /// [`ProtocolKind::MbtQ`]).
    pub const MBT_Q: ProtocolSpec = ProtocolSpec {
        name: "MBT-Q",
        distributes_queries: false,
        distributes_metadata: true,
        cache: CachePolicy::Unbounded,
        replication: ReplicationPolicy::None,
    };

    /// MBT without query and metadata distribution (canned spec for
    /// [`ProtocolKind::MbtQm`]).
    pub const MBT_QM: ProtocolSpec = ProtocolSpec {
        name: "MBT-QM",
        distributes_queries: false,
        distributes_metadata: false,
        cache: CachePolicy::Unbounded,
        replication: ReplicationPolicy::None,
    };

    /// Full MBT behaviour plus popularity-ranked eviction under a bounded
    /// per-node file buffer (globally-gossiped ranking, 8 files).
    pub const POP_CACHE: ProtocolSpec = ProtocolSpec {
        name: "PopCache",
        distributes_queries: true,
        distributes_metadata: true,
        cache: CachePolicy::PopularityRanked {
            capacity: 8,
            scope: PopularityScope::Global,
        },
        replication: ReplicationPolicy::None,
    };

    /// Full MBT behaviour plus availability-diffusion proactive seeding
    /// (smoothing 50%, scarcity threshold 35%).
    pub const DIFFUSE_REP: ProtocolSpec = ProtocolSpec {
        name: "DiffuseRep",
        distributes_queries: true,
        distributes_metadata: true,
        cache: CachePolicy::Unbounded,
        replication: ReplicationPolicy::Diffusion {
            smoothing_pct: 50,
            threshold_pct: 35,
        },
    };

    /// The paper's triad, in figure order — the default sweep-grid protocol
    /// list (grid positions, and therefore derived per-cell seeds, match the
    /// old `ProtocolKind::ALL` exactly).
    pub const TRIAD: [ProtocolSpec; 3] =
        [ProtocolSpec::MBT, ProtocolSpec::MBT_Q, ProtocolSpec::MBT_QM];

    /// The registry of built-in variants: the triad followed by the two new
    /// protocol families, in head-to-head figure order.
    pub const fn builtin() -> [ProtocolSpec; 5] {
        [
            ProtocolSpec::MBT,
            ProtocolSpec::MBT_Q,
            ProtocolSpec::MBT_QM,
            ProtocolSpec::POP_CACHE,
            ProtocolSpec::DIFFUSE_REP,
        ]
    }

    /// Looks a built-in spec up by name (case-insensitive; `"mbt-qm"` and
    /// `"mbt_qm"` both match MBT-QM). On failure the error suggests the
    /// closest registered name.
    pub fn by_name(name: &str) -> Result<ProtocolSpec, UnknownProtocol> {
        let key = canonical(name);
        for spec in ProtocolSpec::builtin() {
            if canonical(spec.name) == key {
                return Ok(spec);
            }
        }
        let suggestion = ProtocolSpec::builtin()
            .into_iter()
            .map(|s| (edit_distance(&key, &canonical(s.name)), s.name))
            .min()
            .filter(|(d, _)| *d <= 3)
            .map(|(_, n)| n);
        Err(UnknownProtocol {
            name: name.to_string(),
            suggestion,
        })
    }

    /// The variant's display name ("MBT", "PopCache", ...).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// True if nodes store and serve the queries of their frequent
    /// contacting nodes.
    pub fn distributes_queries(&self) -> bool {
        self.distributes_queries
    }

    /// True if metadata circulate standalone, ahead of files.
    pub fn distributes_metadata(&self) -> bool {
        self.distributes_metadata
    }

    /// The file-buffer eviction policy.
    pub fn cache(&self) -> CachePolicy {
        self.cache
    }

    /// The proactive replication policy.
    pub fn replication(&self) -> ReplicationPolicy {
        self.replication
    }

    /// Derives a new named spec with a different cache policy (for sweeps
    /// over capacities/scopes). The name must be `'static`; use a leaked or
    /// interned string for dynamic names.
    pub fn with_cache(self, name: &'static str, cache: CachePolicy) -> ProtocolSpec {
        ProtocolSpec {
            name,
            cache,
            ..self
        }
    }

    /// Derives a new named spec with a different replication policy.
    pub fn with_replication(
        self,
        name: &'static str,
        replication: ReplicationPolicy,
    ) -> ProtocolSpec {
        ProtocolSpec {
            name,
            replication,
            ..self
        }
    }
}

impl Default for ProtocolSpec {
    fn default() -> Self {
        ProtocolSpec::MBT
    }
}

impl fmt::Display for ProtocolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

impl From<ProtocolKind> for ProtocolSpec {
    fn from(kind: ProtocolKind) -> Self {
        match kind {
            ProtocolKind::Mbt => ProtocolSpec::MBT,
            ProtocolKind::MbtQ => ProtocolSpec::MBT_Q,
            ProtocolKind::MbtQm => ProtocolSpec::MBT_QM,
        }
    }
}

/// Error returned by [`ProtocolSpec::by_name`] for an unregistered name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownProtocol {
    name: String,
    suggestion: Option<&'static str>,
}

impl UnknownProtocol {
    /// The name that failed to resolve.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for UnknownProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = ProtocolSpec::builtin().iter().map(|s| s.name).collect();
        write!(f, "unknown protocol `{}`", self.name)?;
        if let Some(s) = self.suggestion {
            write!(f, " (did you mean `{s}`?)")?;
        }
        write!(f, "; known protocols: {}", names.join(", "))
    }
}

impl std::error::Error for UnknownProtocol {}

/// Lowercases and strips separators so `"MBT-QM"`, `"mbt_qm"` and `"mbtqm"`
/// compare equal.
fn canonical(name: &str) -> String {
    name.chars()
        .filter(|c| *c != '-' && *c != '_' && *c != ' ')
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

/// Levenshtein distance, for the did-you-mean suggestion. Inputs are short
/// protocol names, so the O(a·b) DP is fine.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix() {
        assert!(ProtocolKind::Mbt.distributes_queries());
        assert!(ProtocolKind::Mbt.distributes_metadata());
        assert!(!ProtocolKind::MbtQ.distributes_queries());
        assert!(ProtocolKind::MbtQ.distributes_metadata());
        assert!(!ProtocolKind::MbtQm.distributes_queries());
        assert!(!ProtocolKind::MbtQm.distributes_metadata());
    }

    #[test]
    fn labels() {
        assert_eq!(ProtocolKind::Mbt.to_string(), "MBT");
        assert_eq!(ProtocolKind::MbtQ.to_string(), "MBT-Q");
        assert_eq!(ProtocolKind::MbtQm.to_string(), "MBT-QM");
    }

    #[test]
    fn all_lists_three() {
        assert_eq!(ProtocolKind::ALL.len(), 3);
        assert_eq!(ProtocolKind::default(), ProtocolKind::Mbt);
    }

    #[test]
    fn triad_specs_mirror_kinds() {
        for (kind, spec) in ProtocolKind::ALL.iter().zip(ProtocolSpec::TRIAD) {
            assert_eq!(ProtocolSpec::from(*kind), spec);
            assert_eq!(kind.label(), spec.name());
            assert_eq!(kind.distributes_queries(), spec.distributes_queries());
            assert_eq!(kind.distributes_metadata(), spec.distributes_metadata());
            assert_eq!(spec.cache(), CachePolicy::Unbounded);
            assert_eq!(spec.replication(), ReplicationPolicy::None);
        }
        assert_eq!(ProtocolSpec::default(), ProtocolSpec::MBT);
    }

    #[test]
    fn registry_resolves_names() {
        for spec in ProtocolSpec::builtin() {
            assert_eq!(ProtocolSpec::by_name(spec.name()).unwrap(), spec);
            assert_eq!(
                ProtocolSpec::by_name(&spec.name().to_lowercase()).unwrap(),
                spec
            );
        }
        assert_eq!(
            ProtocolSpec::by_name("mbt_qm").unwrap(),
            ProtocolSpec::MBT_QM
        );
        assert_eq!(
            ProtocolSpec::by_name("POPCACHE").unwrap(),
            ProtocolSpec::POP_CACHE
        );
    }

    #[test]
    fn unknown_name_suggests_closest() {
        let err = ProtocolSpec::by_name("popcash").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown protocol `popcash`"), "{msg}");
        assert!(msg.contains("did you mean `PopCache`?"), "{msg}");
        assert!(msg.contains("known protocols: MBT, MBT-Q"), "{msg}");

        let far = ProtocolSpec::by_name("carrier-pigeon").unwrap_err();
        let msg = far.to_string();
        assert!(!msg.contains("did you mean"), "{msg}");
        assert!(msg.contains("known protocols"), "{msg}");
    }

    #[test]
    fn new_variants_carry_policies() {
        assert_eq!(
            ProtocolSpec::POP_CACHE.cache(),
            CachePolicy::PopularityRanked {
                capacity: 8,
                scope: PopularityScope::Global
            }
        );
        assert_eq!(
            ProtocolSpec::DIFFUSE_REP.replication(),
            ReplicationPolicy::Diffusion {
                smoothing_pct: 50,
                threshold_pct: 35
            }
        );
        let local = ProtocolSpec::POP_CACHE.with_cache(
            "PopCache-L",
            CachePolicy::PopularityRanked {
                capacity: 4,
                scope: PopularityScope::Local,
            },
        );
        assert_eq!(local.name(), "PopCache-L");
        assert!(local.distributes_queries());
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("mbt", "mbt"), 0);
        assert_eq!(edit_distance("mbtq", "mbtqm"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
    }
}
