//! The three protocol variants compared in the paper's evaluation (§VI-A).

use std::fmt;

/// Which MBT variant a node runs.
///
/// - [`ProtocolKind::Mbt`] — the full protocol: queries are distributed to
///   frequent contacting nodes, metadata are distributed standalone, files
///   are downloaded by request and popularity.
/// - [`ProtocolKind::MbtQ`] — "without distribution of queries": a node can
///   only pull metadata from currently-connected peers; it cannot ask its
///   frequent contacting nodes to collect metadata it is interested in.
/// - [`ProtocolKind::MbtQm`] — "without distribution of both queries and
///   metadata": a node can only pull files from other nodes; metadata travel
///   only together with their files (as in prior content-distribution
///   systems) and file selection is purely popularity-driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProtocolKind {
    /// Full mobile BitTorrent.
    #[default]
    Mbt,
    /// MBT without query distribution.
    MbtQ,
    /// MBT without query and metadata distribution.
    MbtQm,
}

impl ProtocolKind {
    /// All variants, in the order the paper's figures list them.
    pub const ALL: [ProtocolKind; 3] = [ProtocolKind::Mbt, ProtocolKind::MbtQ, ProtocolKind::MbtQm];

    /// True if nodes store and serve the queries of their frequent
    /// contacting nodes (MBT only).
    pub fn distributes_queries(self) -> bool {
        matches!(self, ProtocolKind::Mbt)
    }

    /// True if metadata circulate standalone, ahead of files (MBT and
    /// MBT-Q).
    pub fn distributes_metadata(self) -> bool {
        !matches!(self, ProtocolKind::MbtQm)
    }

    /// Short label used in experiment output ("MBT", "MBT-Q", "MBT-QM").
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Mbt => "MBT",
            ProtocolKind::MbtQ => "MBT-Q",
            ProtocolKind::MbtQm => "MBT-QM",
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix() {
        assert!(ProtocolKind::Mbt.distributes_queries());
        assert!(ProtocolKind::Mbt.distributes_metadata());
        assert!(!ProtocolKind::MbtQ.distributes_queries());
        assert!(ProtocolKind::MbtQ.distributes_metadata());
        assert!(!ProtocolKind::MbtQm.distributes_queries());
        assert!(!ProtocolKind::MbtQm.distributes_metadata());
    }

    #[test]
    fn labels() {
        assert_eq!(ProtocolKind::Mbt.to_string(), "MBT");
        assert_eq!(ProtocolKind::MbtQ.to_string(), "MBT-Q");
        assert_eq!(ProtocolKind::MbtQm.to_string(), "MBT-QM");
    }

    #[test]
    fn all_lists_three() {
        assert_eq!(ProtocolKind::ALL.len(), 3);
        assert_eq!(ProtocolKind::default(), ProtocolKind::Mbt);
    }
}
