//! Tit-for-tat metadata send ordering (paper §IV-B).
//!
//! In the selfish case, metadata are weighed "by the sum of the credits of
//! the nodes requesting the metadata": peers that contributed more have their
//! queries weighed more heavily and receive their desired metadata earlier.
//! Unlike BitTorrent's tit-for-tat, no peer is choked — wireless transmission
//! is broadcast in nature — so the incentive acts purely through ordering.

use crate::credit::CreditLedger;
use crate::discovery::MetadataOffer;
use crate::metadata::Metadata;
use crate::popularity::cmp_popularity;

/// Orders the offered metadata for transmission under tit-for-tat and
/// truncates to `budget`.
///
/// Phase 1 sends requested metadata by descending requester credit weight
/// (ties: more requesters, then popularity); phase 2 sends unrequested
/// metadata by descending popularity — sending popular metadata is how a node
/// earns credit from peers it has nothing requested for (§IV-B).
///
/// # Example
///
/// ```
/// use mbt_core::discovery::{tft, MetadataOffer};
/// use mbt_core::{CreditLedger, Metadata, Popularity, Query, Uri};
/// use dtn_trace::NodeId;
///
/// let mut ledger = CreditLedger::new();
/// ledger.reward_matched(NodeId::new(2)); // node 2 has contributed before
///
/// let a = Metadata::builder("news for one", "FOX", Uri::new("mbt://a")?).build();
/// let b = Metadata::builder("news for two", "FOX", Uri::new("mbt://b")?).build();
/// let queries = vec![
///     (NodeId::new(1), Query::new("one")?),
///     (NodeId::new(2), Query::new("two")?),
/// ];
/// let offers = vec![
///     MetadataOffer::build(&a, Popularity::MAX, &queries),
///     MetadataOffer::build(&b, Popularity::MIN, &queries),
/// ];
/// let order = tft::send_order(offers, &ledger, 2);
/// assert_eq!(order[0].uri().as_str(), "mbt://b", "contributor's request served first");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn send_order<'a>(
    offers: Vec<MetadataOffer<'a>>,
    ledger: &CreditLedger,
    budget: usize,
) -> Vec<&'a Metadata> {
    let mut phase1: Vec<(f64, MetadataOffer<'a>)> = Vec::new();
    let mut phase2: Vec<MetadataOffer<'a>> = Vec::new();
    for offer in offers {
        if offer.request_count() > 0 {
            let weight = ledger.weight_of(offer.requesters.iter().copied());
            phase1.push((weight, offer));
        } else {
            phase2.push(offer);
        }
    }
    phase1.sort_by(|(wa, a), (wb, b)| {
        wb.partial_cmp(wa)
            .expect("credit weights are finite")
            .then_with(|| b.request_count().cmp(&a.request_count()))
            .then_with(|| cmp_popularity(b.popularity, a.popularity))
            .then_with(|| a.metadata.uri().cmp(b.metadata.uri()))
    });
    phase2.sort_by(|a, b| {
        cmp_popularity(b.popularity, a.popularity)
            .then_with(|| a.metadata.uri().cmp(b.metadata.uri()))
    });
    phase1
        .into_iter()
        .map(|(_, o)| o)
        .chain(phase2)
        .take(budget)
        .map(|o| o.metadata)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popularity::Popularity;
    use crate::query::Query;
    use crate::uri::Uri;
    use dtn_trace::NodeId;

    fn meta(name: &str, uri: &str) -> Metadata {
        Metadata::builder(name, "FOX", Uri::new(uri).unwrap()).build()
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn high_credit_requester_served_first() {
        let mut ledger = CreditLedger::new();
        ledger.reward_matched(n(2));
        let a = meta("item one", "mbt://a");
        let b = meta("item two", "mbt://b");
        let queries = vec![
            (n(1), Query::new("one").unwrap()),
            (n(2), Query::new("two").unwrap()),
        ];
        let offers = vec![
            MetadataOffer::build(&a, Popularity::MAX, &queries),
            MetadataOffer::build(&b, Popularity::MIN, &queries),
        ];
        let order = send_order(offers, &ledger, 10);
        assert_eq!(order[0].uri().as_str(), "mbt://b");
    }

    #[test]
    fn equal_weight_falls_back_to_request_count() {
        let ledger = CreditLedger::new(); // all credits zero
        let a = meta("shared topic alpha", "mbt://a");
        let b = meta("shared topic beta extra", "mbt://b");
        let queries = vec![
            (n(1), Query::new("shared").unwrap()),
            (n(2), Query::new("extra").unwrap()),
        ];
        let offers = vec![
            MetadataOffer::build(&a, Popularity::MAX, &queries),
            MetadataOffer::build(&b, Popularity::MIN, &queries),
        ];
        let order = send_order(offers, &ledger, 10);
        // b matches two requesters (shared + extra), a one.
        assert_eq!(order[0].uri().as_str(), "mbt://b");
    }

    #[test]
    fn free_rider_requests_rank_last_in_phase_one() {
        let mut ledger = CreditLedger::new();
        ledger.reward_unmatched(n(1), Popularity::new(0.5));
        // n(3) is a free-rider with zero credit.
        let a = meta("contributor item", "mbt://a");
        let b = meta("freerider item", "mbt://b");
        let queries = vec![
            (n(1), Query::new("contributor").unwrap()),
            (n(3), Query::new("freerider").unwrap()),
        ];
        let offers = vec![
            MetadataOffer::build(&b, Popularity::MAX, &queries),
            MetadataOffer::build(&a, Popularity::MIN, &queries),
        ];
        let order = send_order(offers, &ledger, 10);
        assert_eq!(order[0].uri().as_str(), "mbt://a");
        // The free-rider's metadata still gets sent second (no choking).
        assert_eq!(order[1].uri().as_str(), "mbt://b");
    }

    #[test]
    fn unrequested_phase_sorted_by_popularity() {
        let ledger = CreditLedger::new();
        let a = meta("a", "mbt://a");
        let b = meta("b", "mbt://b");
        let offers = vec![
            MetadataOffer::build(&a, Popularity::new(0.1), &[]),
            MetadataOffer::build(&b, Popularity::new(0.9), &[]),
        ];
        let order = send_order(offers, &ledger, 10);
        assert_eq!(order[0].uri().as_str(), "mbt://b");
    }

    #[test]
    fn budget_truncates() {
        let ledger = CreditLedger::new();
        let metas: Vec<Metadata> = (0..5).map(|i| meta("x", &format!("mbt://{i}"))).collect();
        let offers: Vec<MetadataOffer<'_>> = metas
            .iter()
            .map(|m| MetadataOffer::build(m, Popularity::new(0.5), &[]))
            .collect();
        assert_eq!(send_order(offers, &ledger, 3).len(), 3);
    }

    #[test]
    fn matches_cooperative_when_credits_equal() {
        // With uniform credits, tit-for-tat degenerates to the cooperative
        // ordering (weight ∝ request count).
        let mut ledger = CreditLedger::new();
        for i in 1..=3 {
            ledger.reward_matched(n(i));
        }
        let a = meta("topic one", "mbt://a");
        let b = meta("topic one two", "mbt://b");
        let queries = vec![
            (n(1), Query::new("one").unwrap()),
            (n(2), Query::new("two").unwrap()),
        ];
        let offers = vec![
            MetadataOffer::build(&a, Popularity::MAX, &queries),
            MetadataOffer::build(&b, Popularity::MIN, &queries),
        ];
        let tft_order = send_order(offers.clone(), &ledger, 10);
        let coop_order = crate::discovery::cooperative::send_order(offers, 10);
        assert_eq!(
            tft_order.iter().map(|m| m.uri()).collect::<Vec<_>>(),
            coop_order.iter().map(|m| m.uri()).collect::<Vec<_>>()
        );
    }
}
