//! Cooperative (altruistic) metadata send ordering (paper §IV-A).
//!
//! "Each node sends metadata in two phases. In the first phase, metadata that
//! match the query strings of the connected nodes are sent. Those that match
//! the query strings of more nodes themselves are sent \[first\]. In this
//! phase, metadata that match the same number of query strings are sent in
//! the order of decreasing popularity. In the second phase, other metadata
//! that do not match any queries are sent in the order of decreasing
//! popularity."

use crate::discovery::MetadataOffer;
use crate::metadata::Metadata;
use crate::popularity::cmp_popularity;

/// Orders the offered metadata for transmission and truncates to `budget`.
///
/// Because the opportunistic connection may stop at any time, the most useful
/// metadata (matching the most connected nodes' queries) go first.
///
/// # Example
///
/// ```
/// use mbt_core::discovery::{cooperative, MetadataOffer};
/// use mbt_core::{Metadata, Popularity, Query, Uri};
/// use dtn_trace::NodeId;
///
/// let wanted = Metadata::builder("FOX news", "FOX", Uri::new("mbt://a")?).build();
/// let filler = Metadata::builder("ABC comedy", "ABC", Uri::new("mbt://b")?).build();
/// let queries = vec![(NodeId::new(1), Query::new("news")?)];
/// let offers = vec![
///     MetadataOffer::build(&filler, Popularity::MAX, &queries),
///     MetadataOffer::build(&wanted, Popularity::new(0.1), &queries),
/// ];
/// let order = cooperative::send_order(offers, 2);
/// assert_eq!(order[0].name(), "FOX news", "requested metadata go first");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn send_order<'a>(offers: Vec<MetadataOffer<'a>>, budget: usize) -> Vec<&'a Metadata> {
    let mut phase1: Vec<MetadataOffer<'a>> = Vec::new();
    let mut phase2: Vec<MetadataOffer<'a>> = Vec::new();
    for offer in offers {
        if offer.request_count() > 0 {
            phase1.push(offer);
        } else {
            phase2.push(offer);
        }
    }
    phase1.sort_by(|a, b| {
        b.request_count()
            .cmp(&a.request_count())
            .then_with(|| cmp_popularity(b.popularity, a.popularity))
            .then_with(|| a.metadata.uri().cmp(b.metadata.uri()))
    });
    phase2.sort_by(|a, b| {
        cmp_popularity(b.popularity, a.popularity)
            .then_with(|| a.metadata.uri().cmp(b.metadata.uri()))
    });
    phase1
        .into_iter()
        .chain(phase2)
        .take(budget)
        .map(|o| o.metadata)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popularity::Popularity;
    use crate::query::Query;
    use crate::uri::Uri;
    use dtn_trace::NodeId;

    fn meta(name: &str, uri: &str) -> Metadata {
        Metadata::builder(name, "FOX", Uri::new(uri).unwrap()).build()
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn more_requesters_first() {
        let a = meta("news alpha", "mbt://a");
        let b = meta("news beta sports", "mbt://b");
        let queries = vec![
            (n(1), Query::new("news").unwrap()),
            (n(2), Query::new("sports").unwrap()),
        ];
        let offers = vec![
            MetadataOffer::build(&a, Popularity::MAX, &queries),
            MetadataOffer::build(&b, Popularity::MIN, &queries),
        ];
        let order = send_order(offers, 10);
        // b matches both queries, a only one — b first despite low popularity.
        assert_eq!(order[0].uri().as_str(), "mbt://b");
    }

    #[test]
    fn popularity_breaks_request_ties() {
        let a = meta("news alpha", "mbt://a");
        let b = meta("news beta", "mbt://b");
        let queries = vec![(n(1), Query::new("news").unwrap())];
        let offers = vec![
            MetadataOffer::build(&a, Popularity::new(0.2), &queries),
            MetadataOffer::build(&b, Popularity::new(0.8), &queries),
        ];
        let order = send_order(offers, 10);
        assert_eq!(order[0].uri().as_str(), "mbt://b");
    }

    #[test]
    fn phase_two_by_popularity() {
        let a = meta("thing one", "mbt://a");
        let b = meta("thing two", "mbt://b");
        let offers = vec![
            MetadataOffer::build(&a, Popularity::new(0.3), &[]),
            MetadataOffer::build(&b, Popularity::new(0.7), &[]),
        ];
        let order = send_order(offers, 10);
        assert_eq!(order[0].uri().as_str(), "mbt://b");
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn budget_truncates() {
        let a = meta("a", "mbt://a");
        let b = meta("b", "mbt://b");
        let c = meta("c", "mbt://c");
        let offers = vec![
            MetadataOffer::build(&a, Popularity::new(0.1), &[]),
            MetadataOffer::build(&b, Popularity::new(0.2), &[]),
            MetadataOffer::build(&c, Popularity::new(0.3), &[]),
        ];
        assert_eq!(send_order(offers, 2).len(), 2);
    }

    #[test]
    fn deterministic_tie_break_by_uri() {
        let a = meta("x", "mbt://a");
        let b = meta("x", "mbt://b");
        let offers = vec![
            MetadataOffer::build(&b, Popularity::new(0.5), &[]),
            MetadataOffer::build(&a, Popularity::new(0.5), &[]),
        ];
        let order = send_order(offers, 10);
        assert_eq!(order[0].uri().as_str(), "mbt://a");
    }

    #[test]
    fn empty_offers_empty_order() {
        assert!(send_order(Vec::new(), 5).is_empty());
    }

    #[test]
    fn requested_always_precede_unrequested() {
        let a = meta("wanted item", "mbt://a");
        let b = meta("filler", "mbt://b");
        let queries = vec![(n(1), Query::new("wanted").unwrap())];
        let offers = vec![
            MetadataOffer::build(&b, Popularity::MAX, &queries),
            MetadataOffer::build(&a, Popularity::MIN, &queries),
        ];
        let order = send_order(offers, 1);
        assert_eq!(order[0].uri().as_str(), "mbt://a");
    }
}
