//! Cooperative file discovery (paper §IV).
//!
//! The goal of the file discovery process is to download metadata that
//! matches the user's query strings — and, probably, metadata that will
//! match future queries. Discovery separates the distribution of metadata
//! from the distribution of files: metadata are distributed earlier, in
//! larger amounts, and are stored for longer durations.
//!
//! During a contact each node selects which of its stored metadata to send,
//! in two phases:
//!
//! 1. metadata that match the query strings of connected nodes (most-matched
//!    first), and
//! 2. the remaining metadata in order of decreasing popularity.
//!
//! [`cooperative`] implements the altruistic ordering; [`tft`] weighs
//! requesters by tit-for-tat credits.

pub mod cooperative;
pub mod tft;

use dtn_trace::NodeId;

use crate::credit::CreditLedger;
use crate::metadata::Metadata;
use crate::popularity::Popularity;
use crate::query::Query;
use crate::store::MetadataStore;

/// A metadata record offered for transmission during a contact, annotated
/// with the connected nodes whose queries it matches and its popularity.
#[derive(Debug, Clone)]
pub struct MetadataOffer<'a> {
    /// The metadata under consideration.
    pub metadata: &'a Metadata,
    /// Popularity as known to the sender.
    pub popularity: Popularity,
    /// Connected nodes with at least one query this metadata matches.
    pub requesters: Vec<NodeId>,
}

impl<'a> MetadataOffer<'a> {
    /// Builds an offer by matching `metadata` against the queries of the
    /// connected nodes.
    pub fn build(
        metadata: &'a Metadata,
        popularity: Popularity,
        peer_queries: &[(NodeId, Query)],
    ) -> Self {
        let tokens = metadata.token_set();
        let mut requesters: Vec<NodeId> = peer_queries
            .iter()
            .filter(|(_, q)| q.matches_token_set(tokens))
            .map(|(n, _)| *n)
            .collect();
        requesters.sort_unstable();
        requesters.dedup();
        MetadataOffer {
            metadata,
            popularity,
            requesters,
        }
    }

    /// Number of distinct requesters.
    pub fn request_count(&self) -> usize {
        self.requesters.len()
    }
}

/// Outcome of receiving one metadata record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiveOutcome {
    /// The metadata was new and matched one of the receiver's queries.
    NewMatched,
    /// The metadata was new but matched no query.
    NewUnmatched,
    /// The receiver already had this metadata; no credit is awarded
    /// (credits reward *new* metadata only, §IV-B).
    Duplicate,
}

/// Processes a received metadata record on the receiving node: stores it,
/// and — if `ledger` is given — credits the sender per the tit-for-tat rule
/// (+5 for new matched, +popularity for new unmatched, nothing for
/// duplicates).
pub fn receive_metadata(
    store: &mut MetadataStore,
    own_queries: &[Query],
    metadata: &Metadata,
    popularity: Popularity,
    sender: NodeId,
    ledger: Option<&mut CreditLedger>,
) -> ReceiveOutcome {
    if !store.insert(metadata.clone()) {
        return ReceiveOutcome::Duplicate;
    }
    let matched = own_queries
        .iter()
        .any(|q| q.matches_token_set(metadata.token_set()));
    if let Some(ledger) = ledger {
        if matched {
            ledger.reward_matched(sender);
        } else {
            ledger.reward_unmatched(sender, popularity);
        }
    }
    if matched {
        ReceiveOutcome::NewMatched
    } else {
        ReceiveOutcome::NewUnmatched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uri::Uri;

    fn meta(name: &str, uri: &str) -> Metadata {
        Metadata::builder(name, "FOX", Uri::new(uri).unwrap()).build()
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn offer_collects_requesters() {
        let m = meta("fox news", "mbt://a");
        let queries = vec![
            (n(1), Query::new("news").unwrap()),
            (n(2), Query::new("comedy").unwrap()),
            (n(3), Query::new("fox").unwrap()),
            (n(1), Query::new("fox news").unwrap()), // duplicate requester
        ];
        let offer = MetadataOffer::build(&m, Popularity::new(0.5), &queries);
        assert_eq!(offer.requesters, vec![n(1), n(3)]);
        assert_eq!(offer.request_count(), 2);
    }

    #[test]
    fn receive_new_matched_rewards_five() {
        let mut store = MetadataStore::new();
        let mut ledger = CreditLedger::new();
        let m = meta("fox news", "mbt://a");
        let out = receive_metadata(
            &mut store,
            &[Query::new("news").unwrap()],
            &m,
            Popularity::new(0.9),
            n(7),
            Some(&mut ledger),
        );
        assert_eq!(out, ReceiveOutcome::NewMatched);
        assert_eq!(ledger.credit_of(n(7)), 5.0);
        assert!(store.contains(m.uri()));
    }

    #[test]
    fn receive_new_unmatched_rewards_popularity() {
        let mut store = MetadataStore::new();
        let mut ledger = CreditLedger::new();
        let m = meta("abc comedy", "mbt://b");
        let out = receive_metadata(
            &mut store,
            &[Query::new("news").unwrap()],
            &m,
            Popularity::new(0.4),
            n(7),
            Some(&mut ledger),
        );
        assert_eq!(out, ReceiveOutcome::NewUnmatched);
        assert!((ledger.credit_of(n(7)) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn receive_duplicate_rewards_nothing() {
        let mut store = MetadataStore::new();
        let mut ledger = CreditLedger::new();
        let m = meta("fox news", "mbt://a");
        store.insert(m.clone());
        let out = receive_metadata(
            &mut store,
            &[Query::new("news").unwrap()],
            &m,
            Popularity::MAX,
            n(7),
            Some(&mut ledger),
        );
        assert_eq!(out, ReceiveOutcome::Duplicate);
        assert_eq!(ledger.credit_of(n(7)), 0.0);
    }

    #[test]
    fn receive_without_ledger_still_stores() {
        let mut store = MetadataStore::new();
        let m = meta("fox news", "mbt://a");
        let out = receive_metadata(&mut store, &[], &m, Popularity::MIN, n(1), None);
        assert_eq!(out, ReceiveOutcome::NewUnmatched);
        assert_eq!(store.len(), 1);
    }
}
