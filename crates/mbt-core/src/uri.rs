//! Uniform resource identifiers.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// The uniform resource identifier (URI) of a file.
///
/// Every file shared through MBT is identified by its URI; file pieces are
/// stamped with the URI and an offset (paper §III-B). URIs are opaque,
/// non-empty, whitespace-free strings. The backing storage is shared
/// (`Arc<str>`), so cloning a `Uri` — which the per-contact snapshots in
/// [`run_contact`](crate::node::run_contact) do for every stored record —
/// is a reference-count bump, not a string copy. Equality, ordering, and
/// hashing remain content-based.
///
/// # Example
///
/// ```
/// use mbt_core::Uri;
///
/// let uri = Uri::new("mbt://fox/show-42/ep-3")?;
/// assert_eq!(uri.as_str(), "mbt://fox/show-42/ep-3");
/// # Ok::<(), mbt_core::uri::InvalidUri>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Uri(Arc<str>);

/// Error returned for malformed URIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidUri {
    /// The URI string was empty.
    Empty,
    /// The URI string contained whitespace.
    ContainsWhitespace,
}

impl fmt::Display for InvalidUri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidUri::Empty => write!(f, "uri must not be empty"),
            InvalidUri::ContainsWhitespace => write!(f, "uri must not contain whitespace"),
        }
    }
}

impl Error for InvalidUri {}

impl Uri {
    /// Creates a URI from a string.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidUri`] if the string is empty or contains whitespace.
    pub fn new<S: Into<String>>(s: S) -> Result<Self, InvalidUri> {
        let s = s.into();
        if s.is_empty() {
            return Err(InvalidUri::Empty);
        }
        if s.chars().any(char::is_whitespace) {
            return Err(InvalidUri::ContainsWhitespace);
        }
        Ok(Uri(Arc::from(s)))
    }

    /// The URI as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Uri {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Uri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for Uri {
    type Err = InvalidUri;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Uri::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_reasonable_uris() {
        assert!(Uri::new("mbt://abc/1").is_ok());
        assert!(Uri::new("x").is_ok());
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Uri::new(""), Err(InvalidUri::Empty));
    }

    #[test]
    fn rejects_whitespace() {
        assert_eq!(Uri::new("a b"), Err(InvalidUri::ContainsWhitespace));
        assert_eq!(Uri::new("a\tb"), Err(InvalidUri::ContainsWhitespace));
    }

    #[test]
    fn from_str_round_trip() {
        let uri: Uri = "mbt://x/y".parse().unwrap();
        assert_eq!(uri.to_string(), "mbt://x/y");
        assert_eq!(uri.as_ref(), "mbt://x/y");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Uri::new("a").unwrap() < Uri::new("b").unwrap());
    }

    #[test]
    fn error_messages() {
        assert!(InvalidUri::Empty.to_string().contains("empty"));
        assert!(InvalidUri::ContainsWhitespace
            .to_string()
            .contains("whitespace"));
    }
}
