//! Metadata selection — the "user chooses the right file" step.
//!
//! "Manual metadata selection can be a very helpful step in file discovery
//! ... there are fake files, files with inferior quality, and different
//! files with similar names, and choosing an unpopular file will
//! significantly prolong the download time" (paper §I). This module ranks
//! the metadata matching a query the way the node's UI would present them —
//! match score, then popularity — and provides selection policies, including
//! one that discards metadata failing publisher authentication.

use crate::auth::KeyRegistry;
use crate::metadata::Metadata;
use crate::popularity::{cmp_popularity, Popularity};
use crate::query::Query;

/// One ranked search result.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedResult<'a> {
    /// The matching metadata.
    pub metadata: &'a Metadata,
    /// How many query tokens matched (all of them, under AND semantics, but
    /// kept for future partial-match ranking).
    pub match_score: usize,
    /// Popularity as known locally.
    pub popularity: Popularity,
    /// Whether the metadata passed publisher authentication (`None` when no
    /// registry was consulted).
    pub authenticated: Option<bool>,
}

/// How the "user" picks from the ranked list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// Take the top-ranked result (match score, then popularity).
    #[default]
    BestRanked,
    /// Take the most popular match regardless of score.
    MostPopular,
    /// Like [`SelectionPolicy::BestRanked`] but skip anything that failed —
    /// or could not undergo — authentication.
    AuthenticatedOnly,
}

/// Ranks the metadata matching `query`, most attractive first.
///
/// `popularity_of` supplies the node's local popularity knowledge;
/// `registry`, when given, stamps each result with its authentication
/// verdict.
pub fn rank<'a, I, F>(
    candidates: I,
    query: &Query,
    popularity_of: F,
    registry: Option<&KeyRegistry>,
) -> Vec<RankedResult<'a>>
where
    I: IntoIterator<Item = &'a Metadata>,
    F: Fn(&Metadata) -> Popularity,
{
    let mut results: Vec<RankedResult<'a>> = candidates
        .into_iter()
        .filter(|m| m.matches_query(query))
        .map(|m| RankedResult {
            match_score: query.tokens().len(),
            popularity: popularity_of(m),
            authenticated: registry.map(|r| r.verify(m).is_ok()),
            metadata: m,
        })
        .collect();
    results.sort_by(|a, b| {
        b.match_score
            .cmp(&a.match_score)
            .then_with(|| cmp_popularity(b.popularity, a.popularity))
            .then_with(|| a.metadata.uri().cmp(b.metadata.uri()))
    });
    results
}

/// Applies a selection policy to a ranked list, returning the chosen
/// metadata if any qualifies.
pub fn select<'a>(results: &[RankedResult<'a>], policy: SelectionPolicy) -> Option<&'a Metadata> {
    match policy {
        SelectionPolicy::BestRanked => results.first().map(|r| r.metadata),
        SelectionPolicy::MostPopular => results
            .iter()
            .max_by(|a, b| cmp_popularity(a.popularity, b.popularity))
            .map(|r| r.metadata),
        SelectionPolicy::AuthenticatedOnly => results
            .iter()
            .find(|r| r.authenticated == Some(true))
            .map(|r| r.metadata),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::{sign, PublisherKey};
    use crate::uri::Uri;

    fn meta(name: &str, uri: &str) -> Metadata {
        Metadata::builder(name, "FOX", Uri::new(uri).unwrap()).build()
    }

    fn pop_table<'a>(entries: &'a [(&'a str, f64)]) -> impl Fn(&Metadata) -> Popularity + 'a {
        move |m: &Metadata| {
            entries
                .iter()
                .find(|(u, _)| m.uri().as_str() == *u)
                .map(|&(_, p)| Popularity::new(p))
                .unwrap_or(Popularity::MIN)
        }
    }

    #[test]
    fn ranks_matches_by_popularity() {
        let a = meta("fox news alpha", "mbt://a");
        let b = meta("fox news beta", "mbt://b");
        let c = meta("abc comedy", "mbt://c");
        let q = Query::new("fox news").unwrap();
        let pop = pop_table(&[("mbt://a", 0.2), ("mbt://b", 0.8)]);
        let ranked = rank([&a, &b, &c], &q, pop, None);
        assert_eq!(ranked.len(), 2, "non-matching metadata excluded");
        assert_eq!(ranked[0].metadata.uri().as_str(), "mbt://b");
        assert_eq!(ranked[0].authenticated, None);
    }

    #[test]
    fn best_ranked_and_most_popular_policies() {
        let a = meta("fox news alpha", "mbt://a");
        let b = meta("fox news beta", "mbt://b");
        let q = Query::new("fox news").unwrap();
        let pop = pop_table(&[("mbt://a", 0.9), ("mbt://b", 0.1)]);
        let ranked = rank([&a, &b], &q, pop, None);
        assert_eq!(
            select(&ranked, SelectionPolicy::BestRanked)
                .unwrap()
                .uri()
                .as_str(),
            "mbt://a"
        );
        assert_eq!(
            select(&ranked, SelectionPolicy::MostPopular)
                .unwrap()
                .uri()
                .as_str(),
            "mbt://a"
        );
    }

    #[test]
    fn authenticated_only_skips_fakes() {
        let key = PublisherKey::derive(b"master", "FOX");
        let attacker = PublisherKey::derive(b"evil", "FOX");
        let mut real = meta("fox news real", "mbt://real");
        sign(&mut real, &key);
        let mut fake = meta("fox news fake", "mbt://fake");
        sign(&mut fake, &attacker);

        let mut registry = KeyRegistry::new();
        registry.register("FOX", key);

        let q = Query::new("fox news").unwrap();
        // The fake claims maximal popularity — exactly the §I attack.
        let pop = pop_table(&[("mbt://fake", 1.0), ("mbt://real", 0.3)]);
        let ranked = rank([&real, &fake], &q, pop, Some(&registry));
        // Naive policy falls for the fake:
        assert_eq!(
            select(&ranked, SelectionPolicy::BestRanked)
                .unwrap()
                .uri()
                .as_str(),
            "mbt://fake"
        );
        // Authentication-aware policy does not:
        assert_eq!(
            select(&ranked, SelectionPolicy::AuthenticatedOnly)
                .unwrap()
                .uri()
                .as_str(),
            "mbt://real"
        );
    }

    #[test]
    fn authenticated_only_returns_none_when_all_fake() {
        let attacker = PublisherKey::derive(b"evil", "FOX");
        let mut fake = meta("fox news fake", "mbt://fake");
        sign(&mut fake, &attacker);
        let mut registry = KeyRegistry::new();
        registry.register("FOX", PublisherKey::derive(b"master", "FOX"));
        let q = Query::new("fox news").unwrap();
        let ranked = rank([&fake], &q, |_| Popularity::MAX, Some(&registry));
        assert_eq!(select(&ranked, SelectionPolicy::AuthenticatedOnly), None);
        assert!(select(&ranked, SelectionPolicy::BestRanked).is_some());
    }

    #[test]
    fn empty_candidates_empty_results() {
        let q = Query::new("anything").unwrap();
        let ranked = rank(std::iter::empty(), &q, |_| Popularity::MIN, None);
        assert!(ranked.is_empty());
        assert_eq!(select(&ranked, SelectionPolicy::BestRanked), None);
    }

    #[test]
    fn deterministic_tiebreak_by_uri() {
        let a = meta("fox news", "mbt://a");
        let b = meta("fox news", "mbt://b");
        let q = Query::new("fox news").unwrap();
        let ranked = rank([&b, &a], &q, |_| Popularity::new(0.5), None);
        assert_eq!(ranked[0].metadata.uri().as_str(), "mbt://a");
    }
}
