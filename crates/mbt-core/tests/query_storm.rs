//! The concurrency contract of the sharded metadata server: a rayon query
//! storm — worker threads hammering [`ServerSnapshot`]s with mixed searches
//! while a writer thread concurrently publishes, re-popularizes, refreshes,
//! and expires on the live server — produces a **deterministic,
//! jobs-invariant digest**, and every answer matches a serially-advanced
//! [`ReferenceServer`] at the snapshot's instant (i.e. no reader ever
//! observes a torn in-between state).
//!
//! The storm is round-structured: round `r` freezes a snapshot, then the
//! writer applies batch `r` *while* the readers drain the round's queries
//! against the frozen view. Because the snapshot pins round-start state, the
//! expected answers are exactly those of an oracle that has applied batches
//! `0..r` and nothing else — any torn read, lost posting, or cross-shard
//! inconsistency shows up as a digest mismatch.

use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};

use dtn_trace::{NodeId, SimDuration, SimTime};
use mbt_core::server::{ReferenceServer, ShardedMetadataServer};
use mbt_core::{Metadata, Popularity, Query, Uri};

const ROUNDS: usize = 10;
const QUERIES_PER_ROUND: usize = 1_000; // 10⁴ concurrent searches per storm
const SEED_RECORDS: usize = 600;
const SEARCH_LIMIT: usize = 8;

const TOKENS: [&str; 12] = [
    "fox", "news", "evening", "comedy", "sports", "weather", "tonight", "daily", "talk", "show",
    "live", "special",
];

fn fnv(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn uri(idx: usize) -> Uri {
    Uri::new(format!("mbt://storm/file-{idx}")).unwrap()
}

fn record(idx: usize) -> (Metadata, Popularity) {
    let name = format!(
        "{} {} {}",
        TOKENS[idx % 12],
        TOKENS[(idx / 12) % 12],
        TOKENS[(idx * 7 + 3) % 12]
    );
    let mut b = Metadata::builder(name, ["FOX", "ABC", "CBS"][idx % 3], uri(idx));
    if idx.is_multiple_of(5) {
        // A fifth of the corpus expires mid-storm so writer batches shrink
        // the server while readers hold older snapshots.
        b = b.ttl(SimDuration::from_hours(1 + (idx % 40) as u64));
    }
    (
        b.build(),
        Popularity::new(((idx * 37) % 100) as f64 / 100.0),
    )
}

fn round_time(round: usize) -> SimTime {
    SimTime::from_secs(round as u64 * 4 * 3_600)
}

/// The deterministic query mix: one- and two-token queries cycling over the
/// vocabulary, identical every round (state, not input, changes per round).
fn query_pool() -> Vec<Query> {
    (0..QUERIES_PER_ROUND)
        .map(|i| {
            let text = if i % 3 == 0 {
                TOKENS[i % 12].to_owned()
            } else {
                format!("{} {}", TOKENS[i % 12], TOKENS[(i / 3 + 1) % 12])
            };
            Query::new(text).unwrap()
        })
        .collect()
}

/// Writer batch `round`: publishes (fresh URIs and replacements),
/// popularity churn, request recording plus a daily-style refresh, and an
/// expiry pass — every mutating entry point, deterministically.
fn apply_batch(round: usize, ops: &mut dyn Ops) {
    let now = round_time(round);
    for k in 0..40 {
        let idx = SEED_RECORDS + round * 40 + k; // fresh
        let (m, p) = record(idx);
        ops.publish(m, p);
        let (m, p) = record((round * 31 + k * 7) % SEED_RECORDS); // replace
        ops.publish(m, p);
    }
    for k in 0..20 {
        let target = uri((round * 13 + k * 11) % SEED_RECORDS);
        ops.set_popularity(
            &target,
            Popularity::new(((round * 17 + k) % 100) as f64 / 100.0),
        );
        ops.record_request(&target, NodeId::new((k % 9) as u32), now);
    }
    ops.refresh(now);
    ops.expire(now);
}

/// The mutating surface shared by the live server and the oracle.
trait Ops {
    fn publish(&mut self, m: Metadata, p: Popularity);
    fn set_popularity(&mut self, uri: &Uri, p: Popularity);
    fn record_request(&mut self, uri: &Uri, node: NodeId, now: SimTime);
    fn refresh(&mut self, now: SimTime);
    fn expire(&mut self, now: SimTime);
}

impl Ops for ShardedMetadataServer {
    fn publish(&mut self, m: Metadata, p: Popularity) {
        ShardedMetadataServer::publish(self, m, p);
    }
    fn set_popularity(&mut self, uri: &Uri, p: Popularity) {
        ShardedMetadataServer::set_popularity(self, uri, p);
    }
    fn record_request(&mut self, uri: &Uri, node: NodeId, now: SimTime) {
        ShardedMetadataServer::record_request(self, uri, node, now);
    }
    fn refresh(&mut self, now: SimTime) {
        self.refresh_popularities(now);
    }
    fn expire(&mut self, now: SimTime) {
        ShardedMetadataServer::expire(self, now);
    }
}

impl Ops for ReferenceServer {
    fn publish(&mut self, m: Metadata, p: Popularity) {
        ReferenceServer::publish(self, m, p);
    }
    fn set_popularity(&mut self, uri: &Uri, p: Popularity) {
        ReferenceServer::set_popularity(self, uri, p);
    }
    fn record_request(&mut self, uri: &Uri, node: NodeId, now: SimTime) {
        ReferenceServer::record_request(self, uri, node, now);
    }
    fn refresh(&mut self, now: SimTime) {
        self.refresh_popularities(now);
    }
    fn expire(&mut self, now: SimTime) {
        ReferenceServer::expire(self, now);
    }
}

fn seeded_server(shards: usize) -> ShardedMetadataServer {
    let mut s = ShardedMetadataServer::with_shards(9, shards);
    for idx in 0..SEED_RECORDS {
        let (m, p) = record(idx);
        s.publish(m, p);
    }
    s
}

fn seeded_reference() -> ReferenceServer {
    let mut s = ReferenceServer::new(9);
    for idx in 0..SEED_RECORDS {
        let (m, p) = record(idx);
        s.publish(m, p);
    }
    s
}

/// One full storm: returns the digest over every concurrent search result,
/// folded in query order (the shim's `par_iter` preserves input order, so
/// the digest is a pure function of the answers — not of scheduling).
fn run_storm(pool: &ThreadPool, shards: usize) -> u64 {
    let mut server = seeded_server(shards);
    let queries = query_pool();
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    for round in 0..ROUNDS {
        let snap = server.snapshot();
        let pre_len = snap.len();
        let now = round_time(round);
        let round_hashes: Vec<u64> = std::thread::scope(|scope| {
            let server = &mut server;
            let writer = scope.spawn(move || {
                apply_batch(round, server);
            });
            let hashes = pool.install(|| {
                queries
                    .par_iter()
                    .map(|q| {
                        let mut h = 0xcbf2_9ce4_8422_2325u64;
                        for m in snap.search(q, SEARCH_LIMIT) {
                            h = fnv(h, m.uri().as_str().as_bytes());
                            h = fnv(h, m.name().as_bytes());
                        }
                        h
                    })
                    .collect()
            });
            // One popularity ranking per round, concurrent with the
            // writer like the searches (per-query would be quadratic).
            let mut top = 0xcbf2_9ce4_8422_2325u64;
            for m in snap.most_popular(5, now) {
                top = fnv(top, m.uri().as_str().as_bytes());
            }
            writer.join().expect("writer thread panicked");
            digest = fnv(digest, &top.to_be_bytes());
            hashes
        });
        // The frozen view never moved while the writer ran.
        assert_eq!(snap.len(), pre_len, "snapshot length tore in round {round}");
        for h in round_hashes {
            digest = fnv(digest, &h.to_be_bytes());
        }
    }
    digest = fnv(digest, &server.len().to_be_bytes());
    digest
}

/// The oracle digest: the same rounds and queries, fully serial, answered by
/// the reference server frozen at each round boundary.
fn oracle_digest() -> u64 {
    let mut reference = seeded_reference();
    let queries = query_pool();
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    for round in 0..ROUNDS {
        let now = round_time(round);
        // Answers first (the snapshot state), then the batch.
        let round_hashes: Vec<u64> = queries
            .iter()
            .map(|q| {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for m in reference.search(q, SEARCH_LIMIT) {
                    h = fnv(h, m.uri().as_str().as_bytes());
                    h = fnv(h, m.name().as_bytes());
                }
                h
            })
            .collect();
        let mut top = 0xcbf2_9ce4_8422_2325u64;
        for m in reference.most_popular(5, now) {
            top = fnv(top, m.uri().as_str().as_bytes());
        }
        digest = fnv(digest, &top.to_be_bytes());
        apply_batch(round, &mut reference);
        for h in round_hashes {
            digest = fnv(digest, &h.to_be_bytes());
        }
    }
    digest = fnv(digest, &reference.len().to_be_bytes());
    digest
}

/// The serial oracle digest, computed once and shared by every storm test
/// (each test then runs concurrently on its own cargo test thread).
fn expected_digest() -> u64 {
    static EXPECTED: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *EXPECTED.get_or_init(oracle_digest)
}

#[test]
fn query_storm_digest_is_jobs_invariant_and_matches_the_serial_oracle() {
    for jobs in [2, 8] {
        let pool = ThreadPoolBuilder::new().num_threads(jobs).build().unwrap();
        let got = run_storm(&pool, 8);
        assert_eq!(
            got,
            expected_digest(),
            "storm digest with {jobs} worker threads diverged from the serial oracle"
        );
    }
}

#[test]
fn query_storm_digest_is_shard_count_invariant() {
    // Same workload, different partitionings — and the same oracle digest
    // as the jobs-invariance storm, which doubles as a bit-identical-repeat
    // check (independent storms reproducing one digest).
    let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
    for shards in [1, 16] {
        assert_eq!(
            run_storm(&pool, shards),
            expected_digest(),
            "storm digest changed with {shards} shards"
        );
    }
}
