//! Property-based tests for the popularity-ranked bounded file cache
//! (PopCache): across arbitrary store sequences a file being downloaded —
//! one matching an own query — is never evicted, and across arbitrary
//! contact sequences occupancy never exceeds the configured bound.

use proptest::prelude::*;

use dtn_trace::{NodeId, SimDuration, SimTime};
use mbt_core::node::run_pairwise_contact;
use mbt_core::{
    CachePolicy, MbtConfig, MbtNode, Metadata, Popularity, PopularityScope, ProtocolSpec, Query,
    Uri,
};

fn popcache(capacity: u32) -> ProtocolSpec {
    ProtocolSpec::MBT.with_cache(
        "PopCache",
        CachePolicy::PopularityRanked {
            capacity,
            scope: PopularityScope::Global,
        },
    )
}

fn uri(i: usize, wanted: bool) -> Uri {
    let kind = if wanted { "wanted" } else { "filler" };
    Uri::new(format!("mbt://fox/{kind}-{i}")).unwrap()
}

fn meta(i: usize, wanted: bool) -> Metadata {
    let kind = if wanted { "wanted" } else { "filler" };
    Metadata::builder(format!("{kind} clip {i}"), "FOX", uri(i, wanted)).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A held file matching an own query (i.e. one the user is downloading)
    /// survives any sequence of admissions, however popular the newcomers.
    #[test]
    fn wanted_files_are_never_evicted(
        capacity in 1u32..6,
        // Each op stores file `i` (wanted when the flag is set) with the
        // given popularity percentage.
        ops in prop::collection::vec((0usize..12, any::<bool>(), 0u8..=100), 1..40),
    ) {
        let mut node = MbtNode::new(NodeId::new(0), popcache(capacity), MbtConfig::new());
        node.add_query(Query::new("wanted").unwrap(), None);
        let mut admitted_wanted = std::collections::BTreeSet::new();
        for &(i, wanted, pop) in &ops {
            node.seed_content(
                meta(i, wanted),
                Popularity::new(f64::from(pop) / 100.0),
                false,
            );
            if node.try_store_file(uri(i, wanted), None) && wanted {
                admitted_wanted.insert(i);
            }
            // Every wanted file admitted so far must still be here: only
            // filler files are eviction candidates.
            for &j in &admitted_wanted {
                prop_assert!(
                    node.has_file(&uri(j, true)),
                    "wanted file {j} was evicted"
                );
            }
            prop_assert!(node.file_count() <= capacity as usize);
        }
    }

    /// Direct check of the admission invariant: once a wanted file is in,
    /// no later admission removes it.
    #[test]
    fn admitted_wanted_files_survive_all_later_admissions(
        capacity in 1u32..5,
        fillers in prop::collection::vec((0usize..20, 0u8..=100), 0..30),
    ) {
        let mut node = MbtNode::new(NodeId::new(0), popcache(capacity), MbtConfig::new());
        node.add_query(Query::new("wanted").unwrap(), None);
        node.seed_content(meta(0, true), Popularity::new(0.0), false);
        prop_assert!(node.try_store_file(uri(0, true), None));
        for &(i, pop) in &fillers {
            node.seed_content(meta(i, false), Popularity::new(f64::from(pop) / 100.0), false);
            node.try_store_file(uri(i, false), None);
            prop_assert!(
                node.has_file(&uri(0, true)),
                "filler {i} (pop {pop}) evicted the downloading file"
            );
            prop_assert!(node.file_count() <= capacity as usize);
        }
    }

    /// Occupancy stays within the bound across arbitrary pairwise contact
    /// sequences against an unbounded seeder carrying many popular files.
    #[test]
    fn occupancy_never_exceeds_bound_across_contacts(
        capacity in 1u32..5,
        n_files in 1usize..12,
        contacts in prop::collection::vec((1usize..4, 1usize..4, 0u64..50_000), 1..25),
    ) {
        let mut nodes = vec![MbtNode::new(
            NodeId::new(0),
            ProtocolSpec::MBT,
            MbtConfig::new(),
        )];
        for i in 1..4u32 {
            nodes.push(MbtNode::new(NodeId::new(i), popcache(capacity), MbtConfig::new()));
        }
        for i in 0..n_files {
            nodes[0].seed_content(meta(i, false), Popularity::new(0.9), true);
        }
        nodes[1].add_query(Query::new("filler").unwrap(), None);

        let mut times: Vec<(usize, usize, u64)> = contacts;
        times.sort_by_key(|&(_, _, t)| t);
        for (a, b, t) in times {
            if a == b {
                continue;
            }
            run_pairwise_contact(
                &mut nodes,
                a,
                b,
                SimTime::from_secs(t),
                SimDuration::from_secs(120),
            );
            for node in &nodes[1..] {
                prop_assert!(
                    node.file_count() <= capacity as usize,
                    "bound {capacity} broken: {} files held",
                    node.file_count()
                );
            }
        }
    }
}
