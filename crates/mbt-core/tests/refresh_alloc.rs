//! Regression test for the satellite fix: `refresh_popularities` and
//! `expire` used to clone the **entire** URI keyspace into a `Vec<Uri>` on
//! every call (and re-insert every popularity key), i.e. ~100k `Arc` bumps
//! plus a multi-megabyte scratch vector per daily refresh on a large server.
//! The sharded server walks each shard's records in place instead.
//!
//! A counting global allocator measures the bytes allocated *during* the
//! refresh on a 10⁵-record server. The old implementation allocated at
//! least `100_000 × size_of::<Uri>()` (1.6 MB) for the keyspace clone
//! alone; the rewrite stays within a small fixed budget that only covers
//! the estimator's per-requested-URI scratch — proving URIs are neither
//! cloned wholesale nor re-interned.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dtn_trace::{NodeId, SimTime};
use mbt_core::{Metadata, MetadataServer, Popularity, Uri};

struct CountingAllocator;

static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOCATION_COUNT: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Runs `f` and returns (bytes, allocations) it performed.
fn allocation_of<R>(f: impl FnOnce() -> R) -> (u64, u64, R) {
    let bytes_before = ALLOCATED_BYTES.load(Ordering::Relaxed);
    let count_before = ALLOCATION_COUNT.load(Ordering::Relaxed);
    let out = f();
    (
        ALLOCATED_BYTES.load(Ordering::Relaxed) - bytes_before,
        ALLOCATION_COUNT.load(Ordering::Relaxed) - count_before,
        out,
    )
}

const RECORDS: usize = 100_000;
const REQUESTED: usize = 8;

fn build_server(shards: usize) -> MetadataServer {
    let mut server = MetadataServer::with_shards(20, shards);
    for i in 0..RECORDS {
        let uri = Uri::new(format!("mbt://alloc/file-{i}")).unwrap();
        let meta = Metadata::builder(format!("file {i} news"), "FOX", uri).build();
        server.publish(meta, Popularity::new((i % 100) as f64 / 100.0));
    }
    // A handful of requested URIs: the estimator's only legitimate scratch.
    let t = SimTime::from_secs(1_000);
    for i in 0..REQUESTED {
        let uri = Uri::new(format!("mbt://alloc/file-{i}")).unwrap();
        server.record_request(&uri, NodeId::new(i as u32), t);
        server.record_request(&uri, NodeId::new((i + 1) as u32), t);
    }
    server
}

#[test]
fn refresh_on_a_100k_record_server_does_not_clone_the_keyspace() {
    for shards in [1, 8] {
        let mut server = build_server(shards);
        let now = SimTime::from_secs(2_000);
        // Warm once: BTreeMap node churn from the very first in-place walk
        // settles, matching steady-state daily refreshes.
        server.refresh_popularities(now);

        let (bytes, allocs, ()) = allocation_of(|| {
            server.refresh_popularities(now);
        });

        // The old implementation's keyspace clone alone was
        // RECORDS * size_of::<Uri>() = 1.6 MB before counting the string
        // re-interning it fed. Budget: the estimator's per-requested-URI
        // scratch plus slack — two orders of magnitude below the clone.
        let budget = 16 * 1024;
        assert!(
            bytes < budget,
            "refresh with {shards} shards allocated {bytes} bytes \
             ({allocs} allocations); keyspace is being cloned again"
        );
        // And nothing about the refresh scales with the record count: a
        // second refresh allocates the same small scratch.
        let (bytes_again, _, ()) = allocation_of(|| {
            server.refresh_popularities(now);
        });
        assert!(
            bytes_again < budget,
            "repeat refresh allocated {bytes_again}"
        );

        // The refresh actually did its job.
        let hot = Uri::new("mbt://alloc/file-0").unwrap();
        let cold = Uri::new("mbt://alloc/file-99999").unwrap();
        assert!(server.popularity_of(&hot).value() > 0.0);
        assert_eq!(server.popularity_of(&cold), Popularity::MIN);
    }
}

#[test]
fn expire_with_nothing_expired_allocates_nothing_per_record() {
    // No record carries a TTL, so the expiry pass must be a read-only scan:
    // no expired-URI vector proportional to the keyspace, no shard copies.
    let mut server = build_server(8);
    let (bytes, _, dropped) = allocation_of(|| server.expire(SimTime::from_days(3_650)));
    assert_eq!(dropped, 0);
    assert!(
        bytes < 4 * 1024,
        "no-op expire allocated {bytes} bytes on a {RECORDS}-record server"
    );
    assert_eq!(server.len(), RECORDS);
}
