//! The tentpole contract of the sharded metadata server: for **any**
//! sequence of publish / search / set_popularity / record_request /
//! refresh / expire operations, a [`ShardedMetadataServer`] with any shard
//! count answers **byte-identically** to the [`ReferenceServer`] — the
//! original single-registry implementation kept verbatim as the oracle.
//!
//! The server-side analogue of `tests/sharded_equivalence.rs` (which proves
//! the same property for the sharded trace backing).

use proptest::prelude::*;

use dtn_trace::{NodeId, SimDuration, SimTime};
use mbt_core::server::{ReferenceServer, ShardedMetadataServer};
use mbt_core::{Metadata, Popularity, Query, Uri};

/// Shard counts under test; 1 is the "byte-identical to today" case, the
/// rest exercise real partitioning (including a prime).
const SHARD_COUNTS: [usize; 4] = [1, 2, 7, 16];

/// A small vocabulary so queries actually hit records (and overlap).
const TOKENS: [&str; 10] = [
    "fox", "news", "evening", "comedy", "sports", "weather", "tonight", "daily", "talk", "show",
];

/// One operation against both servers.
#[derive(Debug, Clone)]
enum Op {
    Publish {
        uri: usize,
        name_a: usize,
        name_b: usize,
        pop: f64,
        ttl_days: u64,
    },
    Search {
        tok_a: usize,
        tok_b: Option<usize>,
        limit: usize,
    },
    SetPopularity {
        uri: usize,
        pop: f64,
    },
    RecordRequest {
        uri: usize,
        node: u32,
        at_hours: u64,
    },
    Refresh {
        at_hours: u64,
    },
    Expire {
        at_hours: u64,
    },
    MostPopular {
        limit: usize,
        at_hours: u64,
    },
}

/// Decodes a flat sample into one operation (the shim has no `prop_oneof!`,
/// so the op kind is just another sampled dimension).
fn arb_op() -> impl Strategy<Value = Op> {
    (
        0u8..7,
        (0usize..14, 0usize..10, 0.0f64..1.0),
        0u64..200,
        1usize..8,
        0u32..6,
    )
        .prop_map(|(kind, (a, b, pop), at_hours, limit, node)| match kind {
            0 => Op::Publish {
                uri: a % 12,
                name_a: b,
                name_b: (a + b) % 10,
                pop,
                ttl_days: at_hours % 6,
            },
            1 => Op::Search {
                tok_a: b,
                tok_b: (a % 3 != 0).then_some(a % 10),
                limit,
            },
            2 => Op::SetPopularity { uri: a, pop },
            3 => Op::RecordRequest {
                uri: a % 12,
                node,
                at_hours: at_hours % 120,
            },
            4 => Op::Refresh {
                at_hours: at_hours % 120,
            },
            5 => Op::Expire { at_hours },
            _ => Op::MostPopular {
                limit: limit.min(5),
                at_hours,
            },
        })
}

fn uri(idx: usize) -> Uri {
    Uri::new(format!("mbt://prop/file-{idx}")).unwrap()
}

fn at(hours: u64) -> SimTime {
    SimTime::from_secs(hours * 3_600)
}

fn build_meta(op_uri: usize, name_a: usize, name_b: usize, ttl_days: u64) -> Metadata {
    let name = format!("{} {}", TOKENS[name_a], TOKENS[name_b]);
    let mut b = Metadata::builder(name, "FOX", uri(op_uri));
    if ttl_days > 0 {
        b = b.ttl(SimDuration::from_days(ttl_days));
    }
    b.build()
}

/// Everything observable about a search result, stringified: any divergence
/// in membership, order, or record contents shows up here.
fn render(results: &[&Metadata]) -> Vec<String> {
    results
        .iter()
        .map(|m| format!("{}|{}|{}", m.uri().as_str(), m.name(), m.publisher()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_server_is_byte_identical_to_reference(
        ops in proptest::collection::vec(arb_op(), 1..60)
    ) {
        let mut reference = ReferenceServer::new(10);
        let mut sharded: Vec<ShardedMetadataServer> = SHARD_COUNTS
            .iter()
            .map(|&n| ShardedMetadataServer::with_shards(10, n))
            .collect();

        for op in &ops {
            match *op {
                Op::Publish { uri: u, name_a, name_b, pop, ttl_days } => {
                    let meta = build_meta(u, name_a, name_b, ttl_days);
                    let p = Popularity::new(pop);
                    reference.publish(meta.clone(), p);
                    for s in &mut sharded {
                        s.publish(meta.clone(), p);
                    }
                }
                Op::Search { tok_a, tok_b, limit } => {
                    let text = match tok_b {
                        Some(b) => format!("{} {}", TOKENS[tok_a], TOKENS[b]),
                        None => TOKENS[tok_a].to_owned(),
                    };
                    let q = Query::new(text).unwrap();
                    let expected = render(&reference.search(&q, limit));
                    let expected_best = reference.best_match(&q).map(|m| m.uri().clone());
                    for s in &sharded {
                        prop_assert_eq!(
                            &render(&s.search(&q, limit)), &expected,
                            "search diverged at {} shards", s.shard_count()
                        );
                        prop_assert_eq!(
                            &s.best_match(&q).map(|m| m.uri().clone()), &expected_best,
                            "best_match diverged at {} shards", s.shard_count()
                        );
                    }
                }
                Op::SetPopularity { uri: u, pop } => {
                    let target = uri(u);
                    let p = Popularity::new(pop);
                    reference.set_popularity(&target, p);
                    for s in &mut sharded {
                        s.set_popularity(&target, p);
                    }
                }
                Op::RecordRequest { uri: u, node, at_hours } => {
                    let target = uri(u);
                    let now = at(at_hours);
                    reference.record_request(&target, NodeId::new(node), now);
                    for s in &mut sharded {
                        s.record_request(&target, NodeId::new(node), now);
                    }
                }
                Op::Refresh { at_hours } => {
                    let now = at(at_hours);
                    reference.refresh_popularities(now);
                    for s in &mut sharded {
                        s.refresh_popularities(now);
                    }
                }
                Op::Expire { at_hours } => {
                    let now = at(at_hours);
                    let expected = reference.expire(now);
                    for s in &mut sharded {
                        prop_assert_eq!(
                            s.expire(now), expected,
                            "expire count diverged at {} shards", s.shard_count()
                        );
                    }
                }
                Op::MostPopular { limit, at_hours } => {
                    let now = at(at_hours);
                    let expected = render(&reference.most_popular(limit, now));
                    for s in &sharded {
                        prop_assert_eq!(
                            &render(&s.most_popular(limit, now)), &expected,
                            "most_popular diverged at {} shards", s.shard_count()
                        );
                    }
                }
            }

            // Cheap invariants after every op.
            for s in &sharded {
                prop_assert_eq!(s.len(), reference.len());
                prop_assert_eq!(s.is_empty(), reference.is_empty());
            }
        }

        // Full-state sweep at the end: every URI slot, the global iteration
        // order, and the estimator view.
        let t_end = at(200);
        for u in 0..14 {
            let target = uri(u);
            let expected_meta = reference.metadata_of(&target).map(|m| m.uri().clone());
            let expected_pop = reference.popularity_of(&target);
            let expected_est = reference.estimated_popularity(&target, t_end);
            for s in &sharded {
                prop_assert_eq!(&s.metadata_of(&target).map(|m| m.uri().clone()), &expected_meta);
                prop_assert_eq!(s.popularity_of(&target), expected_pop);
                prop_assert_eq!(s.estimated_popularity(&target, t_end), expected_est);
            }
        }
        let expected_iter: Vec<String> = render(&reference.iter().collect::<Vec<_>>());
        for s in &sharded {
            let got: Vec<String> = render(&s.iter().collect::<Vec<_>>());
            prop_assert_eq!(&got, &expected_iter, "iter diverged at {} shards", s.shard_count());
        }
    }

    #[test]
    fn snapshot_answers_match_the_live_server(
        ops in proptest::collection::vec(arb_op(), 1..40),
        shards_idx in 0usize..4
    ) {
        // A snapshot taken after a mutation burst answers the read API
        // exactly like the live server it was taken from.
        let mut server = ShardedMetadataServer::with_shards(10, SHARD_COUNTS[shards_idx]);
        for op in &ops {
            match *op {
                Op::Publish { uri: u, name_a, name_b, pop, ttl_days } => {
                    server.publish(build_meta(u, name_a, name_b, ttl_days), Popularity::new(pop));
                }
                Op::SetPopularity { uri: u, pop } => {
                    server.set_popularity(&uri(u), Popularity::new(pop));
                }
                Op::Expire { at_hours } => {
                    server.expire(at(at_hours));
                }
                _ => {}
            }
        }
        let snap = server.snapshot();
        prop_assert_eq!(snap.len(), server.len());
        prop_assert_eq!(snap.is_empty(), server.is_empty());
        let now = at(100);
        for tok in TOKENS {
            let q = Query::new(tok).unwrap();
            let live: Vec<String> = render(&server.search(&q, 5));
            let frozen: Vec<String> = snap
                .search(&q, 5)
                .iter()
                .map(|m| format!("{}|{}|{}", m.uri().as_str(), m.name(), m.publisher()))
                .collect();
            prop_assert_eq!(&frozen, &live);
        }
        let live_top: Vec<String> = render(&server.most_popular(5, now));
        let frozen_top: Vec<String> = snap
            .most_popular(5, now)
            .iter()
            .map(|m| format!("{}|{}|{}", m.uri().as_str(), m.name(), m.publisher()))
            .collect();
        prop_assert_eq!(&frozen_top, &live_top);
        for u in 0..14 {
            let target = uri(u);
            prop_assert_eq!(snap.popularity_of(&target), server.popularity_of(&target));
            prop_assert_eq!(
                snap.metadata_of(&target).map(|m| m.uri().clone()),
                server.metadata_of(&target).map(|m| m.uri().clone())
            );
        }
    }
}
