//! Property-based tests for the MBT core: checksums, pieces, metadata,
//! ordering invariants, and the credit mechanism.

use proptest::prelude::*;

use dtn_trace::NodeId;
use mbt_core::checksum::{sha1, Sha1};
use mbt_core::discovery::{cooperative as disc_coop, tft as disc_tft, MetadataOffer};
use mbt_core::download::{cooperative as dl_coop, tft as dl_tft, Offer};
use mbt_core::keyword::tokenize;
use mbt_core::piece::split_into_pieces;
use mbt_core::{CreditLedger, FileAssembler, Metadata, Popularity, Query, Uri};

fn arb_uri() -> impl Strategy<Value = Uri> {
    "[a-z0-9]{1,12}".prop_map(|s| Uri::new(format!("mbt://p/{s}")).unwrap())
}

fn arb_meta() -> impl Strategy<Value = Metadata> {
    (arb_uri(), "[a-z ]{1,30}", 0usize..3).prop_map(|(uri, name, pubidx)| {
        Metadata::builder(name, ["FOX", "ABC", "CBS"][pubidx], uri).build()
    })
}

proptest! {
    #[test]
    fn sha1_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2_000), split in 0usize..2_000) {
        let split = split.min(data.len());
        let mut h = Sha1::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha1(&data));
    }

    #[test]
    fn sha1_multi_chunk_equals_oneshot(chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 0..10)) {
        let mut h = Sha1::new();
        let mut all = Vec::new();
        for c in &chunks {
            h.update(c);
            all.extend_from_slice(c);
        }
        prop_assert_eq!(h.finalize(), sha1(&all));
    }

    #[test]
    fn split_then_assemble_round_trips(data in proptest::collection::vec(any::<u8>(), 0..5_000), piece_size in 1usize..600) {
        let uri = Uri::new("mbt://p/f").unwrap();
        let meta = Metadata::builder("f", "FOX", uri.clone())
            .content(&data, piece_size)
            .build();
        let mut asm = FileAssembler::new(meta);
        for p in split_into_pieces(&uri, &data, piece_size) {
            asm.add_piece(p).unwrap();
        }
        prop_assert!(asm.is_complete());
        prop_assert_eq!(asm.assemble().unwrap(), data);
    }

    #[test]
    fn assembler_order_does_not_matter(data in proptest::collection::vec(any::<u8>(), 1..3_000), seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let uri = Uri::new("mbt://p/f").unwrap();
        let meta = Metadata::builder("f", "FOX", uri.clone()).content(&data, 256).build();
        let mut pieces = split_into_pieces(&uri, &data, 256);
        pieces.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let mut asm = FileAssembler::new(meta);
        for p in pieces {
            asm.add_piece(p).unwrap();
        }
        prop_assert_eq!(asm.assemble().unwrap(), data);
    }

    #[test]
    fn corrupting_a_piece_is_always_detected(
        data in proptest::collection::vec(any::<u8>(), 1..2_000),
        victim in any::<prop::sample::Index>(),
        byte in any::<prop::sample::Index>(),
        flip in 1u8..=255
    ) {
        let uri = Uri::new("mbt://p/f").unwrap();
        let meta = Metadata::builder("f", "FOX", uri.clone()).content(&data, 128).build();
        let pieces = split_into_pieces(&uri, &data, 128);
        let v = victim.index(pieces.len());
        let mut payload = pieces[v].data().to_vec();
        let b = byte.index(payload.len());
        payload[b] ^= flip;
        let bad = mbt_core::Piece::new(pieces[v].id().clone(), payload);
        prop_assert!(!meta.verify_piece(&bad));
    }

    #[test]
    fn tokenize_is_idempotent_and_lowercase(text in "[a-zA-Z0-9 ,.!-]{0,80}") {
        let once = tokenize(&text);
        let again = tokenize(&once.join(" "));
        prop_assert_eq!(&once, &again);
        for t in &once {
            prop_assert_eq!(t.to_ascii_lowercase(), t.clone());
        }
    }

    #[test]
    fn query_matches_its_own_source_text(text in "[a-z]{1,8}( [a-z]{1,8}){0,4}") {
        let q = Query::new(text.clone()).unwrap();
        prop_assert!(q.matches_text(&text));
    }

    #[test]
    fn cached_token_matching_agrees_with_fresh_tokenize(
        m in arb_meta(),
        text in "[a-z]{1,6}( [a-z]{1,6}){0,3}"
    ) {
        // The token set cached at build time must answer every query exactly
        // as a fresh tokenization of the record's text fields would.
        let q = Query::new(text).unwrap();
        let fresh = tokenize(&format!("{} {} {}", m.name(), m.publisher(), m.description()));
        let expected = q.tokens().iter().all(|t| fresh.contains(t));
        prop_assert_eq!(q.matches_token_set(m.token_set()), expected);
        prop_assert_eq!(m.matches_query(&q), expected);
        // A query built from any token of the record's own name matches.
        for tok in tokenize(m.name()) {
            let own = Query::new(tok).unwrap();
            prop_assert!(own.matches_token_set(m.token_set()));
        }
    }

    #[test]
    fn index_backed_matching_equals_linear_scan(
        metas in proptest::collection::vec(arb_meta(), 0..20),
        text in "[a-z]{1,6}( [a-z]{1,6}){0,2}",
        victim in any::<prop::sample::Index>()
    ) {
        use mbt_core::MetadataStore;
        fn both(store: &MetadataStore, q: &Query) -> (Vec<Uri>, Vec<Uri>, Vec<Uri>) {
            let indexed = store.matching(q).into_iter().map(|m| m.uri().clone()).collect();
            let uris = store.matching_uris(q).into_iter().cloned().collect();
            let scanned = store
                .iter()
                .filter(|m| m.matches_query(q))
                .map(|m| m.uri().clone())
                .collect();
            (indexed, uris, scanned)
        }
        let mut store = MetadataStore::new();
        for m in &metas {
            store.insert(m.clone());
        }
        let queries: Vec<Query> = std::iter::once(Query::new(text).unwrap())
            .chain(metas.iter().filter_map(|m| {
                // A query drawn from a stored record's name exercises the
                // non-empty result path.
                Query::new(tokenize(m.name()).into_iter().next()?).ok()
            }))
            .collect();
        for q in &queries {
            let (indexed, uris, scanned) = both(&store, q);
            prop_assert_eq!(&indexed, &scanned, "index vs scan diverged");
            prop_assert_eq!(&uris, &scanned, "matching_uris vs scan diverged");
        }
        // Index maintenance: after a removal the index and scan still agree.
        if !metas.is_empty() {
            let gone = metas[victim.index(metas.len())].uri().clone();
            store.remove(&gone);
            for q in &queries {
                let (indexed, uris, scanned) = both(&store, q);
                prop_assert!(!indexed.contains(&gone));
                prop_assert_eq!(&indexed, &scanned, "index stale after removal");
                prop_assert_eq!(&uris, &scanned, "matching_uris stale after removal");
            }
        }
    }

    #[test]
    fn canonical_bytes_distinct_for_distinct_names(a in "[a-z]{1,20}", b in "[a-z]{1,20}") {
        prop_assume!(a != b);
        let uri = Uri::new("mbt://p/x").unwrap();
        let ma = Metadata::builder(a, "FOX", uri.clone()).build();
        let mb = Metadata::builder(b, "FOX", uri).build();
        prop_assert_ne!(ma.canonical_bytes(), mb.canonical_bytes());
    }

    #[test]
    fn signing_verifies_and_any_rename_breaks_it(name in "[a-z]{1,16}", other in "[a-z]{1,16}") {
        use mbt_core::auth::{sign, verify, PublisherKey};
        prop_assume!(name != other);
        let key = PublisherKey::derive(b"master", "FOX");
        let uri = Uri::new("mbt://p/x").unwrap();
        let mut m = Metadata::builder(name, "FOX", uri.clone()).build();
        sign(&mut m, &key);
        prop_assert!(verify(&m, &key));
        let mut renamed = Metadata::builder(other, "FOX", uri).build();
        // Forge attempt: reuse the old tag on different content.
        if let Some(tag) = m.auth_tag() {
            // Only the auth module can set tags; emulate by re-signing with a
            // *wrong* key instead, which must also fail under the right key.
            let attacker = PublisherKey::derive(b"attacker", "FOX");
            sign(&mut renamed, &attacker);
            prop_assert!(!verify(&renamed, &key));
            let _ = tag;
        }
    }
}

// ---- ordering invariants for the schedulers ----

fn arb_offers() -> impl Strategy<Value = Vec<(String, f64, Vec<u32>, Vec<u32>)>> {
    proptest::collection::vec(
        (
            "[a-z0-9]{1,8}",
            0.0f64..1.0,
            proptest::collection::vec(0u32..8, 0..4),
            proptest::collection::vec(0u32..8, 0..4),
        ),
        0..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cooperative_download_schedule_invariants(raw in arb_offers(), slots in 0usize..30) {
        let mut seen = std::collections::BTreeSet::new();
        let offers: Vec<Offer<Uri>> = raw
            .into_iter()
            .filter(|(u, ..)| seen.insert(u.clone()))
            .map(|(u, pop, req, hold)| {
                Offer::new(
                    Uri::new(format!("mbt://f/{u}")).unwrap(),
                    Popularity::new(pop),
                    req.into_iter().map(NodeId::new).collect(),
                    hold.into_iter().map(NodeId::new).collect(),
                )
            })
            .collect();
        let sendable_items: std::collections::BTreeSet<Uri> = offers
            .iter()
            .filter(|o| o.sendable())
            .map(|o| o.item.clone())
            .collect();
        let requested: std::collections::BTreeSet<Uri> = offers
            .iter()
            .filter(|o| o.sendable() && o.request_count() > 0)
            .map(|o| o.item.clone())
            .collect();
        let schedule = dl_coop::schedule(offers.clone(), slots);
        // Budget respected, no duplicates, senders hold what they send.
        prop_assert!(schedule.len() <= slots);
        let mut scheduled = std::collections::BTreeSet::new();
        for b in &schedule {
            prop_assert!(scheduled.insert(b.item.clone()), "duplicate broadcast");
            prop_assert!(sendable_items.contains(&b.item));
            let offer = offers.iter().find(|o| o.item == b.item).unwrap();
            prop_assert!(offer.holders.contains(&b.sender));
        }
        // Requested items never scheduled after unrequested ones.
        let mut seen_unrequested = false;
        for b in &schedule {
            if requested.contains(&b.item) {
                prop_assert!(!seen_unrequested, "phase inversion");
            } else {
                seen_unrequested = true;
            }
        }
        // If budget allows, all sendable requested items are included.
        if slots >= sendable_items.len() {
            for item in &requested {
                prop_assert!(scheduled.contains(item));
            }
        }
    }

    #[test]
    fn tft_download_schedule_invariants(raw in arb_offers(), slots in 0usize..30, members in proptest::collection::btree_set(0u32..8, 1..8)) {
        let member_ids: Vec<NodeId> = members.iter().copied().map(NodeId::new).collect();
        let mut seen = std::collections::BTreeSet::new();
        let offers: Vec<Offer<Uri>> = raw
            .into_iter()
            .filter(|(u, ..)| seen.insert(u.clone()))
            .map(|(u, pop, req, hold)| {
                Offer::new(
                    Uri::new(format!("mbt://f/{u}")).unwrap(),
                    Popularity::new(pop),
                    req.into_iter().map(NodeId::new).collect(),
                    hold.into_iter().map(NodeId::new).collect(),
                )
            })
            .collect();
        let ledger = CreditLedger::new();
        let schedule = dl_tft::schedule(&member_ids, offers.clone(), |_| &ledger, slots);
        prop_assert!(schedule.len() <= slots);
        let mut scheduled = std::collections::BTreeSet::new();
        for b in &schedule {
            prop_assert!(scheduled.insert(b.item.clone()), "duplicate broadcast");
            prop_assert!(member_ids.contains(&b.sender), "sender not a member");
            let offer = offers.iter().find(|o| o.item == b.item).unwrap();
            prop_assert!(offer.holders.contains(&b.sender));
        }
    }

    #[test]
    fn discovery_orders_respect_budget_and_phases(
        names in proptest::collection::btree_set("[a-z]{3,8}", 0..15),
        budget in 0usize..20,
        credit_seed in 0u32..5
    ) {
        let metas: Vec<Metadata> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Metadata::builder(n.clone(), "FOX", Uri::new(format!("mbt://m/{i}")).unwrap()).build()
            })
            .collect();
        // Half the metadata get a requester.
        let queries: Vec<(NodeId, Query)> = names
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .map(|(i, n)| (NodeId::new(i as u32), Query::new(n.clone()).unwrap()))
            .collect();
        let offers: Vec<MetadataOffer<'_>> = metas
            .iter()
            .enumerate()
            .map(|(i, m)| MetadataOffer::build(m, Popularity::new((i % 10) as f64 / 10.0), &queries))
            .collect();
        let requested: std::collections::BTreeSet<&Uri> = offers
            .iter()
            .filter(|o| o.request_count() > 0)
            .map(|o| o.metadata.uri())
            .collect();

        let coop = disc_coop::send_order(offers.clone(), budget);
        prop_assert!(coop.len() <= budget);
        let mut ledger = CreditLedger::new();
        for i in 0..credit_seed {
            ledger.reward_matched(NodeId::new(i));
        }
        let tft = disc_tft::send_order(offers, &ledger, budget);
        prop_assert!(tft.len() <= budget);
        for order in [&coop, &tft] {
            let mut seen_unrequested = false;
            let mut seen_set = std::collections::BTreeSet::new();
            for m in order.iter() {
                prop_assert!(seen_set.insert(m.uri().clone()), "duplicate metadata in order");
                if requested.contains(m.uri()) {
                    prop_assert!(!seen_unrequested, "requested after unrequested");
                } else {
                    seen_unrequested = true;
                }
            }
        }
    }

    #[test]
    fn credit_ledger_total_is_sum_of_rewards(
        events in proptest::collection::vec((0u32..6, prop::bool::ANY, 0.0f64..1.0), 0..50)
    ) {
        let mut ledger = CreditLedger::new();
        let mut expected: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
        for (peer, matched, pop) in &events {
            let node = NodeId::new(*peer);
            if *matched {
                ledger.reward_matched(node);
                *expected.entry(*peer).or_insert(0.0) += 5.0;
            } else {
                ledger.reward_unmatched(node, Popularity::new(*pop));
                *expected.entry(*peer).or_insert(0.0) += *pop;
            }
        }
        for (peer, total) in expected {
            prop_assert!((ledger.credit_of(NodeId::new(peer)) - total).abs() < 1e-9);
        }
        // ranked_peers is sorted descending.
        let ranked = ledger.ranked_peers();
        for w in ranked.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn swarm_completes_whenever_every_piece_exists_somewhere(
        members in 2u32..6,
        pieces in 1u64..10,
        seed in any::<u64>(),
        ordering_rarest in any::<bool>()
    ) {
        use mbt_core::download::swarm::Swarm;
        use mbt_core::BroadcastOrdering;
        use rand::{Rng as _, SeedableRng as _};
        let meta = Metadata::builder("f", "FOX", Uri::new("mbt://swarm").unwrap())
            .sized(pieces * 256 * 1024, 256 * 1024, vec![])
            .build();
        let ids: Vec<NodeId> = (0..members).map(NodeId::new).collect();
        let mut swarm = Swarm::new(meta, ids.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Random holdings, then force global coverage via member 0.
        for m in &ids {
            for p in 0..pieces as u32 {
                if rng.gen::<bool>() {
                    swarm.grant(*m, p);
                }
            }
        }
        for p in 0..pieces as u32 {
            swarm.grant(NodeId::new(0), p);
        }
        let ordering = if ordering_rarest {
            BroadcastOrdering::RarestFirst
        } else {
            BroadcastOrdering::TwoPhase
        };
        let rounds = swarm.run_to_completion(ordering, (pieces as usize) * members as usize + 1);
        prop_assert!(rounds.is_some(), "coverage guarantees completion");
        // One broadcast serves everyone: never more rounds than pieces.
        prop_assert!(rounds.unwrap() <= pieces as usize);
        prop_assert!(swarm.all_complete());
    }

    #[test]
    fn selection_rank_is_sorted_and_policy_consistent(
        pops in proptest::collection::vec(0.0f64..1.0, 1..8)
    ) {
        use mbt_core::selection::{rank, select, SelectionPolicy};
        let metas: Vec<Metadata> = pops
            .iter()
            .enumerate()
            .map(|(i, _)| {
                Metadata::builder("common token", "FOX", Uri::new(format!("mbt://s/{i}")).unwrap())
                    .build()
            })
            .collect();
        let q = Query::new("common token").unwrap();
        let pop_of = |m: &Metadata| {
            let idx: usize = m.uri().as_str().rsplit('/').next().unwrap().parse().unwrap();
            Popularity::new(pops[idx])
        };
        let ranked = rank(metas.iter(), &q, pop_of, None);
        prop_assert_eq!(ranked.len(), metas.len());
        for w in ranked.windows(2) {
            prop_assert!(w[0].popularity >= w[1].popularity, "rank not sorted");
        }
        // BestRanked picks the head; MostPopular agrees when scores tie.
        let best = select(&ranked, SelectionPolicy::BestRanked).unwrap();
        let most = select(&ranked, SelectionPolicy::MostPopular).unwrap();
        prop_assert_eq!(best.uri(), ranked[0].metadata.uri());
        prop_assert_eq!(
            pop_of(most).value(),
            ranked[0].popularity.value(),
            "most-popular must match the top popularity"
        );
    }

    #[test]
    fn popularity_sampling_always_in_unit_interval(seed in any::<u64>(), lambda in 0.1f64..100.0) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let p = mbt_core::popularity::sample_popularity(&mut rng, lambda);
            prop_assert!((0.0..=1.0).contains(&p.value()));
        }
    }

    #[test]
    fn offer_metadata_requesters_subset_of_queriers(metas in proptest::collection::vec(arb_meta(), 1..6)) {
        let queries: Vec<(NodeId, Query)> = metas
            .iter()
            .enumerate()
            .filter_map(|(i, m)| {
                let token = tokenize(m.name()).into_iter().next()?;
                Some((NodeId::new(i as u32), Query::new(token).ok()?))
            })
            .collect();
        let queriers: std::collections::BTreeSet<NodeId> = queries.iter().map(|(n, _)| *n).collect();
        for m in &metas {
            let offer = MetadataOffer::build(m, Popularity::MIN, &queries);
            for r in &offer.requesters {
                prop_assert!(queriers.contains(r));
            }
        }
    }
}
