//! Deterministic fault injection.
//!
//! The paper's evaluation assumes *clean* contacts: every broadcast the trace
//! allows completes, every contact runs its full length, and every node stays
//! up. Real DieselNet-style deployments are lossy, truncated, and
//! churn-prone, so the robustness experiments perturb the simulation with a
//! [`FaultPlan`]: per-frame broadcast loss, per-contact truncation, per-node
//! down intervals (churn), and per-reception piece corruption.
//!
//! # Determinism contract
//!
//! Every decision is a pure function of the plan and the event's coordinates
//! — no RNG state is carried between decisions. Each roll seeds a fresh
//! stream as
//!
//! ```text
//! derive_seed(&[plan.seed, fault_kind, event coordinates...])
//! ```
//!
//! so results are bit-identical regardless of evaluation order or thread
//! count, and the parallel executor only needs to derive `plan.seed` from a
//! cell's grid coordinates (see `mbt-experiments::exec`). A rate of zero
//! draws **no** random numbers at all, which keeps a zero-rate plan
//! byte-identical to the fault-free code path.

use dtn_trace::{NodeId, SimDuration, SimTime};
use rand::Rng as _;

use crate::rng::{derive_seed, stream};

/// Domain tag mixed into seed derivations by the parallel executor so fault
/// streams never collide with the workload stream of the same cell.
pub const FAULT_STREAM: u64 = 0xFA17;

/// The independent fault streams of a [`FaultPlan`]. Each kind derives its
/// rolls from its own seed domain, so e.g. enabling corruption never shifts
/// the loss rolls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A broadcast frame fails to reach one receiver.
    Loss,
    /// A contact ends early, shrinking its transfer budget.
    Truncate,
    /// A node is down (powered off, crashed) for an interval.
    Churn,
    /// A received file's pieces are corrupted in transit.
    Corrupt,
}

impl FaultKind {
    /// Stable per-kind seed domain (mixed into every derivation).
    pub fn domain(self) -> u64 {
        match self {
            FaultKind::Loss => 1,
            FaultKind::Truncate => 2,
            FaultKind::Churn => 3,
            FaultKind::Corrupt => 4,
        }
    }
}

/// A deterministic fault-injection plan.
///
/// The default ([`FaultPlan::none`]) injects nothing and draws no random
/// numbers, so a no-fault run is byte-identical whether or not a plan is
/// threaded through.
///
/// # Example
///
/// ```
/// use dtn_sim::FaultPlan;
/// use dtn_trace::{NodeId, SimTime};
///
/// let plan = FaultPlan::none().loss(0.5).seed(7);
/// let a = plan.frame_lost(SimTime::ZERO, NodeId::new(0), NodeId::new(1), "mbt://a");
/// let b = plan.frame_lost(SimTime::ZERO, NodeId::new(0), NodeId::new(1), "mbt://a");
/// assert_eq!(a, b, "rolls are deterministic");
/// assert!(!FaultPlan::none().frame_lost(SimTime::ZERO, NodeId::new(0), NodeId::new(1), "mbt://a"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Per-receiver probability that a broadcast frame is lost.
    pub loss_rate: f64,
    /// Maximum fraction of a contact that truncation removes: each contact
    /// keeps a deterministic fraction drawn uniformly from
    /// `[1 - truncate_rate, 1]` of its duration and transfer budget.
    pub truncate_rate: f64,
    /// Probability that a node suffers one down interval within the horizon.
    pub churn: f64,
    /// Per-reception probability that a file arrives with corrupted pieces
    /// (caught by checksum verification; the file is not stored).
    pub corruption_rate: f64,
    /// Base seed for every fault stream.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

fn check_rate(what: &str, rate: f64) {
    assert!(
        (0.0..=1.0).contains(&rate),
        "{what} rate must be in [0, 1], got {rate}"
    );
}

impl FaultPlan {
    /// The no-fault plan: all rates zero, seed zero.
    pub fn none() -> FaultPlan {
        FaultPlan {
            loss_rate: 0.0,
            truncate_rate: 0.0,
            churn: 0.0,
            corruption_rate: 0.0,
            seed: 0,
        }
    }

    /// Sets the broadcast frame loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` ∈ [0, 1].
    pub fn loss(mut self, rate: f64) -> FaultPlan {
        check_rate("loss", rate);
        self.loss_rate = rate;
        self
    }

    /// Sets the maximum truncated fraction per contact.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` ∈ [0, 1].
    pub fn truncate(mut self, rate: f64) -> FaultPlan {
        check_rate("truncate", rate);
        self.truncate_rate = rate;
        self
    }

    /// Sets the per-node down-interval probability.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` ∈ [0, 1].
    pub fn churn(mut self, rate: f64) -> FaultPlan {
        check_rate("churn", rate);
        self.churn = rate;
        self
    }

    /// Sets the per-reception piece-corruption probability.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` ∈ [0, 1].
    pub fn corruption(mut self, rate: f64) -> FaultPlan {
        check_rate("corruption", rate);
        self.corruption_rate = rate;
        self
    }

    /// Sets the base seed for all fault streams.
    pub fn seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// True if the plan injects nothing (all rates zero). A no-op plan draws
    /// no random numbers regardless of its seed.
    pub fn is_noop(&self) -> bool {
        self.loss_rate <= 0.0
            && self.truncate_rate <= 0.0
            && self.churn <= 0.0
            && self.corruption_rate <= 0.0
    }

    /// One independent Bernoulli roll in `kind`'s seed domain.
    fn roll(&self, kind: FaultKind, coords: &[u64], name: &str, rate: f64) -> bool {
        let mut parts = Vec::with_capacity(coords.len() + 2);
        parts.push(self.seed);
        parts.push(kind.domain());
        parts.extend_from_slice(coords);
        stream(derive_seed(&parts), name).gen::<f64>() < rate
    }

    /// Whether the broadcast of `item` from `sender` fails to reach
    /// `receiver` during the contact at `now`. Each (instant, sender,
    /// receiver, item) draws independently; zero loss draws nothing.
    pub fn frame_lost(&self, now: SimTime, sender: NodeId, receiver: NodeId, item: &str) -> bool {
        if self.loss_rate <= 0.0 {
            return false;
        }
        self.roll(
            FaultKind::Loss,
            &[
                now.as_secs(),
                u64::from(sender.raw()),
                u64::from(receiver.raw()),
            ],
            item,
            self.loss_rate,
        )
    }

    /// Whether `item`, broadcast by `sender`, arrives at `receiver` with
    /// corrupted pieces. Rolled after (and independently of) frame loss.
    pub fn corrupts(&self, now: SimTime, sender: NodeId, receiver: NodeId, item: &str) -> bool {
        if self.corruption_rate <= 0.0 {
            return false;
        }
        self.roll(
            FaultKind::Corrupt,
            &[
                now.as_secs(),
                u64::from(sender.raw()),
                u64::from(receiver.raw()),
            ],
            item,
            self.corruption_rate,
        )
    }

    /// The fraction of the contact starting at `start` among `members` that
    /// survives truncation, in `[1 - truncate_rate, 1]`. Exactly `1.0`
    /// (drawing nothing) when truncation is off.
    pub fn contact_keep(&self, start: SimTime, members: &[NodeId]) -> f64 {
        if self.truncate_rate <= 0.0 {
            return 1.0;
        }
        let mut parts = Vec::with_capacity(members.len() + 3);
        parts.push(self.seed);
        parts.push(FaultKind::Truncate.domain());
        parts.push(start.as_secs());
        parts.extend(members.iter().map(|n| u64::from(n.raw())));
        let cut = stream(derive_seed(&parts), "truncate").gen::<f64>() * self.truncate_rate;
        1.0 - cut
    }

    /// `duration` scaled by [`FaultPlan::contact_keep`] (never below one
    /// second, so a truncated contact is still a valid interval).
    pub fn truncated_duration(
        &self,
        start: SimTime,
        members: &[NodeId],
        duration: SimDuration,
    ) -> SimDuration {
        if self.truncate_rate <= 0.0 {
            return duration;
        }
        let keep = self.contact_keep(start, members);
        let secs = (duration.as_secs() as f64 * keep).floor() as u64;
        SimDuration::from_secs(secs.max(1))
    }

    /// The down interval `[start, end)` of `node` within `[0, horizon)`, if
    /// churn selects it. Deterministic per node; `None` (drawing nothing)
    /// when churn is off. The interval never exceeds half the horizon.
    pub fn down_interval(&self, node: NodeId, horizon: SimDuration) -> Option<(SimTime, SimTime)> {
        if self.churn <= 0.0 {
            return None;
        }
        let h = horizon.as_secs();
        if h == 0 {
            return None;
        }
        let seed = derive_seed(&[self.seed, FaultKind::Churn.domain(), u64::from(node.raw())]);
        let mut rng = stream(seed, "churn");
        if rng.gen::<f64>() >= self.churn {
            return None;
        }
        let start = rng.gen_range(0..h);
        let len = rng.gen_range(1..=(h / 2).max(1));
        Some((
            SimTime::from_secs(start),
            SimTime::from_secs((start + len).min(h)),
        ))
    }

    /// True if `node` is inside its churn down interval at `at`.
    pub fn is_down(&self, node: NodeId, horizon: SimDuration, at: SimTime) -> bool {
        self.down_interval(node, horizon)
            .is_some_and(|(start, end)| start <= at && at < end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn none_is_noop_and_never_faults() {
        let plan = FaultPlan::none();
        assert!(plan.is_noop());
        assert!(!plan.frame_lost(t(5), n(0), n(1), "mbt://x"));
        assert!(!plan.corrupts(t(5), n(0), n(1), "mbt://x"));
        assert_eq!(plan.contact_keep(t(5), &[n(0), n(1)]), 1.0);
        assert_eq!(plan.down_interval(n(0), SimDuration::from_days(1)), None);
    }

    #[test]
    fn seed_alone_does_not_make_a_plan_active() {
        assert!(FaultPlan::none().seed(99).is_noop());
        assert!(!FaultPlan::none().loss(0.1).is_noop());
        assert!(!FaultPlan::none().truncate(0.1).is_noop());
        assert!(!FaultPlan::none().churn(0.1).is_noop());
        assert!(!FaultPlan::none().corruption(0.1).is_noop());
    }

    #[test]
    fn rolls_are_deterministic_and_coordinate_sensitive() {
        let plan = FaultPlan::none().loss(0.5).seed(3);
        let roll = |time, s, r, item| plan.frame_lost(t(time), n(s), n(r), item);
        for time in 0..50u64 {
            assert_eq!(
                roll(time, 0, 1, "mbt://a"),
                roll(time, 0, 1, "mbt://a"),
                "same coordinates must agree"
            );
        }
        // Across many coordinates, both outcomes occur at rate 0.5.
        let hits = (0..200u64).filter(|&i| roll(i, 0, 1, "mbt://a")).count();
        assert!(
            (50..150).contains(&hits),
            "loss rolls look degenerate: {hits}"
        );
    }

    #[test]
    fn full_loss_drops_everything() {
        let plan = FaultPlan::none().loss(1.0);
        for i in 0..40u64 {
            assert!(plan.frame_lost(t(i), n(0), n(1), "mbt://a"));
        }
    }

    #[test]
    fn loss_and_corruption_streams_are_independent() {
        // Same coordinates, different kinds: outcomes must not be the same
        // function (they differ somewhere over a coordinate sweep).
        let plan = FaultPlan::none().loss(0.5).corruption(0.5).seed(11);
        let differs = (0..100u64).any(|i| {
            plan.frame_lost(t(i), n(0), n(1), "mbt://a")
                != plan.corrupts(t(i), n(0), n(1), "mbt://a")
        });
        assert!(differs, "loss and corruption rolls are identical streams");
    }

    #[test]
    fn contact_keep_is_bounded_and_deterministic() {
        let plan = FaultPlan::none().truncate(0.6).seed(5);
        let members = [n(2), n(7), n(9)];
        for i in 0..50u64 {
            let keep = plan.contact_keep(t(i * 100), &members);
            assert!((0.4..=1.0).contains(&keep), "keep {keep} out of range");
            assert_eq!(keep, plan.contact_keep(t(i * 100), &members));
        }
    }

    #[test]
    fn truncated_duration_shrinks_but_stays_positive() {
        let plan = FaultPlan::none().truncate(1.0).seed(8);
        let members = [n(0), n(1)];
        for i in 0..50u64 {
            let d = plan.truncated_duration(t(i), &members, SimDuration::from_secs(600));
            assert!(d.as_secs() >= 1);
            assert!(d.as_secs() <= 600);
        }
        // Truncation off: identity, regardless of seed.
        let clean = FaultPlan::none().seed(8);
        assert_eq!(
            clean.truncated_duration(t(0), &members, SimDuration::from_secs(600)),
            SimDuration::from_secs(600)
        );
    }

    #[test]
    fn down_intervals_live_within_the_horizon() {
        let plan = FaultPlan::none().churn(1.0).seed(13);
        let horizon = SimDuration::from_days(3);
        for i in 0..40u32 {
            let (start, end) = plan
                .down_interval(n(i), horizon)
                .expect("churn 1.0 downs every node");
            assert!(start < end, "empty interval");
            assert!(end.as_secs() <= horizon.as_secs());
            assert_eq!(plan.down_interval(n(i), horizon), Some((start, end)));
            // is_down is exactly the interval membership predicate.
            assert!(plan.is_down(n(i), horizon, start));
            assert!(!plan.is_down(n(i), horizon, end));
            if start.as_secs() > 0 {
                assert!(!plan.is_down(n(i), horizon, t(start.as_secs() - 1)));
            }
        }
    }

    #[test]
    fn partial_churn_downs_some_nodes_only() {
        let plan = FaultPlan::none().churn(0.5).seed(21);
        let horizon = SimDuration::from_days(2);
        let down = (0..100u32)
            .filter(|&i| plan.down_interval(n(i), horizon).is_some())
            .count();
        assert!(
            (20..80).contains(&down),
            "churn selection degenerate: {down}"
        );
    }

    #[test]
    #[should_panic(expected = "loss rate must be in [0, 1]")]
    fn rejects_out_of_range_rates() {
        let _ = FaultPlan::none().loss(1.5);
    }
}
