//! Neighbor graphs and maximal-clique detection.
//!
//! The broadcast-based file download (paper §V) divides nodes into *cliques*
//! in which each node can receive messages from every other. Each node learns
//! its neighborhood from hello messages (which carry the sender's own heard
//! set) and "can calculate all the maximum cliques containing it". This
//! module provides the shared graph structure and the Bron–Kerbosch
//! enumeration with pivoting.

use std::collections::{BTreeMap, BTreeSet};

use dtn_trace::NodeId;

/// An undirected graph of currently-connected nodes.
///
/// # Example
///
/// ```
/// use dtn_sim::NeighborGraph;
/// use dtn_trace::NodeId;
///
/// let mut g = NeighborGraph::new();
/// g.connect(NodeId::new(0), NodeId::new(1));
/// g.connect(NodeId::new(1), NodeId::new(2));
/// g.connect(NodeId::new(0), NodeId::new(2));
/// let cliques = g.maximal_cliques();
/// assert_eq!(cliques.len(), 1);
/// assert_eq!(cliques[0].len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NeighborGraph {
    adj: BTreeMap<NodeId, BTreeSet<NodeId>>,
}

impl NeighborGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        NeighborGraph::default()
    }

    /// Adds the undirected edge `(a, b)`. Self-loops are ignored.
    pub fn connect(&mut self, a: NodeId, b: NodeId) {
        if a == b {
            return;
        }
        self.adj.entry(a).or_default().insert(b);
        self.adj.entry(b).or_default().insert(a);
    }

    /// Removes the undirected edge `(a, b)` if present; isolated endpoints
    /// are dropped from the graph.
    pub fn disconnect(&mut self, a: NodeId, b: NodeId) {
        let mut drop_a = false;
        let mut drop_b = false;
        if let Some(n) = self.adj.get_mut(&a) {
            n.remove(&b);
            drop_a = n.is_empty();
        }
        if let Some(n) = self.adj.get_mut(&b) {
            n.remove(&a);
            drop_b = n.is_empty();
        }
        if drop_a {
            self.adj.remove(&a);
        }
        if drop_b {
            self.adj.remove(&b);
        }
    }

    /// Removes `node` and all its edges.
    pub fn remove_node(&mut self, node: NodeId) {
        if let Some(neighbors) = self.adj.remove(&node) {
            for n in neighbors {
                if let Some(back) = self.adj.get_mut(&n) {
                    back.remove(&node);
                    if back.is_empty() {
                        self.adj.remove(&n);
                    }
                }
            }
        }
    }

    /// True if the undirected edge `(a, b)` exists.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        self.adj.get(&a).is_some_and(|n| n.contains(&b))
    }

    /// The neighbors of `node`, sorted.
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.adj
            .get(&node)
            .map(|n| n.iter().copied().collect())
            .unwrap_or_default()
    }

    /// All non-isolated nodes, sorted.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.adj.keys().copied().collect()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.values().map(|n| n.len()).sum::<usize>() / 2
    }

    /// All maximal cliques of size ≥ 2, each sorted, the list sorted for
    /// determinism (Bron–Kerbosch with pivoting).
    pub fn maximal_cliques(&self) -> Vec<Vec<NodeId>> {
        let mut cliques = Vec::new();
        let mut r: Vec<NodeId> = Vec::new();
        let p: BTreeSet<NodeId> = self.adj.keys().copied().collect();
        let x: BTreeSet<NodeId> = BTreeSet::new();
        self.bron_kerbosch(&mut r, p, x, &mut cliques);
        cliques.retain(|c| c.len() >= 2);
        cliques.sort();
        cliques
    }

    /// The maximal cliques containing `node` (paper §V: "each node can
    /// calculate all the maximum cliques containing it").
    pub fn cliques_containing(&self, node: NodeId) -> Vec<Vec<NodeId>> {
        self.maximal_cliques()
            .into_iter()
            .filter(|c| c.binary_search(&node).is_ok())
            .collect()
    }

    /// The largest maximal clique containing `node`, ties broken toward the
    /// lexicographically smallest member list, or `None` if `node` has no
    /// neighbors.
    pub fn largest_clique_containing(&self, node: NodeId) -> Option<Vec<NodeId>> {
        self.cliques_containing(node)
            .into_iter()
            .max_by(|a, b| a.len().cmp(&b.len()).then_with(|| b.cmp(a)))
    }

    fn bron_kerbosch(
        &self,
        r: &mut Vec<NodeId>,
        mut p: BTreeSet<NodeId>,
        mut x: BTreeSet<NodeId>,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        if p.is_empty() && x.is_empty() {
            let mut clique = r.clone();
            clique.sort_unstable();
            out.push(clique);
            return;
        }
        // Pivot: the vertex of P ∪ X with the most neighbors in P.
        let pivot = p
            .iter()
            .chain(x.iter())
            .copied()
            .max_by_key(|u| {
                self.adj
                    .get(u)
                    .map_or(0, |n| n.iter().filter(|v| p.contains(v)).count())
            })
            .expect("P ∪ X non-empty here");
        let pivot_neighbors = self.adj.get(&pivot).cloned().unwrap_or_default();
        let candidates: Vec<NodeId> = p.difference(&pivot_neighbors).copied().collect();
        for v in candidates {
            let nv = self.adj.get(&v).cloned().unwrap_or_default();
            r.push(v);
            let p2: BTreeSet<NodeId> = p.intersection(&nv).copied().collect();
            let x2: BTreeSet<NodeId> = x.intersection(&nv).copied().collect();
            self.bron_kerbosch(r, p2, x2, out);
            r.pop();
            p.remove(&v);
            x.insert(v);
        }
    }
}

impl FromIterator<(NodeId, NodeId)> for NeighborGraph {
    fn from_iter<I: IntoIterator<Item = (NodeId, NodeId)>>(iter: I) -> Self {
        let mut g = NeighborGraph::new();
        for (a, b) in iter {
            g.connect(a, b);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn graph(edges: &[(u32, u32)]) -> NeighborGraph {
        edges.iter().map(|&(a, b)| (n(a), n(b))).collect()
    }

    #[test]
    fn connect_and_query() {
        let g = graph(&[(0, 1)]);
        assert!(g.connected(n(0), n(1)));
        assert!(g.connected(n(1), n(0)));
        assert!(!g.connected(n(0), n(2)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = NeighborGraph::new();
        g.connect(n(3), n(3));
        assert!(g.nodes().is_empty());
    }

    #[test]
    fn disconnect_removes_edge_and_isolated_nodes() {
        let mut g = graph(&[(0, 1), (1, 2)]);
        g.disconnect(n(0), n(1));
        assert!(!g.connected(n(0), n(1)));
        assert_eq!(g.nodes(), vec![n(1), n(2)]);
    }

    #[test]
    fn remove_node_cleans_up() {
        let mut g = graph(&[(0, 1), (1, 2), (0, 2)]);
        g.remove_node(n(1));
        assert_eq!(g.nodes(), vec![n(0), n(2)]);
        assert!(g.connected(n(0), n(2)));
    }

    #[test]
    fn triangle_is_one_clique() {
        let g = graph(&[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.maximal_cliques(), vec![vec![n(0), n(1), n(2)]]);
    }

    #[test]
    fn path_yields_edge_cliques() {
        let g = graph(&[(0, 1), (1, 2)]);
        assert_eq!(
            g.maximal_cliques(),
            vec![vec![n(0), n(1)], vec![n(1), n(2)]]
        );
    }

    #[test]
    fn two_triangles_sharing_a_node() {
        let g = graph(&[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        let cliques = g.maximal_cliques();
        assert_eq!(cliques.len(), 2);
        assert!(cliques.contains(&vec![n(0), n(1), n(2)]));
        assert!(cliques.contains(&vec![n(2), n(3), n(4)]));
    }

    #[test]
    fn complete_graph_single_clique() {
        let mut edges = Vec::new();
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                edges.push((i, j));
            }
        }
        let g = graph(&edges);
        let cliques = g.maximal_cliques();
        assert_eq!(cliques.len(), 1);
        assert_eq!(cliques[0].len(), 6);
    }

    #[test]
    fn cliques_containing_filters() {
        let g = graph(&[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let containing_3 = g.cliques_containing(n(3));
        assert_eq!(containing_3, vec![vec![n(2), n(3)]]);
        let containing_2 = g.cliques_containing(n(2));
        assert_eq!(containing_2.len(), 2);
    }

    #[test]
    fn largest_clique_containing_prefers_size() {
        let g = graph(&[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(
            g.largest_clique_containing(n(2)),
            Some(vec![n(0), n(1), n(2)])
        );
        assert_eq!(g.largest_clique_containing(n(9)), None);
    }

    #[test]
    fn empty_graph_has_no_cliques() {
        let g = NeighborGraph::new();
        assert!(g.maximal_cliques().is_empty());
    }

    #[test]
    fn deterministic_output_order() {
        let g1 = graph(&[(0, 1), (2, 3), (4, 5)]);
        let g2 = graph(&[(4, 5), (0, 1), (2, 3)]);
        assert_eq!(g1.maximal_cliques(), g2.maximal_cliques());
    }

    #[test]
    fn star_graph_cliques_are_spokes() {
        let g = graph(&[(0, 1), (0, 2), (0, 3)]);
        let cliques = g.maximal_cliques();
        assert_eq!(cliques.len(), 3);
        assert!(cliques.iter().all(|c| c.len() == 2 && c.contains(&n(0))));
    }
}
